//! # optrr-bench (bench_support)
//!
//! Shared harness for the experiment binaries and Criterion benches that
//! regenerate the OptRR paper's evaluation (Figures 4 and 5, Theorem 2,
//! Fact 1) plus the ablation studies listed in DESIGN.md.
//!
//! Every experiment binary follows the same pattern: build the workload the
//! paper describes, sweep the Warner baseline, run the OptRR optimizer,
//! compare the fronts, and print an [`optrr::ExperimentReport`] as an
//! aligned table plus CSV. The functions here hold that shared logic so the
//! binaries stay short and consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use datagen::{synthetic, AdultConfig, SourceDistribution, SyntheticConfig};
use emoo::EngineKind;
use optrr::{
    baseline_sweep, ExperimentReport, FrontComparison, Optimizer, OptrrConfig, OptrrProblem,
    ParetoFront, SchemeKind,
};
use stats::Categorical;

/// The experiment fidelity: controls optimizer budget and sweep resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Small budgets for CI and quick smoke runs (seconds per figure).
    Fast,
    /// The default budget used to produce EXPERIMENTS.md (tens of seconds
    /// per figure).
    Standard,
    /// A budget approximating the paper's 20,000-iteration runs (minutes
    /// per figure).
    Paper,
}

impl Fidelity {
    /// Reads the fidelity from the command line (`--fast` / `--paper`) and
    /// the `OPTRR_FIDELITY` environment variable (`fast` / `standard` /
    /// `paper`), defaulting to [`Fidelity::Standard`].
    pub fn from_env_and_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--fast") {
            return Fidelity::Fast;
        }
        if args.iter().any(|a| a == "--paper") {
            return Fidelity::Paper;
        }
        match std::env::var("OPTRR_FIDELITY")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "fast" => Fidelity::Fast,
            "paper" => Fidelity::Paper,
            _ => Fidelity::Standard,
        }
    }

    /// The optimizer configuration for this fidelity at a given δ and seed.
    pub fn optimizer_config(self, delta: f64, seed: u64) -> OptrrConfig {
        match self {
            Fidelity::Fast => OptrrConfig {
                engine: emoo::EngineConfig {
                    population_size: 32,
                    archive_size: 16,
                    generations: 60,
                    mutation_rate: 0.5,
                    density_k: 1,
                },
                omega_slots: 500,
                ..OptrrConfig::fast(delta, seed)
            },
            Fidelity::Standard => OptrrConfig {
                engine: emoo::EngineConfig {
                    population_size: 60,
                    archive_size: 30,
                    generations: 400,
                    mutation_rate: 0.5,
                    density_k: 1,
                },
                omega_slots: 1_000,
                delta,
                seed,
                ..OptrrConfig::default()
            },
            Fidelity::Paper => OptrrConfig::paper_fidelity(delta, seed),
        }
    }

    /// The Warner-sweep resolution for this fidelity.
    pub fn sweep_steps(self) -> usize {
        match self {
            Fidelity::Fast => 201,
            Fidelity::Standard => 1001,
            Fidelity::Paper => optrr::PAPER_SWEEP_STEPS,
        }
    }
}

/// Reads the EMOO backend selection from the command line (`--nsga2` /
/// `--spea2`) and the `OPTRR_ENGINE` environment variable (`nsga2` /
/// `spea2`), defaulting to the paper's SPEA2. Every experiment binary runs
/// against either backend through this one switch.
pub fn engine_kind_from_env_and_args() -> EngineKind {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--nsga2") {
        return EngineKind::Nsga2;
    }
    if args.iter().any(|a| a == "--spea2") {
        return EngineKind::Spea2;
    }
    match std::env::var("OPTRR_ENGINE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "nsga2" | "nsga-ii" => EngineKind::Nsga2,
        _ => EngineKind::Spea2,
    }
}

/// Reads the parallel-evaluation switch from the command line
/// (`--parallel`) and the `OPTRR_PARALLEL` environment variable (`1` /
/// `true`). Parallel evaluation is bit-identical to serial; it only
/// changes wall-clock time.
pub fn parallel_evaluation_from_env_and_args() -> bool {
    if std::env::args().any(|a| a == "--parallel") {
        return true;
    }
    matches!(
        std::env::var("OPTRR_PARALLEL")
            .unwrap_or_default()
            .to_lowercase()
            .as_str(),
        "1" | "true" | "yes"
    )
}

/// Applies the run-wide engine selection (backend kind and parallel
/// evaluation) to a configuration. Every experiment binary calls this so
/// the backend is chosen purely by flags/environment, through one code
/// path.
pub fn apply_engine_selection(config: &mut OptrrConfig) {
    config.engine_kind = engine_kind_from_env_and_args();
    config.parallel_evaluation = parallel_evaluation_from_env_and_args();
}

/// The standard paper workload: 10 categories, 10,000 records.
pub fn paper_workload(source: SourceDistribution, seed: u64) -> synthetic::SyntheticWorkload {
    synthetic::generate(&SyntheticConfig::paper_default(source, seed))
        .expect("paper workload configuration is valid")
}

/// The Adult-surrogate first attribute used by Figure 5(c).
pub fn adult_first_attribute() -> (Categorical, usize) {
    let surrogate = datagen::adult::generate(&AdultConfig::default())
        .expect("default Adult surrogate configuration is valid");
    let dist = surrogate
        .first_attribute()
        .empirical_distribution()
        .expect("surrogate has records");
    (dist, surrogate.first_attribute().len())
}

/// Runs one "figure" experiment: Warner baseline vs OptRR on the given
/// prior, record count, and δ.
pub fn run_figure_experiment(
    experiment_id: &str,
    description: &str,
    prior: &Categorical,
    num_records: u64,
    delta: f64,
    fidelity: Fidelity,
    seed: u64,
) -> ExperimentReport {
    let mut config = fidelity.optimizer_config(delta, seed);
    config.num_records = num_records;
    apply_engine_selection(&mut config);

    let problem = OptrrProblem::new(prior.clone(), &config).expect("valid problem");
    let warner = baseline_sweep(&problem, SchemeKind::Warner, fidelity.sweep_steps());

    let optimizer = Optimizer::new(config).expect("validated configuration");
    let outcome = optimizer
        .optimize_distribution(prior)
        .expect("optimization over a validated prior succeeds");

    let comparison = FrontComparison::compare(&outcome.front, &warner.front, 100);
    ExperimentReport {
        experiment_id: experiment_id.to_string(),
        description: description.to_string(),
        delta,
        fronts: vec![warner.front, outcome.front],
        comparison: Some(comparison),
        optimizer_statistics: Some(outcome.statistics),
    }
}

/// Convenience: runs a figure experiment on a synthetic paper workload.
pub fn run_synthetic_figure(
    experiment_id: &str,
    source: SourceDistribution,
    delta: f64,
    fidelity: Fidelity,
    seed: u64,
) -> ExperimentReport {
    let workload = paper_workload(source.clone(), seed);
    let prior = workload
        .dataset
        .empirical_distribution()
        .expect("non-empty workload");
    let description = format!(
        "{} distribution, n = {} categories, N = {} records, delta = {delta}",
        source.label(),
        workload.config.num_categories,
        workload.config.num_records
    );
    run_figure_experiment(
        experiment_id,
        &description,
        &prior,
        workload.config.num_records as u64,
        delta,
        fidelity,
        seed,
    )
}

/// Prints a report in the standard format used by every experiment binary:
/// the aligned table followed by the CSV series.
pub fn print_report(report: &ExperimentReport) {
    println!("{}", report.render_table());
    println!("--- csv ---");
    println!("{}", report.render_csv());
}

/// Formats a one-line dominance summary used in EXPERIMENTS.md.
pub fn summary_line(report: &ExperimentReport) -> String {
    match &report.comparison {
        Some(c) => format!(
            "{}: better at {:.0}% of matched privacy levels, hypervolume {:.3e} vs {:.3e}, extra low-privacy coverage {:.3}",
            report.experiment_id,
            c.fraction_better_at_matched_privacy * 100.0,
            c.challenger_hypervolume,
            c.baseline_hypervolume,
            c.extra_low_privacy_coverage,
        ),
        None => format!("{}: no comparison", report.experiment_id),
    }
}

/// Extracts the OptRR front from a report (the second front by convention).
pub fn optrr_front(report: &ExperimentReport) -> &ParetoFront {
    report
        .fronts
        .iter()
        .find(|f| f.label == "OptRR")
        .expect("figure reports always contain an OptRR front")
}

/// Reads the `usize` value following a `--name` CLI flag, shared by the
/// load-generator binaries.
pub fn arg_value(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let at = args.iter().position(|a| a == name)?;
    args.get(at + 1)?.parse().ok()
}

/// Nearest-rank percentile of a sorted latency sample (0 when empty),
/// shared by the load-generator binaries.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

/// Default untimed warm-up iterations before a timed series: enough to
/// fault in code pages, warm caches, and let lazy pool/allocator state
/// settle so the first timed sample is not an outlier.
pub const DEFAULT_WARMUP_ITERS: usize = 3;

/// Summary statistics of one timed series, in nanoseconds per iteration.
///
/// The p50 is reported alongside the mean because microbenchmark samples
/// are contaminated by rare scheduler/allocator outliers that inflate the
/// mean by integer factors (the committed `BENCH_fitness.json` once showed
/// a 3.3 ms max against a 93 µs min in a 40-sample series); the median is
/// the number speedup comparisons should use.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct TimingSummary {
    /// Arithmetic mean of the samples.
    pub mean_ns: u64,
    /// Nearest-rank median of the samples.
    pub p50_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Number of timed samples (warm-up excluded).
    pub iterations: u64,
}

/// Summarizes raw per-iteration nanosecond samples. Panics on an empty
/// series — a benchmark that measured nothing has no baseline to report.
pub fn summarize_ns(samples: &[u64]) -> TimingSummary {
    assert!(!samples.is_empty(), "cannot summarize an empty series");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    TimingSummary {
        mean_ns: samples.iter().sum::<u64>() / samples.len() as u64,
        p50_ns: percentile(&sorted, 0.5),
        min_ns: sorted[0],
        max_ns: sorted[sorted.len() - 1],
        iterations: samples.len() as u64,
    }
}

/// Runs `warmup` untimed iterations of `f`, then `iters` timed ones, and
/// returns the timed per-iteration samples — the shared warm-up discipline
/// of the bench binaries.
pub fn time_iterations(warmup: usize, iters: usize, mut f: impl FnMut()) -> Vec<u64> {
    assert!(iters > 0, "a timed series needs at least one iteration");
    for _ in 0..warmup {
        f();
    }
    (0..iters)
        .map(|_| {
            let started = std::time::Instant::now();
            f();
            started.elapsed().as_nanos() as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_configs_are_valid_and_ordered() {
        for f in [Fidelity::Fast, Fidelity::Standard, Fidelity::Paper] {
            let cfg = f.optimizer_config(0.75, 1);
            assert!(cfg.validate().is_ok());
            assert_eq!(cfg.delta, 0.75);
        }
        assert!(
            Fidelity::Fast.optimizer_config(0.8, 0).engine.generations
                < Fidelity::Standard
                    .optimizer_config(0.8, 0)
                    .engine
                    .generations
        );
        assert!(
            Fidelity::Standard
                .optimizer_config(0.8, 0)
                .engine
                .generations
                < Fidelity::Paper.optimizer_config(0.8, 0).engine.generations
        );
        assert!(Fidelity::Fast.sweep_steps() < Fidelity::Paper.sweep_steps());
    }

    #[test]
    fn fidelity_from_env_defaults_to_standard() {
        // No --fast/--paper argument is passed to the test binary, and the
        // variable is cleared for this check.
        std::env::remove_var("OPTRR_FIDELITY");
        assert_eq!(Fidelity::from_env_and_args(), Fidelity::Standard);
    }

    #[test]
    fn paper_workload_has_paper_shape() {
        let w = paper_workload(SourceDistribution::standard_normal(), 1);
        assert_eq!(w.config.num_categories, 10);
        assert_eq!(w.config.num_records, 10_000);
    }

    #[test]
    fn adult_attribute_is_a_ten_category_distribution() {
        let (dist, n) = adult_first_attribute();
        assert_eq!(dist.num_categories(), 10);
        assert_eq!(n, 10_000);
    }

    #[test]
    fn timing_summary_reports_mean_and_median() {
        let s = summarize_ns(&[10, 20, 30, 40, 1_000]);
        assert_eq!(s.mean_ns, 220);
        assert_eq!(s.p50_ns, 30); // the outlier moves the mean, not the p50
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 1_000);
        assert_eq!(s.iterations, 5);
    }

    #[test]
    fn time_iterations_runs_warmup_untimed() {
        let mut calls = 0usize;
        let samples = time_iterations(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(samples.len(), 5);
    }

    #[test]
    fn fast_figure_experiment_produces_a_complete_report() {
        let report = run_synthetic_figure(
            "smoke-fig4",
            SourceDistribution::standard_normal(),
            0.8,
            Fidelity::Fast,
            13,
        );
        assert_eq!(report.fronts.len(), 2);
        assert_eq!(report.fronts[0].label, "Warner");
        assert_eq!(report.fronts[1].label, "OptRR");
        assert!(report.comparison.is_some());
        assert!(report.optimizer_statistics.is_some());
        assert!(!optrr_front(&report).is_empty());
        let line = summary_line(&report);
        assert!(line.contains("smoke-fig4"));
        let table = report.render_table();
        assert!(table.contains("OptRR"));
    }
}
