//! Load generator for the streaming disguise + estimation pipeline.
//!
//! Warms a service with one registered prior, then drives N concurrent
//! ingest streams: each stream samples raw batches from the registered
//! prior and pushes them through `Service::ingest` (server-side disguise
//! through the pinned matrix, sharded accumulation), calling `Estimate`
//! every few batches the way a live miner would. Reports ingest throughput
//! (records/s and batches/s) and per-call latency percentiles for both
//! verbs. The engine never runs during the measured phase — the streams
//! follow the registered prior, so no drift refresh fires, and the run
//! counter is asserted. Results land in `BENCH_pipeline.json` at the
//! workspace root, next to `BENCH_serve.json`.
//!
//! Usage:
//! `cargo run -p optrr-bench --release --bin bench_pipeline
//!  [-- --streams N --batches B --batch-size S --estimate-every E | --smoke]`

use bench_support::{arg_value, percentile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use serve::{Service, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct PipelineBaseline {
    streams: usize,
    batches_per_stream: usize,
    batch_size: usize,
    estimate_every: usize,
    ingested_records: u64,
    ingested_batches: u64,
    wall_seconds: f64,
    ingest_records_per_second: f64,
    ingest_batches_per_second: f64,
    ingest_latency_p50_ns: u64,
    ingest_latency_p99_ns: u64,
    estimates: u64,
    estimate_latency_p50_ns: u64,
    estimate_latency_p99_ns: u64,
    final_mse_vs_prior: f64,
    final_method: String,
    engine_runs_warmup: u64,
    engine_runs_after_load: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let streams = arg_value("--streams")
        .unwrap_or_else(|| {
            if smoke {
                2
            } else {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            }
        })
        .max(1);
    let batches_per_stream = arg_value("--batches")
        .unwrap_or(if smoke { 20 } else { 200 })
        .max(1);
    let batch_size = arg_value("--batch-size")
        .unwrap_or(if smoke { 200 } else { 500 })
        .max(1);
    let estimate_every = arg_value("--estimate-every")
        .unwrap_or(if smoke { 8 } else { 16 })
        .max(1);

    // Drift refresh is disabled for the measured phase: a mid-run estimate
    // sees a thread-timing-dependent subset of the other streams' batches,
    // and a rare sampling fluctuation past the drift threshold would
    // otherwise schedule an engine run and fail the no-rerun assertion.
    let service = Arc::new(Service::new(ServiceConfig {
        refresh_on_drift: false,
        ..ServiceConfig::smoke(2008)
    }));
    let prior_weights = [0.35, 0.25, 0.2, 0.12, 0.08];
    let warm_started = Instant::now();
    let entry = service
        .register(Some("pipeline"), &prior_weights, 0.8, None, true)
        .expect("registration succeeds");
    println!(
        "warmed key {:x} in {:.2}s",
        entry.key(),
        warm_started.elapsed().as_secs_f64()
    );
    let (_, engine_runs_warmup, _, _) = service.service_stats();
    let prior = entry.prior().clone();

    let load_started = Instant::now();
    let mut ingest_latencies: Vec<u64> = Vec::new();
    let mut estimate_latencies: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..streams)
            .map(|stream| {
                let service = Arc::clone(&service);
                let entry = Arc::clone(&entry);
                let prior = prior.clone();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(9000 + stream as u64);
                    let mut ingest_ns = Vec::with_capacity(batches_per_stream);
                    let mut estimate_ns = Vec::new();
                    for batch in 0..batches_per_stream {
                        let records = prior.sample_many(&mut rng, batch_size);
                        let started = Instant::now();
                        service
                            .ingest(
                                &entry,
                                Some(0.0),
                                Some(&records),
                                None,
                                Some((stream * 100_000 + batch) as u64),
                            )
                            .expect("ingest batch lands");
                        ingest_ns.push(started.elapsed().as_nanos() as u64);
                        if (batch + 1) % estimate_every == 0 {
                            // Mid-run estimates cover whatever subset of the
                            // other streams' batches happens to have landed,
                            // so only latency is recorded here; the no-drift
                            // assertion runs on the deterministic final
                            // estimate over everything merged.
                            let started = Instant::now();
                            service.estimate(&entry).expect("estimate succeeds");
                            estimate_ns.push(started.elapsed().as_nanos() as u64);
                        }
                    }
                    (ingest_ns, estimate_ns)
                })
            })
            .collect();
        for handle in handles {
            let (ingest_ns, estimate_ns) = handle.join().expect("stream panicked");
            ingest_latencies.extend(ingest_ns);
            estimate_latencies.extend(estimate_ns);
        }
    });
    let wall_seconds = load_started.elapsed().as_secs_f64();

    let (_, engine_runs_after_load, _, _) = service.service_stats();
    assert_eq!(
        engine_runs_after_load, engine_runs_warmup,
        "the measured phase must never re-run the engine"
    );

    // One final estimate over everything the streams ingested: the merged
    // accumulator is order-independent, so this one is deterministic and
    // must sit far under the drift threshold.
    let final_estimate = service.estimate(&entry).expect("final estimate");
    assert!(
        !final_estimate.drifted,
        "streams follow the prior; the final estimate must not drift (mse {})",
        final_estimate.mse_vs_prior
    );
    let pipeline = entry.pipeline().expect("pipeline pinned");
    let ingested_batches = pipeline.counts().batches();
    let ingested_records = pipeline.counts().total();
    assert_eq!(
        ingested_records,
        (streams * batches_per_stream * batch_size) as u64
    );

    ingest_latencies.sort_unstable();
    estimate_latencies.sort_unstable();
    let baseline = PipelineBaseline {
        streams,
        batches_per_stream,
        batch_size,
        estimate_every,
        ingested_records,
        ingested_batches,
        wall_seconds,
        ingest_records_per_second: ingested_records as f64 / wall_seconds.max(1e-9),
        ingest_batches_per_second: ingested_batches as f64 / wall_seconds.max(1e-9),
        ingest_latency_p50_ns: percentile(&ingest_latencies, 0.50),
        ingest_latency_p99_ns: percentile(&ingest_latencies, 0.99),
        estimates: estimate_latencies.len() as u64 + 1,
        estimate_latency_p50_ns: percentile(&estimate_latencies, 0.50),
        estimate_latency_p99_ns: percentile(&estimate_latencies, 0.99),
        final_mse_vs_prior: final_estimate.mse_vs_prior,
        final_method: final_estimate.method.to_string(),
        engine_runs_warmup,
        engine_runs_after_load,
    };

    println!(
        "{} streams x {} batches x {} records: {:.0} records/s, \
         ingest p50 {} ns p99 {} ns, estimate p50 {} ns p99 {} ns, final mse {:.3e}",
        baseline.streams,
        baseline.batches_per_stream,
        baseline.batch_size,
        baseline.ingest_records_per_second,
        baseline.ingest_latency_p50_ns,
        baseline.ingest_latency_p99_ns,
        baseline.estimate_latency_p50_ns,
        baseline.estimate_latency_p99_ns,
        baseline.final_mse_vs_prior
    );

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("wrote baseline {path}"),
        Err(error) => eprintln!("warning: could not write {path}: {error}"),
    }
}
