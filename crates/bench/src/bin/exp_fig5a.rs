//! E-FIG5A — Figure 5(a): Warner vs OptRR on a gamma(α = 1.0, β = 2.0)
//! workload with δ = 0.75.
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_fig5a [--fast|--paper]`

use bench_support::{print_report, run_synthetic_figure, summary_line, Fidelity};
use datagen::SourceDistribution;

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let report = run_synthetic_figure(
        "fig5a-gamma-delta0.75",
        SourceDistribution::paper_gamma(),
        0.75,
        fidelity,
        2008,
    );
    print_report(&report);
    println!("=== figure 5(a) summary ===");
    println!("{}", summary_line(&report));
}
