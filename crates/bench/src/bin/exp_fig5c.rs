//! E-FIG5C — Figure 5(c): Warner vs OptRR on the first attribute of the
//! Adult data set (here: the synthetic Adult `age` surrogate documented in
//! DESIGN.md), δ = 0.75.
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_fig5c [--fast|--paper]`

use bench_support::{
    adult_first_attribute, print_report, run_figure_experiment, summary_line, Fidelity,
};

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let (prior, num_records) = adult_first_attribute();
    let report = run_figure_experiment(
        "fig5c-adult-age-delta0.75",
        "Adult first attribute (synthetic age surrogate), 10 bins, delta = 0.75",
        &prior,
        num_records as u64,
        0.75,
        fidelity,
        2008,
    );
    print_report(&report);
    println!("=== figure 5(c) summary ===");
    println!("{}", summary_line(&report));
}
