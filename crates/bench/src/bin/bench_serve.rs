//! Load generator for the matrix-serving subsystem.
//!
//! Warms a service with a small batch of priors through the multi-prior
//! front door, then drives N concurrent query streams (point queries across
//! the privacy axis, utility-budget queries, and periodic full-front
//! queries) against the warm sharded store and reports throughput and
//! latency percentiles. The engine never runs during the measured phase —
//! the run counters are asserted — so this measures the serving hot path:
//! registry resolution plus sharded Ω reads. Results land in
//! `BENCH_serve.json` at the workspace root.
//!
//! `--smoke` runs the multi-tenant lifecycle scenario instead: 100+ keys
//! registered under a deliberately small memory budget, asserting that
//! LRU evictions occur, the byte accounting stays under the budget, and
//! every key — evicted or not — still answers point queries correctly
//! after its transparent re-warm. Results land in
//! `BENCH_serve_tenants.json`.
//!
//! Both modes also measure the observability cost: the same query mix
//! driven with the metrics registry recording and disabled, reported as
//! a `metrics_overhead` row (the budget is < 5% of query throughput;
//! responses are bitwise-identical either way).
//!
//! Usage: `cargo run -p optrr-bench --release --bin bench_serve
//!         [-- --streams N --queries M | --smoke [--tenants K]]`

use bench_support::{arg_value, percentile};
use serde::Serialize;
use serve::{KeyState, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct ServeBaseline {
    streams: usize,
    queries_per_stream: usize,
    total_queries: u64,
    wall_seconds: f64,
    throughput_qps: f64,
    latency_mean_ns: u64,
    latency_p50_ns: u64,
    latency_p95_ns: u64,
    latency_p99_ns: u64,
    latency_max_ns: u64,
    registered_keys: usize,
    engine_runs_warmup: u64,
    engine_runs_after_load: u64,
    metrics_overhead: MetricsOverhead,
}

/// The observability cost row: the same single-threaded query mix driven
/// against two identically-seeded services, one with the metrics
/// registry and event trace recording and one with them disabled. The
/// responses are bitwise-identical either way (the invisibility
/// invariant); this row bounds what the *recording* costs the hot path.
#[derive(Serialize)]
struct MetricsOverhead {
    queries_per_side: usize,
    metrics_on_qps: f64,
    metrics_off_qps: f64,
    overhead_percent: f64,
}

/// Measures the metrics-on vs metrics-off query throughput on the warm
/// hot path. Best-of-3 per side to shed scheduler noise.
fn measure_metrics_overhead(queries: usize) -> MetricsOverhead {
    let side = |metrics: bool| -> f64 {
        let service = Arc::new(Service::new(ServiceConfig {
            metrics,
            ..ServiceConfig::smoke(2008)
        }));
        let priors: Vec<Vec<f64>> = vec![
            vec![0.35, 0.25, 0.2, 0.12, 0.08],
            vec![0.5, 0.2, 0.12, 0.1, 0.08],
            vec![0.25, 0.2, 0.2, 0.2, 0.15],
        ];
        let (entries, _) = service
            .register_batch(None, &priors, 0.8, None)
            .expect("batch registration succeeds");
        let ranges: Vec<(f64, f64)> = entries
            .iter()
            .map(|e| e.store().privacy_range().expect("warm store is non-empty"))
            .collect();
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let started = Instant::now();
            for step in 0..queries {
                let which = step % entries.len();
                let entry = &entries[which];
                let (lo, hi) = ranges[which];
                let t = ((step * 7919) % 1000) as f64 / 999.0;
                if step % 2 == 0 {
                    let found = service.best_for_privacy(entry, lo + (hi - lo) * t);
                    assert!(found.is_some());
                } else {
                    let found = service.best_for_mse(entry, f64::INFINITY);
                    assert!(found.is_some());
                }
            }
            best = best.min(started.elapsed().as_secs_f64());
        }
        queries as f64 / best.max(1e-9)
    };
    let metrics_on_qps = side(true);
    let metrics_off_qps = side(false);
    let overhead = MetricsOverhead {
        queries_per_side: queries,
        metrics_on_qps,
        metrics_off_qps,
        overhead_percent: (1.0 - metrics_on_qps / metrics_off_qps.max(1e-9)) * 100.0,
    };
    println!(
        "metrics overhead: on {:.0} q/s vs off {:.0} q/s ({:+.2}%)",
        overhead.metrics_on_qps, overhead.metrics_off_qps, overhead.overhead_percent
    );
    if overhead.overhead_percent >= 5.0 {
        eprintln!(
            "warning: metrics recording costs {:.2}% query throughput (budget is 5%)",
            overhead.overhead_percent
        );
    }
    overhead
}

#[derive(Serialize)]
struct TenantBaseline {
    tenants: usize,
    budget_bytes: u64,
    peak_unbudgeted_bytes_estimate: u64,
    resident_bytes_after_load: u64,
    resident_bytes_after_queries: u64,
    evictions_after_load: u64,
    evictions_total: u64,
    evicted_keys_after_load: usize,
    rewarms_total: u64,
    register_seconds: f64,
    query_seconds: f64,
    metrics_overhead: MetricsOverhead,
}

/// The multi-tenant lifecycle smoke: many keys, small budget.
fn run_tenant_smoke() {
    let tenants = arg_value("--tenants").unwrap_or(120).max(8);
    // Deterministic 4-category priors, all distinct fingerprints.
    let priors: Vec<Vec<f64>> = (0..tenants)
        .map(|i| {
            let skew = 1.0 + (i % 37) as f64 * 0.11 + (i / 37) as f64 * 0.017;
            (0..4).map(|c| 1.0 / (c as f64 + skew)).collect()
        })
        .collect();

    // Probe a handful of keys on an unbudgeted twin to size the budget at
    // roughly a quarter of the full load.
    let probe = Arc::new(Service::new(ServiceConfig::tiny(2008)));
    for prior in priors.iter().take(8) {
        probe
            .register(None, prior, 0.8, None, true)
            .expect("probe registration succeeds");
    }
    let (probe_bytes, _, _) = probe.memory_stats();
    let per_key = (probe_bytes / 8).max(1);
    let budget = per_key * tenants as u64 / 4;

    let mut config = ServiceConfig::tiny(2008);
    config.memory_budget_bytes = Some(budget);
    let service = Arc::new(Service::new(config));

    let register_started = Instant::now();
    let (entries, warmed) = service
        .register_batch(None, &priors, 0.8, None)
        .expect("batch registration succeeds");
    service.wait_idle();
    let register_seconds = register_started.elapsed().as_secs_f64();
    assert_eq!(warmed, tenants, "every tenant needs its own warm-up");

    let (resident_after_load, _, evictions_after_load) = service.memory_stats();
    let evicted_after_load = entries
        .iter()
        .filter(|e| e.state() == KeyState::Evicted)
        .count();
    assert!(
        evictions_after_load > 0,
        "{tenants} tenants must not fit a {budget}-byte budget"
    );
    assert!(
        resident_after_load <= budget,
        "byte accounting above budget after load: {resident_after_load} > {budget}"
    );
    println!(
        "{tenants} tenants under a {budget}-byte budget: {evictions_after_load} evictions, \
         {evicted_after_load} evicted, {resident_after_load} bytes resident \
         (registered in {register_seconds:.2}s)"
    );

    // Every key still answers — evicted ones re-warm transparently — and
    // the accounting stays under budget throughout.
    let query_started = Instant::now();
    for entry in &entries {
        let found = service.best_for_privacy(entry, 0.0);
        assert!(
            found.is_some(),
            "key {:x} lost its answers after eviction",
            entry.key()
        );
        let (resident, _, _) = service.memory_stats();
        assert!(
            resident <= budget,
            "byte accounting above budget mid-queries: {resident} > {budget}"
        );
    }
    service.wait_idle();
    let query_seconds = query_started.elapsed().as_secs_f64();
    let (resident_after_queries, _, evictions_total) = service.memory_stats();
    assert!(resident_after_queries <= budget);
    let rewarms_total: u64 = entries.iter().map(|e| e.rewarms()).sum();
    assert!(
        rewarms_total > 0,
        "querying every key must have re-warmed the evicted ones"
    );

    let baseline = TenantBaseline {
        tenants,
        budget_bytes: budget,
        peak_unbudgeted_bytes_estimate: per_key * tenants as u64,
        resident_bytes_after_load: resident_after_load,
        resident_bytes_after_queries: resident_after_queries,
        evictions_after_load,
        evictions_total,
        evicted_keys_after_load: evicted_after_load,
        rewarms_total,
        register_seconds,
        query_seconds,
        metrics_overhead: measure_metrics_overhead(20_000),
    };
    println!(
        "all {tenants} tenants answered; {rewarms_total} re-warms, {evictions_total} evictions \
         total, {resident_after_queries} bytes resident (queried in {query_seconds:.2}s)"
    );
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve_tenants.json"
    );
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("wrote baseline {path}"),
        Err(error) => eprintln!("warning: could not write {path}: {error}"),
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_tenant_smoke();
        return;
    }
    let streams = arg_value("--streams")
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .max(1);
    let queries_per_stream = arg_value("--queries").unwrap_or(5_000).max(1);

    let service = Arc::new(Service::new(ServiceConfig::smoke(2008)));
    let priors: Vec<Vec<f64>> = vec![
        vec![0.35, 0.25, 0.2, 0.12, 0.08],
        vec![0.5, 0.2, 0.12, 0.1, 0.08],
        vec![0.25, 0.2, 0.2, 0.2, 0.15],
    ];
    let warm_started = Instant::now();
    let (entries, warmed) = service
        .register_batch(None, &priors, 0.8, None)
        .expect("batch registration succeeds");
    let warmup_seconds = warm_started.elapsed().as_secs_f64();
    let (_, engine_runs_warmup, _, _) = service.service_stats();
    println!("warmed {warmed} keys in {warmup_seconds:.2}s ({engine_runs_warmup} engine runs)");

    let privacy_ranges: Vec<(f64, f64)> = entries
        .iter()
        .map(|e| e.store().privacy_range().expect("warm store is non-empty"))
        .collect();

    let load_started = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(streams * queries_per_stream);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..streams)
            .map(|stream| {
                let service = Arc::clone(&service);
                let entries = &entries;
                let privacy_ranges = &privacy_ranges;
                scope.spawn(move || {
                    let mut stream_latencies = Vec::with_capacity(queries_per_stream);
                    for step in 0..queries_per_stream {
                        let which = (stream + step) % entries.len();
                        let entry = &entries[which];
                        let (lo, hi) = privacy_ranges[which];
                        let t = ((step * 7919 + stream * 104_729) % 1000) as f64 / 999.0;
                        let started = Instant::now();
                        match step % 64 {
                            63 => {
                                // Periodic full-front query (merge + pareto).
                                let front = service.front(entry);
                                assert!(!front.is_empty());
                            }
                            s if s % 2 == 0 => {
                                let p = lo + (hi - lo) * t;
                                let found = service.best_for_privacy(entry, p);
                                assert!(found.is_some());
                            }
                            _ => {
                                // A generous utility budget always matches.
                                let found = service.best_for_mse(entry, f64::INFINITY);
                                assert!(found.is_some());
                            }
                        }
                        stream_latencies.push(started.elapsed().as_nanos() as u64);
                    }
                    stream_latencies
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("query stream panicked"));
        }
    });
    let wall_seconds = load_started.elapsed().as_secs_f64();

    let (registered_keys, engine_runs_after_load, queries, warm_hits) = service.service_stats();
    assert_eq!(
        engine_runs_after_load, engine_runs_warmup,
        "the load phase must never re-run the engine"
    );
    assert_eq!(queries, warm_hits, "every load query is a warm hit");

    latencies.sort_unstable();
    let total_queries = latencies.len() as u64;
    let mean = latencies.iter().sum::<u64>() / total_queries.max(1);
    let baseline = ServeBaseline {
        streams,
        queries_per_stream,
        total_queries,
        wall_seconds,
        throughput_qps: total_queries as f64 / wall_seconds.max(1e-9),
        latency_mean_ns: mean,
        latency_p50_ns: percentile(&latencies, 0.50),
        latency_p95_ns: percentile(&latencies, 0.95),
        latency_p99_ns: percentile(&latencies, 0.99),
        latency_max_ns: percentile(&latencies, 1.0),
        registered_keys,
        engine_runs_warmup,
        engine_runs_after_load,
        metrics_overhead: measure_metrics_overhead(20_000),
    };

    println!(
        "{} streams x {} queries: {:.0} q/s, p50 {} ns, p95 {} ns, p99 {} ns",
        baseline.streams,
        baseline.queries_per_stream,
        baseline.throughput_qps,
        baseline.latency_p50_ns,
        baseline.latency_p95_ns,
        baseline.latency_p99_ns
    );

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("wrote baseline {path}"),
        Err(error) => eprintln!("warning: could not write {path}: {error}"),
    }
}
