//! Benchmark of the incremental fitness kernel against from-scratch SPEA2
//! fitness assignment.
//!
//! Simulates the engine's steady state: a combined population of `n`
//! individuals where a `survival` fraction (the archive, ≥ 50% here)
//! carries over between generations and the rest are fresh offspring. Each
//! generation is fitness-assigned twice — once from scratch
//! ([`emoo::assign_fitness`]) and once through a persistent
//! [`emoo::FitnessKernel`] (serial and forced-parallel fill) — with the
//! results asserted bitwise equal before the timings are trusted. Results
//! land in `BENCH_fitness.json` at the workspace root.
//!
//! Usage: `cargo run -p optrr-bench --release --bin bench_fitness
//!  [-- --generations G --survival-percent P | --smoke]`

use bench_support::arg_value;
use emoo::kernel::FitnessKernel;
use emoo::{assign_fitness, Individual, Objectives};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// One measured series, in the same row shape as the other BENCH files.
#[derive(Serialize)]
struct Entry {
    name: String,
    mean_ns: u64,
    min_ns: u64,
    max_ns: u64,
    iterations: u64,
}

/// The emitted baseline: per-series rows plus the headline speedups the
/// acceptance criteria read.
#[derive(Serialize)]
struct FitnessBaseline {
    generations: usize,
    survival: f64,
    entries: Vec<Entry>,
    /// Mean from-scratch time over mean incremental (serial) time, per n.
    speedup_incremental: Vec<SpeedupEntry>,
}

#[derive(Serialize)]
struct SpeedupEntry {
    n: usize,
    scratch_over_incremental: f64,
    scratch_over_incremental_parallel: f64,
}

/// A synthetic two-objective point cloud shaped like the engine's: mostly
/// near a front with some dominated stragglers.
fn random_point(rng: &mut StdRng) -> Objectives {
    let t: f64 = rng.gen();
    let noise: f64 = rng.gen::<f64>() * 0.3;
    Objectives::pair(t + noise, (1.0 - t) + noise)
}

fn summarize(name: String, samples: &[u64]) -> Entry {
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    Entry {
        name,
        mean_ns: mean,
        min_ns: *samples.iter().min().expect("non-empty"),
        max_ns: *samples.iter().max().expect("non-empty"),
        iterations: samples.len() as u64,
    }
}

/// Drives `generations` steps of one population of size `n` with the given
/// survivor count, timing the supplied assignment closure per generation
/// and asserting it reproduces the from-scratch fitness bitwise.
fn run_series(
    n: usize,
    survivors: usize,
    generations: usize,
    density_k: usize,
    seed: u64,
    mut assign: impl FnMut(&mut Vec<Individual<u64>>, &[u64]) -> u64,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = 0u64;
    let mut members: Vec<Individual<u64>> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    let mut samples = Vec::with_capacity(generations);
    for _ in 0..generations {
        // Survivors keep their ids; the rest of the population is fresh.
        members.truncate(survivors.min(members.len()));
        ids.truncate(members.len());
        while members.len() < n {
            members.push(Individual::new(next_id, random_point(&mut rng)));
            ids.push(next_id);
            next_id += 1;
        }
        samples.push(assign(&mut members, &ids));

        // Cross-check against the reference implementation (outside the
        // timed section).
        let mut reference: Vec<Individual<u64>> = members.clone();
        for ind in &mut reference {
            ind.fitness = None;
        }
        assign_fitness(&mut reference, density_k);
        for (a, b) in members.iter().zip(&reference) {
            assert_eq!(
                a.fitness.expect("assigned").to_bits(),
                b.fitness.expect("assigned").to_bits(),
                "incremental fitness diverged from scratch"
            );
        }
    }
    samples
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let generations = arg_value("--generations").unwrap_or(if smoke { 6 } else { 40 });
    let survival_percent = arg_value("--survival-percent").unwrap_or(50).min(95);
    let density_k = 1usize;
    let sizes = [50usize, 100, 200];

    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    for &n in &sizes {
        let survivors = n * survival_percent / 100;

        // From scratch: the pre-kernel O(n²) path, every generation.
        let scratch = run_series(n, survivors, generations, density_k, 7, |members, _ids| {
            let started = Instant::now();
            assign_fitness(members, density_k);
            started.elapsed().as_nanos() as u64
        });

        // Incremental: one kernel persists across the series. The serial
        // variant never crosses the parallel threshold at these sizes; the
        // parallel variant always does (threshold 0).
        let timed_kernel = |threshold: usize| {
            let mut kernel = FitnessKernel::with_parallel_threshold(threshold);
            run_series(n, survivors, generations, density_k, 7, |members, ids| {
                let started = Instant::now();
                kernel.assign_fitness(members, ids, density_k);
                started.elapsed().as_nanos() as u64
            })
        };
        let incremental = timed_kernel(usize::MAX);
        let incremental_parallel = timed_kernel(0);

        let scratch_row = summarize(format!("fitness_scratch/n{n}"), &scratch);
        let serial_row = summarize(format!("fitness_incremental_serial/n{n}"), &incremental);
        let parallel_row = summarize(
            format!("fitness_incremental_parallel/n{n}"),
            &incremental_parallel,
        );
        let speedup = scratch_row.mean_ns as f64 / serial_row.mean_ns.max(1) as f64;
        let speedup_parallel = scratch_row.mean_ns as f64 / parallel_row.mean_ns.max(1) as f64;
        println!(
            "n={n:<4} survivors={survivors:<4} scratch {:>9} ns  incremental {:>9} ns ({speedup:.2}x)  parallel {:>9} ns ({speedup_parallel:.2}x)",
            scratch_row.mean_ns, serial_row.mean_ns, parallel_row.mean_ns
        );
        speedups.push(SpeedupEntry {
            n,
            scratch_over_incremental: speedup,
            scratch_over_incremental_parallel: speedup_parallel,
        });
        entries.push(scratch_row);
        entries.push(serial_row);
        entries.push(parallel_row);
    }

    if smoke {
        println!("smoke mode: skipping BENCH_fitness.json baseline write");
        return;
    }
    let baseline = FitnessBaseline {
        generations,
        survival: survival_percent as f64 / 100.0,
        entries,
        speedup_incremental: speedups,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fitness.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("wrote baseline {path}"),
        Err(error) => eprintln!("warning: could not write {path}: {error}"),
    }
}
