//! Benchmark of the incremental fitness kernel against from-scratch SPEA2
//! fitness assignment.
//!
//! Simulates the engine's steady state: a combined population of `n`
//! individuals where a `survival` fraction (the archive, ≥ 50% here)
//! carries over between generations and the rest are fresh offspring. Each
//! generation is fitness-assigned four ways — from scratch
//! ([`emoo::assign_fitness`]), and through a persistent
//! [`emoo::FitnessKernel`] in serial, forced-parallel, and calibrated
//! (production-default) configurations — with the results asserted bitwise
//! equal before the timings are trusted. The first generations of every
//! series are untimed warm-up, and speedups compare medians, not means.
//!
//! The calibrated series is the one the engines actually run:
//! [`FitnessKernel::new`] reads the threshold installed by
//! [`optrr::tuning`] (startup probe, or the `OPTRR_TUNE` override) and
//! switches between the serial and parallel fill per generation. The run
//! asserts that this chosen path is never more than 10% slower (p50) than
//! the better of the two fixed paths at any benched `n` — the guard
//! against the old regression where the reported "parallel" series forced
//! the fan-out at sizes it could not pay for. Results land in
//! `BENCH_fitness.json` at the workspace root.
//!
//! Usage: `cargo run -p optrr-bench --release --bin bench_fitness
//!  [-- --generations G --survival-percent P | --smoke]`

use bench_support::{arg_value, summarize_ns, TimingSummary, DEFAULT_WARMUP_ITERS};
use emoo::kernel::FitnessKernel;
use emoo::{assign_fitness, Individual, Objectives};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// One measured series, in the same row shape as the other BENCH files.
#[derive(Serialize)]
struct Entry {
    name: String,
    mean_ns: u64,
    p50_ns: u64,
    min_ns: u64,
    max_ns: u64,
    iterations: u64,
}

impl Entry {
    fn new(name: String, timing: TimingSummary) -> Self {
        Self {
            name,
            mean_ns: timing.mean_ns,
            p50_ns: timing.p50_ns,
            min_ns: timing.min_ns,
            max_ns: timing.max_ns,
            iterations: timing.iterations,
        }
    }
}

/// The emitted baseline: per-series rows plus the headline speedups the
/// acceptance criteria read. All speedups are p50-over-p50.
#[derive(Serialize)]
struct FitnessBaseline {
    generations: usize,
    warmup_generations: usize,
    survival: f64,
    /// The kernel threshold the calibrated series ran with.
    calibrated_min_pairs: usize,
    entries: Vec<Entry>,
    speedup_incremental: Vec<SpeedupEntry>,
}

#[derive(Serialize)]
struct SpeedupEntry {
    n: usize,
    /// Scratch p50 over serial-kernel p50.
    scratch_over_incremental: f64,
    /// Scratch p50 over the calibrated (production-default) kernel p50 —
    /// the path the engines actually take.
    scratch_over_incremental_parallel: f64,
    /// Scratch p50 over the forced-parallel (threshold 0) kernel p50, the
    /// diagnostic that documents why the threshold exists.
    scratch_over_forced_parallel: f64,
}

/// A synthetic two-objective point cloud shaped like the engine's: mostly
/// near a front with some dominated stragglers.
fn random_point(rng: &mut StdRng) -> Objectives {
    let t: f64 = rng.gen();
    let noise: f64 = rng.gen::<f64>() * 0.3;
    Objectives::pair(t + noise, (1.0 - t) + noise)
}

/// Drives `warmup + generations` steps of one population of size `n` with
/// the given survivor count, timing the supplied assignment closure per
/// generation, asserting it reproduces the from-scratch fitness bitwise,
/// and discarding the warm-up samples.
fn run_series(
    n: usize,
    survivors: usize,
    warmup: usize,
    generations: usize,
    density_k: usize,
    seed: u64,
    mut assign: impl FnMut(&mut Vec<Individual<u64>>, &[u64]) -> u64,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = 0u64;
    let mut members: Vec<Individual<u64>> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    let mut samples = Vec::with_capacity(warmup + generations);
    for _ in 0..(warmup + generations) {
        // Survivors keep their ids; the rest of the population is fresh.
        members.truncate(survivors.min(members.len()));
        ids.truncate(members.len());
        while members.len() < n {
            members.push(Individual::new(next_id, random_point(&mut rng)));
            ids.push(next_id);
            next_id += 1;
        }
        samples.push(assign(&mut members, &ids));

        // Cross-check against the reference implementation (outside the
        // timed section).
        let mut reference: Vec<Individual<u64>> = members.clone();
        for ind in &mut reference {
            ind.fitness = None;
        }
        assign_fitness(&mut reference, density_k);
        for (a, b) in members.iter().zip(&reference) {
            assert_eq!(
                a.fitness.expect("assigned").to_bits(),
                b.fitness.expect("assigned").to_bits(),
                "incremental fitness diverged from scratch"
            );
        }
    }
    samples.split_off(warmup)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let generations = arg_value("--generations").unwrap_or(if smoke { 6 } else { 40 });
    let warmup = DEFAULT_WARMUP_ITERS;
    let survival_percent = arg_value("--survival-percent").unwrap_or(50).min(95);
    let density_k = 1usize;
    let sizes = [50usize, 100, 200];

    // Install the startup-calibrated kernel threshold (or the OPTRR_TUNE
    // override) before any FitnessKernel::new() below reads it.
    let tuning = optrr::tuning();
    println!(
        "tuning: kernel_min_pairs={} batch_min_work={} calibrated={}",
        tuning.kernel_min_pairs, tuning.batch_min_work, tuning.calibrated
    );

    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    for &n in &sizes {
        let survivors = n * survival_percent / 100;

        // From scratch: the pre-kernel O(n²) path, every generation.
        let scratch = run_series(
            n,
            survivors,
            warmup,
            generations,
            density_k,
            7,
            |members, _ids| {
                let started = Instant::now();
                assign_fitness(members, density_k);
                started.elapsed().as_nanos() as u64
            },
        );

        // Incremental: one kernel persists across each series. Serial
        // never crosses the parallel threshold, forced always does, and
        // the calibrated kernel (the engines' configuration) decides per
        // generation from the installed threshold.
        let timed_kernel = |mut kernel: FitnessKernel| {
            run_series(
                n,
                survivors,
                warmup,
                generations,
                density_k,
                7,
                move |members, ids| {
                    let started = Instant::now();
                    kernel.assign_fitness(members, ids, density_k);
                    started.elapsed().as_nanos() as u64
                },
            )
        };
        let serial = summarize_ns(&timed_kernel(FitnessKernel::with_parallel_threshold(
            usize::MAX,
        )));
        let forced = summarize_ns(&timed_kernel(FitnessKernel::with_parallel_threshold(0)));
        let calibrated = summarize_ns(&timed_kernel(FitnessKernel::new()));
        let scratch = summarize_ns(&scratch);

        // The production path must track the better fixed path: >10%
        // slower than either at any benched n is the benchmark regression
        // this guard exists for.
        let best_fixed = serial.p50_ns.min(forced.p50_ns);
        assert!(
            calibrated.p50_ns as f64 <= best_fixed as f64 * 1.10,
            "calibrated kernel path is >10% slower than the best fixed path at n={n}: \
             calibrated p50 {} ns vs best fixed p50 {} ns (serial {}, forced-parallel {})",
            calibrated.p50_ns,
            best_fixed,
            serial.p50_ns,
            forced.p50_ns,
        );

        let speedup = scratch.p50_ns as f64 / serial.p50_ns.max(1) as f64;
        let speedup_calibrated = scratch.p50_ns as f64 / calibrated.p50_ns.max(1) as f64;
        let speedup_forced = scratch.p50_ns as f64 / forced.p50_ns.max(1) as f64;
        println!(
            "n={n:<4} survivors={survivors:<4} scratch {:>9} ns  serial {:>9} ns ({speedup:.2}x)  calibrated {:>9} ns ({speedup_calibrated:.2}x)  forced-parallel {:>9} ns ({speedup_forced:.2}x)",
            scratch.p50_ns, serial.p50_ns, calibrated.p50_ns, forced.p50_ns
        );
        speedups.push(SpeedupEntry {
            n,
            scratch_over_incremental: speedup,
            scratch_over_incremental_parallel: speedup_calibrated,
            scratch_over_forced_parallel: speedup_forced,
        });
        entries.push(Entry::new(format!("fitness_scratch/n{n}"), scratch));
        entries.push(Entry::new(
            format!("fitness_incremental_serial/n{n}"),
            serial,
        ));
        entries.push(Entry::new(
            format!("fitness_incremental_parallel/n{n}"),
            calibrated,
        ));
        entries.push(Entry::new(
            format!("fitness_incremental_forced_parallel/n{n}"),
            forced,
        ));
    }

    if smoke {
        println!("smoke mode: skipping BENCH_fitness.json baseline write");
        return;
    }
    let baseline = FitnessBaseline {
        generations,
        warmup_generations: warmup,
        survival: survival_percent as f64 / 100.0,
        calibrated_min_pairs: emoo::kernel::default_parallel_min_pairs(),
        entries,
        speedup_incremental: speedups,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fitness.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("wrote baseline {path}"),
        Err(error) => eprintln!("warning: could not write {path}: {error}"),
    }
}
