//! E-FIG5B — Figure 5(b): Warner vs OptRR on a discrete-uniform workload
//! with δ = 0.75.
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_fig5b [--fast|--paper]`

use bench_support::{print_report, run_synthetic_figure, summary_line, Fidelity};
use datagen::SourceDistribution;

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let report = run_synthetic_figure(
        "fig5b-uniform-delta0.75",
        SourceDistribution::DiscreteUniform,
        0.75,
        fidelity,
        2008,
    );
    print_report(&report);
    println!("=== figure 5(b) summary ===");
    println!("{}", summary_line(&report));
}
