//! A-SYM ablation — the full (asymmetric) OptRR search vs a search
//! restricted to symmetric matrices (the FRAPP restriction the paper's
//! related-work section criticizes).
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_ablation_symmetric [--fast|--paper]`

use bench_support::{paper_workload, print_report, Fidelity};
use datagen::SourceDistribution;
use optrr::{ExperimentReport, FrontComparison, Optimizer};

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let delta = 0.75;
    let workload = paper_workload(SourceDistribution::paper_gamma(), 2008);
    let prior = workload
        .dataset
        .empirical_distribution()
        .expect("non-empty");

    let run = |symmetric_only: bool, label: &str| {
        let mut config = fidelity.optimizer_config(delta, 2008);
        config.num_records = workload.config.num_records as u64;
        config.symmetric_only = symmetric_only;
        bench_support::apply_engine_selection(&mut config);
        let outcome = Optimizer::new(config)
            .expect("validated configuration")
            .optimize_distribution(&prior)
            .expect("optimization succeeds");
        let mut front = outcome.front.clone();
        front.label = label.to_string();
        (front, outcome.statistics)
    };

    let (full_front, full_stats) = run(false, "OptRR-full");
    let (symmetric_front, _) = run(true, "OptRR-symmetric-only");

    let comparison = FrontComparison::compare(&full_front, &symmetric_front, 100);
    let report = ExperimentReport {
        experiment_id: "ablation-symmetric".into(),
        description: format!(
            "full asymmetric search vs symmetric-only (FRAPP-style) search, gamma workload, delta = {delta}"
        ),
        delta,
        fronts: vec![symmetric_front.clone(), full_front.clone()],
        comparison: Some(comparison),
        optimizer_statistics: Some(full_stats),
    };
    print_report(&report);

    println!("=== ablation summary (full vs symmetric-only) ===");
    println!(
        "full search privacy range      : {:?}",
        full_front.privacy_range()
    );
    println!(
        "symmetric-only privacy range   : {:?}",
        symmetric_front.privacy_range()
    );
    println!("full search front points       : {}", full_front.len());
    println!("symmetric-only front points    : {}", symmetric_front.len());
}
