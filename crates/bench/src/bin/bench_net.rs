//! End-to-end load generator for the network front door ([`serve::net`]).
//!
//! Starts an in-process [`NetServer`] on an ephemeral loopback port and
//! drives it the way a fleet of collectors would:
//!
//! * **Mixed-verb load** — hundreds of concurrent connections, each
//!   running a deterministic mix of `BestForPrivacy` point queries,
//!   `Ingest` record batches, and `Estimate` reconstructions, once over
//!   framed JSON and once over the `OPTRR-WIRE v1` binary codec. Reports
//!   q/s, ingest records/s, and p50/p95/p99 round-trip latency per
//!   codec, plus the binary-over-JSON ratios on the hot verbs.
//! * **Connection churn** — short-lived sessions (connect, one round
//!   trip, disconnect) hammering the accept loop; reports sessions/s.
//! * **Codec microbench** — encode+decode cost and wire size of the hot
//!   DTOs (a dense `Matrix` response, a 4096-record `Ingest`) for both
//!   codecs, no sockets involved.
//! * **Cross-codec determinism** — an identical scripted session against
//!   two identically-seeded services, one per codec, asserting the
//!   `Save` snapshots are byte-identical (`snapshot_identical` in the
//!   output is an assertion, not an observation).
//!
//! Results land in `BENCH_net.json` at the workspace root. `--smoke`
//! runs a scaled-down version of every phase for CI; `--report` parses
//! the committed baseline and prints `perf-delta:` lines (missing files
//! are noted, never fatal).
//!
//! Usage: `cargo run -p optrr-bench --release --bin bench_net
//!         [-- --conns N --requests M | --smoke | --report]`

use bench_support::{arg_value, percentile};
use serde::Serialize;
use serve::net::{ListenAddr, NetClient, NetConfig, NetServer};
use serve::wire::Codec;
use serve::{protocol, wire, Request, Response, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

/// A 16-category prior: wide enough that matrices are 256 cells and the
/// codec difference on the wire is measurable, small enough to warm in
/// well under a second on the smoke budget.
fn bench_prior() -> Vec<f64> {
    let raw: Vec<f64> = (1..=16).map(|i| 1.0 / (i as f64 + 3.0)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

const DELTA: f64 = 0.8;
const MIN_PRIVACY: f64 = 0.05;
const INGEST_BATCH: usize = 256;

#[derive(Serialize)]
struct NetBaseline {
    connections: usize,
    requests_per_connection: usize,
    max_active_connections: u64,
    codec_runs: Vec<CodecRun>,
    binary_over_json_query_qps: f64,
    binary_over_json_ingest_records: f64,
    churn: ChurnRow,
    codec_micro: Vec<MicroRow>,
    snapshot_identical: bool,
}

/// One codec's mixed-verb run over the full connection fleet.
#[derive(Serialize)]
struct CodecRun {
    codec: String,
    connections: usize,
    requests_total: u64,
    wall_seconds: f64,
    qps: f64,
    query_count: u64,
    query_qps: f64,
    ingest_count: u64,
    ingest_records_total: u64,
    ingest_records_per_sec: f64,
    estimate_count: u64,
    estimate_qps: f64,
    latency_p50_ns: u64,
    latency_p95_ns: u64,
    latency_p99_ns: u64,
}

#[derive(Serialize)]
struct ChurnRow {
    threads: usize,
    sessions_per_thread: usize,
    sessions_total: u64,
    wall_seconds: f64,
    sessions_per_sec: f64,
}

/// Encode+decode cost and wire size of one hot DTO under one codec.
#[derive(Serialize)]
struct MicroRow {
    payload: String,
    codec: String,
    bytes: usize,
    encode_p50_ns: u64,
    decode_p50_ns: u64,
}

fn start_server(seed: u64, max_conns: usize) -> NetServer {
    let service = Arc::new(Service::new(ServiceConfig::smoke(seed)));
    let mut config = NetConfig::new(ListenAddr::Tcp("127.0.0.1:0".parse().unwrap()));
    config.max_conns = max_conns;
    NetServer::start(service, config).expect("binding an ephemeral loopback port succeeds")
}

fn register_request(name: &str) -> Request {
    Request::Register {
        name: Some(name.into()),
        prior: bench_prior(),
        delta: DELTA,
        slots: Some(60),
        lazy: None,
    }
}

fn query_request(name: &str) -> Request {
    Request::BestForPrivacy {
        key: None,
        name: Some(name.into()),
        min_privacy: MIN_PRIVACY,
    }
}

fn ingest_request(name: &str, batch: usize, seed: u64) -> Request {
    let categories = bench_prior().len();
    Request::Ingest {
        key: None,
        name: Some(name.into()),
        min_privacy: Some(MIN_PRIVACY),
        records: Some(
            (0..batch)
                .map(|i| (i * 7 + seed as usize) % categories)
                .collect(),
        ),
        counts: None,
        seed: Some(seed),
    }
}

/// Drives the deterministic mixed-verb schedule over an open fleet of
/// connections and returns the finished [`CodecRun`].
fn run_codec_load(
    addr: &ListenAddr,
    codec: Codec,
    connections: usize,
    requests_per_connection: usize,
    server: &NetServer,
) -> (CodecRun, u64) {
    // Open the whole fleet first so the concurrency level is the stated
    // one for the entire measured window.
    let clients: Vec<NetClient> = (0..connections)
        .map(|_| NetClient::connect(addr, codec).expect("loopback connect succeeds"))
        .collect();
    // The server counts a connection on accept; the accept loop may
    // still be draining its backlog — wait until the fleet is fully
    // admitted before measuring.
    let fleet_deadline = Instant::now() + std::time::Duration::from_secs(20);
    while server.active_connections() < connections as u64 && Instant::now() < fleet_deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let max_active = server.active_connections();

    // ~16 OS threads regardless of fleet size: each worker owns a chunk
    // of connections and round-robins requests across them, so every
    // connection stays active for the whole window.
    let threads = connections.clamp(1, 16);
    let chunk = connections.div_ceil(threads);
    let mut fleets: Vec<Vec<NetClient>> = Vec::new();
    let mut clients = clients;
    while !clients.is_empty() {
        let rest = clients.split_off(chunk.min(clients.len()));
        fleets.push(clients);
        clients = rest;
    }

    let started = Instant::now();
    let handles: Vec<_> = fleets
        .into_iter()
        .enumerate()
        .map(|(worker, mut fleet)| {
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let (mut queries, mut ingests, mut estimates) = (0u64, 0u64, 0u64);
                let mut ingest_records = 0u64;
                for step in 0..requests_per_connection {
                    for (slot, client) in fleet.iter_mut().enumerate() {
                        let k = worker * 31 + slot * 7 + step;
                        let request = match k % 10 {
                            0..=5 => {
                                queries += 1;
                                query_request("bench")
                            }
                            6..=8 => {
                                ingests += 1;
                                ingest_records += INGEST_BATCH as u64;
                                ingest_request("bench", INGEST_BATCH, k as u64)
                            }
                            _ => {
                                estimates += 1;
                                Request::Estimate {
                                    key: None,
                                    name: Some("bench".into()),
                                }
                            }
                        };
                        let sent = Instant::now();
                        let response = client.request(&request).expect("request succeeds");
                        latencies.push(sent.elapsed().as_nanos() as u64);
                        match response {
                            Response::Matrix { .. }
                            | Response::Ingested { .. }
                            | Response::Estimated { .. } => {}
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                }
                (latencies, queries, ingests, ingest_records, estimates)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let (mut queries, mut ingests, mut estimates) = (0u64, 0u64, 0u64);
    let mut ingest_records = 0u64;
    for handle in handles {
        let (lat, q, i, r, e) = handle.join().expect("load worker panicked");
        latencies.extend(lat);
        queries += q;
        ingests += i;
        ingest_records += r;
        estimates += e;
    }
    let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    let requests_total = latencies.len() as u64;
    (
        CodecRun {
            codec: codec.label().to_string(),
            connections,
            requests_total,
            wall_seconds,
            qps: requests_total as f64 / wall_seconds,
            query_count: queries,
            query_qps: queries as f64 / wall_seconds,
            ingest_count: ingests,
            ingest_records_total: ingest_records,
            ingest_records_per_sec: ingest_records as f64 / wall_seconds,
            estimate_count: estimates,
            estimate_qps: estimates as f64 / wall_seconds,
            latency_p50_ns: percentile(&latencies, 0.50),
            latency_p95_ns: percentile(&latencies, 0.95),
            latency_p99_ns: percentile(&latencies, 0.99),
        },
        max_active,
    )
}

/// Short-lived sessions: connect, one round trip, disconnect.
fn run_churn(addr: &ListenAddr, threads: usize, sessions_per_thread: usize) -> ChurnRow {
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|worker| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for session in 0..sessions_per_thread {
                    // Alternate codecs so churn exercises both preambles.
                    let codec = if (worker + session) % 2 == 0 {
                        Codec::Json
                    } else {
                        Codec::Binary
                    };
                    let mut client =
                        NetClient::connect(&addr, codec).expect("churn connect succeeds");
                    let response = client
                        .request(&query_request("bench"))
                        .expect("churn round trip succeeds");
                    assert!(matches!(response, Response::Matrix { .. }));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("churn worker panicked");
    }
    let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let sessions_total = (threads * sessions_per_thread) as u64;
    ChurnRow {
        threads,
        sessions_per_thread,
        sessions_total,
        wall_seconds,
        sessions_per_sec: sessions_total as f64 / wall_seconds,
    }
}

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    percentile(&samples, 0.50)
}

/// Encode/decode one request DTO `iters` times under both codecs.
fn micro_request(payload: &str, request: &Request, iters: usize) -> Vec<MicroRow> {
    let json_text = protocol::encode_request(request);
    let frame = wire::encode_request_frame(request).expect("hot request encodes");
    let mut rows = Vec::new();
    for codec in [Codec::Json, Codec::Binary] {
        let mut encode = Vec::with_capacity(iters);
        let mut decode = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            let encoded_len = match codec {
                Codec::Json => protocol::encode_request(request).len(),
                Codec::Binary => wire::encode_request_frame(request).unwrap().len(),
            };
            encode.push(t.elapsed().as_nanos() as u64);
            assert!(encoded_len > 0);
            let t = Instant::now();
            match codec {
                Codec::Json => {
                    protocol::decode_request(&json_text).expect("round trip");
                }
                Codec::Binary => {
                    let (tag, payload) = wire::decode_frame(&frame).expect("round trip");
                    wire::decode_request_frame(tag, &payload).expect("round trip");
                }
            }
            decode.push(t.elapsed().as_nanos() as u64);
        }
        rows.push(MicroRow {
            payload: payload.to_string(),
            codec: codec.label().to_string(),
            bytes: match codec {
                Codec::Json => json_text.len() + 1,
                Codec::Binary => frame.len(),
            },
            encode_p50_ns: median_ns(encode),
            decode_p50_ns: median_ns(decode),
        });
    }
    rows
}

/// Encode/decode one response DTO `iters` times under both codecs.
fn micro_response(payload: &str, response: &Response, iters: usize) -> Vec<MicroRow> {
    let json_text = protocol::encode_response(response);
    let frame = wire::encode_response_frame(response).expect("hot response encodes");
    let mut rows = Vec::new();
    for codec in [Codec::Json, Codec::Binary] {
        let mut encode = Vec::with_capacity(iters);
        let mut decode = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            let encoded_len = match codec {
                Codec::Json => protocol::encode_response(response).len(),
                Codec::Binary => wire::encode_response_frame(response).unwrap().len(),
            };
            encode.push(t.elapsed().as_nanos() as u64);
            assert!(encoded_len > 0);
            let t = Instant::now();
            match codec {
                Codec::Json => {
                    protocol::decode_response(&json_text).expect("round trip");
                }
                Codec::Binary => {
                    let (tag, payload) = wire::decode_frame(&frame).expect("round trip");
                    wire::decode_response_frame(tag, &payload).expect("round trip");
                }
            }
            decode.push(t.elapsed().as_nanos() as u64);
        }
        rows.push(MicroRow {
            payload: payload.to_string(),
            codec: codec.label().to_string(),
            bytes: match codec {
                Codec::Json => json_text.len() + 1,
                Codec::Binary => frame.len(),
            },
            encode_p50_ns: median_ns(encode),
            decode_p50_ns: median_ns(decode),
        });
    }
    rows
}

fn run_codec_micro(iters: usize) -> Vec<MicroRow> {
    let mut rows = Vec::new();
    // The paper's point-query response: a dense 16×16 column-major
    // matrix — the codec's biggest payload.
    let n = bench_prior().len();
    let mut cell = 0.0;
    let columns: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..n)
                .map(|_| {
                    cell += 0.001;
                    1.0 / (1.0 + cell)
                })
                .collect()
        })
        .collect();
    let matrix = Response::Matrix {
        key: 42,
        privacy: 0.34,
        mse: 4.9e-5,
        max_posterior: 0.79,
        matrix: protocol::MatrixDto {
            num_categories: n,
            columns,
        },
        degraded: false,
    };
    rows.extend(micro_response("matrix_16x16", &matrix, iters));
    rows.extend(micro_request(
        "ingest_4096_records",
        &ingest_request("bench", 4096, 1),
        iters,
    ));
    rows
}

/// The determinism acceptance check: one scripted session per codec
/// against identically-seeded services; the `Save` snapshots must be
/// byte-identical. Panics (and thus fails the bench) if they are not.
fn check_snapshot_determinism() -> bool {
    let dir = std::env::temp_dir().join(format!("optrr_bench_net_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut snapshots = Vec::new();
    for codec in [Codec::Json, Codec::Binary] {
        let server = start_server(2008, 8);
        let addr = server.listen_addr();
        let path = dir.join(format!("{}.snap", codec.label()));
        let mut client = NetClient::connect(&addr, codec).expect("connect");
        for request in [
            register_request("det"),
            ingest_request("det", 300, 5),
            ingest_request("det", 300, 6),
            query_request("det"),
            Request::Estimate {
                key: None,
                name: Some("det".into()),
            },
            Request::Save {
                path: path.to_str().unwrap().to_string(),
            },
        ] {
            let response = client.request(&request).expect("scripted request succeeds");
            assert!(
                !matches!(response, Response::Error { .. }),
                "scripted session errored: {response:?}"
            );
        }
        server.request_drain();
        server.wait();
        snapshots.push(std::fs::read(&path).expect("snapshot written"));
    }
    let identical = snapshots[0] == snapshots[1] && !snapshots[0].is_empty();
    assert!(
        identical,
        "binary-session snapshot must be byte-identical to the JSON-session snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
    identical
}

/// Report-only mode: parse the committed baseline and print headline
/// deltas. Missing or unreadable files are noted, never fatal.
fn report() {
    use serde::Value;
    let num = |row: &Value, key: &str| row.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    let int = |row: &Value, key: &str| row.get(key).and_then(Value::as_u64).unwrap_or(0);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    let baseline = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(value) => value,
            Err(error) => {
                println!("perf-delta: BENCH_net.json: unparsable ({error})");
                return;
            }
        },
        Err(_) => {
            println!("perf-delta: BENCH_net.json: not committed, skipping");
            return;
        }
    };
    println!(
        "perf-delta: net {} conns binary-over-json query {:.2}x, ingest records {:.2}x",
        int(&baseline, "connections"),
        num(&baseline, "binary_over_json_query_qps"),
        num(&baseline, "binary_over_json_ingest_records"),
    );
    if let Some(runs) = baseline.get("codec_runs").and_then(Value::as_array) {
        for run in runs {
            println!(
                "perf-delta: net {} {:.0} q/s ({:.0} records/s ingest), p50 {} ns, p99 {} ns",
                run.get("codec").and_then(Value::as_str).unwrap_or("?"),
                num(run, "qps"),
                num(run, "ingest_records_per_sec"),
                int(run, "latency_p50_ns"),
                int(run, "latency_p99_ns"),
            );
        }
    }
    if let Some(churn) = baseline.get("churn") {
        println!(
            "perf-delta: net churn {:.0} sessions/s over {} short-lived sessions",
            num(churn, "sessions_per_sec"),
            int(churn, "sessions_total"),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--report") {
        report();
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let connections = arg_value("--conns").unwrap_or(if smoke { 32 } else { 512 });
    let requests_per_connection = arg_value("--requests").unwrap_or(if smoke { 6 } else { 40 });
    let (churn_threads, churn_sessions) = if smoke { (8, 6) } else { (32, 30) };
    let micro_iters = if smoke { 200 } else { 2_000 };

    // One server, one shared service, one warm key: the measured window
    // never runs the engine, so this is transport + codec + serving.
    let server = start_server(2008, connections + 64);
    let addr = server.listen_addr();
    let mut setup = NetClient::connect(&addr, Codec::Json).expect("connect");
    let response = setup.request(&register_request("bench")).expect("register");
    assert!(
        matches!(response, Response::Registered { warm: true, .. }),
        "the bench key must be warm before the measured window"
    );
    drop(setup);

    let mut codec_runs = Vec::new();
    let mut max_active = 0u64;
    for codec in [Codec::Json, Codec::Binary] {
        let (run, active) =
            run_codec_load(&addr, codec, connections, requests_per_connection, &server);
        println!(
            "{} x{}: {:.0} q/s total ({:.0} query q/s, {:.0} ingest records/s), p50 {} ns, p99 {} ns",
            run.codec,
            run.connections,
            run.qps,
            run.query_qps,
            run.ingest_records_per_sec,
            run.latency_p50_ns,
            run.latency_p99_ns,
        );
        max_active = max_active.max(active);
        codec_runs.push(run);
    }
    assert!(
        max_active >= connections as u64,
        "the fleet never reached {connections} concurrent connections (peak {max_active})"
    );

    let binary_over_json_query_qps = codec_runs[1].query_qps / codec_runs[0].query_qps.max(1e-9);
    let binary_over_json_ingest_records =
        codec_runs[1].ingest_records_per_sec / codec_runs[0].ingest_records_per_sec.max(1e-9);
    println!(
        "binary over json: query {binary_over_json_query_qps:.2}x, ingest records {binary_over_json_ingest_records:.2}x"
    );

    let churn = run_churn(&addr, churn_threads, churn_sessions);
    println!(
        "churn: {:.0} sessions/s across {} short-lived sessions",
        churn.sessions_per_sec, churn.sessions_total
    );

    server.request_drain();
    server.wait();

    let codec_micro = run_codec_micro(micro_iters);
    for row in &codec_micro {
        println!(
            "micro {} {}: {} bytes, encode p50 {} ns, decode p50 {} ns",
            row.payload, row.codec, row.bytes, row.encode_p50_ns, row.decode_p50_ns
        );
    }

    let snapshot_identical = check_snapshot_determinism();
    println!("cross-codec snapshots byte-identical: {snapshot_identical}");

    let baseline = NetBaseline {
        connections,
        requests_per_connection,
        max_active_connections: max_active,
        codec_runs,
        binary_over_json_query_qps,
        binary_over_json_ingest_records,
        churn,
        codec_micro,
        snapshot_identical,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("wrote baseline {path}"),
        Err(error) => eprintln!("warning: could not write {path}: {error}"),
    }
}
