//! E-FACT1 — Fact 1: the number of discretized RR matrices is
//! `C(d + n − 1, d)^n`, which makes exhaustive search infeasible (the paper
//! quotes ≈ 1.98 × 10^126 for n = 10, d = 100).
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_fact1`

use optrr::search_space::{exact_search_space_size, search_space_size};

fn main() {
    println!("# Fact 1: size of the discretized RR-matrix search space");
    println!(
        "{:>4} {:>6} {:>22} {:>14}",
        "n", "d", "exact (when small)", "log10(count)"
    );
    for &n in &[2usize, 3, 4, 5, 6, 8, 10] {
        for &d in &[10usize, 100] {
            let size = search_space_size(n, d);
            let exact = exact_search_space_size(n, d)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "overflow (> u128)".to_string());
            println!("{:>4} {:>6} {:>22} {:>14.2}", n, d, exact, size.log10_count);
        }
    }
    let paper = search_space_size(10, 100);
    let mantissa = 10f64.powf(paper.log10_count - paper.log10_count.floor());
    println!();
    println!(
        "paper example n=10, d=100: ~{:.2}e{}  (paper quotes 1.98e126)",
        mantissa,
        paper.log10_count.floor() as i64
    );
}
