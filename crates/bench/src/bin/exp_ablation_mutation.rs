//! A-MUT ablation — the paper's column-proportional mutation vs a naive
//! perturb-and-renormalize mutation.
//!
//! Section V.F argues the proportional redistribution preserves the
//! correlations within a column. This ablation applies both operators the
//! same number of times to the same starting matrices and compares (a) how
//! well each preserves the relative structure of the untouched entries and
//! (b) the quality of fronts obtained when each operator drives a short
//! optimization (by hand-rolling the mutation into a local search loop).
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_ablation_mutation [--fast]`

use bench_support::{paper_workload, Fidelity};
use datagen::SourceDistribution;
use optrr::operators::{naive_column_mutation, proportional_column_mutation};
use optrr::{OptrrConfig, OptrrProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rr::schemes::warner;
use rr::RrMatrix;

/// Measures how much a mutation distorts the *ratios* of the entries it did
/// not target: smaller is better structure preservation.
fn ratio_distortion(before: &RrMatrix, after: &RrMatrix) -> f64 {
    let n = before.num_categories();
    let mut worst: f64 = 0.0;
    for j in 0..n {
        // Find the entries that changed; compare the ratios of the others.
        for a in 0..n {
            for b in (a + 1)..n {
                let before_a = before.theta(a, j);
                let before_b = before.theta(b, j);
                let after_a = after.theta(a, j);
                let after_b = after.theta(b, j);
                if before_a > 1e-9 && before_b > 1e-9 && after_a > 1e-9 && after_b > 1e-9 {
                    let r_before = before_a / before_b;
                    let r_after = after_a / after_b;
                    worst = worst.max((r_after / r_before - 1.0).abs());
                }
            }
        }
    }
    worst
}

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let iterations = match fidelity {
        Fidelity::Fast => 2_000,
        _ => 10_000,
    };
    let workload = paper_workload(SourceDistribution::standard_normal(), 2008);
    let prior = workload
        .dataset
        .empirical_distribution()
        .expect("non-empty");
    let n = prior.num_categories();
    let mut config = OptrrConfig {
        num_records: workload.config.num_records as u64,
        ..OptrrConfig::fast(0.75, 1)
    };
    bench_support::apply_engine_selection(&mut config);
    let problem = OptrrProblem::new(prior, &config).expect("valid problem");

    let start = warner(n, 0.7).expect("valid parameter");
    let mut rng = StdRng::seed_from_u64(77);

    // (a) Structure preservation per single mutation.
    let mut proportional_distortion = 0.0;
    let mut naive_distortion = 0.0;
    for _ in 0..500 {
        let p = proportional_column_mutation(&start, 0.25, &mut rng);
        let v = naive_column_mutation(&start, 0.25, &mut rng);
        proportional_distortion += ratio_distortion(&start, &p);
        naive_distortion += ratio_distortion(&start, &v);
    }
    proportional_distortion /= 500.0;
    naive_distortion /= 500.0;

    // (b) Hill-climb quality: repeatedly mutate and keep the mutant when it
    // is feasible and improves the MSE without giving up more than a sliver
    // of privacy (a simple (1+1) strategy that isolates the mutation
    // operator from the rest of the evolutionary machinery).
    let climb = |use_proportional: bool, seed: u64| -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut current = warner(n, 0.6).expect("valid parameter");
        let mut best = problem.evaluate_matrix(&current);
        for _ in 0..iterations {
            let candidate = if use_proportional {
                proportional_column_mutation(&current, 0.25, &mut rng)
            } else {
                naive_column_mutation(&current, 0.25, &mut rng)
            };
            let eval = problem.evaluate_matrix(&candidate);
            if eval.feasible && eval.mse < best.mse && eval.privacy >= best.privacy - 0.005 {
                current = candidate;
                best = eval;
            }
        }
        (best.privacy, best.mse)
    };
    let (prop_privacy, prop_mse) = climb(true, 1);
    let (naive_privacy, naive_mse) = climb(false, 1);

    println!("# A-MUT ablation: column-proportional vs naive mutation");
    println!("iterations per hill-climb          : {iterations}");
    println!("avg ratio distortion, proportional : {proportional_distortion:.4}");
    println!("avg ratio distortion, naive        : {naive_distortion:.4}");
    println!();
    println!("hill-climb final (privacy, MSE), proportional: ({prop_privacy:.4}, {prop_mse:.4e})");
    println!(
        "hill-climb final (privacy, MSE), naive       : ({naive_privacy:.4}, {naive_mse:.4e})"
    );
    println!();
    println!(
        "note: the naive operator renormalizes the whole column, which preserves the ratios of"
    );
    println!(
        "the untouched entries exactly; the paper's proportional operator instead preserves the"
    );
    println!(
        "column's additive structure around the perturbed element. The hill-climb rows show the"
    );
    println!("end-to-end effect of that choice at equal budget.");
}
