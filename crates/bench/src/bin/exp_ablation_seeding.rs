//! A-SEED ablation — baseline-seeded initialization (this implementation's
//! convergence enhancement, see DESIGN.md) vs the paper's purely random
//! initial population, at equal budget.
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_ablation_seeding [--fast|--paper]`

use bench_support::{paper_workload, print_report, Fidelity};
use datagen::SourceDistribution;
use optrr::{ExperimentReport, FrontComparison, Optimizer};

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let delta = 0.75;
    let workload = paper_workload(SourceDistribution::standard_normal(), 2008);
    let prior = workload
        .dataset
        .empirical_distribution()
        .expect("non-empty");

    let run = |seeded: bool, label: &str| {
        let mut config = fidelity.optimizer_config(delta, 2008);
        config.num_records = workload.config.num_records as u64;
        config.seed_with_baselines = seeded;
        bench_support::apply_engine_selection(&mut config);
        let outcome = Optimizer::new(config)
            .expect("validated configuration")
            .optimize_distribution(&prior)
            .expect("optimization succeeds");
        let mut front = outcome.front.clone();
        front.label = label.to_string();
        (front, outcome.statistics)
    };

    let (seeded_front, seeded_stats) = run(true, "OptRR-seeded");
    let (random_front, random_stats) = run(false, "OptRR-random-init");

    let comparison = FrontComparison::compare(&seeded_front, &random_front, 100);
    let report = ExperimentReport {
        experiment_id: "ablation-seeding".into(),
        description: "baseline-seeded initial population vs the paper's random initialization, \
                      normal workload, equal budget"
            .into(),
        delta,
        fronts: vec![random_front.clone(), seeded_front.clone()],
        comparison: Some(comparison),
        optimizer_statistics: Some(seeded_stats.clone()),
    };
    print_report(&report);

    println!("=== ablation summary (seeded vs random init) ===");
    println!(
        "seeded  : front {} points, privacy range {:?}, {} evaluations",
        seeded_front.len(),
        seeded_front.privacy_range(),
        seeded_stats.evaluations
    );
    println!(
        "random  : front {} points, privacy range {:?}, {} evaluations",
        random_front.len(),
        random_front.privacy_range(),
        random_stats.evaluations
    );
}
