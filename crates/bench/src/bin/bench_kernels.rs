//! Microbenchmark of the hot-path kernels: alias-table disguise sampling,
//! blocked matrix multiply, slice-based LU, and the fitness-kernel fill at
//! the calibrated parallel threshold.
//!
//! Every optimized kernel is timed against the reference implementation it
//! replaced (`rr::disguise_dataset_reference`, `linalg::reference`), with
//! shared warm-up discipline and p50-over-p50 speedups. Results land in
//! `BENCH_kernels.json` at the workspace root.
//!
//! Usage: `cargo run -p optrr-bench --release --bin bench_kernels
//!  [-- --smoke | --report]`
//!
//! `--smoke` runs a fast pass without writing the baseline; `--report`
//! does no measuring at all — it parses the committed `BENCH_*.json`
//! files and prints their headline speedup lines (report-only; missing
//! files are noted, never fatal), which is what the CI perf-delta step
//! runs.

use bench_support::{summarize_ns, time_iterations, TimingSummary, DEFAULT_WARMUP_ITERS};
use datagen::CategoricalDataset;
use emoo::kernel::FitnessKernel;
use emoo::{Individual, Objectives};
use linalg::{LuDecomposition, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct SamplerRow {
    n: usize,
    draws: usize,
    naive: TimingSummary,
    alias: TimingSummary,
    naive_draws_per_sec: u64,
    alias_draws_per_sec: u64,
    /// Inverse-CDF p50 over alias p50 — ≥ 1 means the alias table wins.
    alias_over_naive: f64,
}

#[derive(Serialize)]
struct DisguiseRow {
    n: usize,
    records: usize,
    naive: TimingSummary,
    alias: TimingSummary,
    naive_records_per_sec: u64,
    alias_records_per_sec: u64,
    /// Naive p50 over alias p50 — ≥ 1 means the alias table wins.
    alias_over_naive: f64,
}

#[derive(Serialize)]
struct LinalgRow {
    n: usize,
    naive: TimingSummary,
    optimized: TimingSummary,
    optimized_over_naive: f64,
}

#[derive(Serialize)]
struct KernelFillRow {
    population: usize,
    fresh_pairs: usize,
    serial: TimingSummary,
    parallel: TimingSummary,
    calibrated: TimingSummary,
    serial_over_parallel: f64,
}

#[derive(Serialize)]
struct TuningRow {
    kernel_min_pairs: usize,
    batch_min_work: usize,
    calibrated: bool,
}

#[derive(Serialize)]
struct KernelsBaseline {
    tuning: TuningRow,
    sampler: Vec<SamplerRow>,
    disguise: Vec<DisguiseRow>,
    matmul: Vec<LinalgRow>,
    lu: Vec<LinalgRow>,
    kernel_fill: Vec<KernelFillRow>,
}

fn ratio(reference_p50: u64, optimized_p50: u64) -> f64 {
    reference_p50 as f64 / optimized_p50.max(1) as f64
}

fn records_per_sec(records: usize, p50_ns: u64) -> u64 {
    (records as f64 * 1e9 / p50_ns.max(1) as f64) as u64
}

/// Times the bare per-draw sampling kernels — O(log n) inverse-CDF binary
/// search vs O(1) alias lookup — over one warner column, with the samplers
/// built outside the timed region. This is the per-record cost the alias
/// table buys; [`disguise_series`] measures the whole path around it
/// (sampler build, record loop, outcome collection).
fn sampler_series(n: usize, draws: usize, warmup: usize, iters: usize) -> SamplerRow {
    let m = rr::schemes::warner(n, 0.6).expect("warner matrix");
    let column = m.randomization_distribution(n / 2).expect("column");
    let table = rr::AliasTable::from_distribution(&column);
    let mut rng = StdRng::seed_from_u64(17);
    let naive = summarize_ns(&time_iterations(warmup, iters, || {
        let mut acc = 0usize;
        for _ in 0..draws {
            acc ^= column.sample(&mut rng);
        }
        std::hint::black_box(acc);
    }));
    let mut rng = StdRng::seed_from_u64(17);
    let alias = summarize_ns(&time_iterations(warmup, iters, || {
        let mut acc = 0usize;
        for _ in 0..draws {
            acc ^= table.sample(&mut rng);
        }
        std::hint::black_box(acc);
    }));
    SamplerRow {
        n,
        draws,
        naive_draws_per_sec: records_per_sec(draws, naive.p50_ns),
        alias_draws_per_sec: records_per_sec(draws, alias.p50_ns),
        alias_over_naive: ratio(naive.p50_ns, alias.p50_ns),
        naive,
        alias,
    }
}

/// Times alias-table vs cached-CDF disguise over a cyclic record stream.
/// Both paths rebuild their per-column samplers inside the timed region —
/// the build is part of each path's real cost — and draw exactly one
/// uniform per record.
fn disguise_series(n: usize, records: usize, warmup: usize, iters: usize) -> DisguiseRow {
    let m = rr::schemes::warner(n, 0.6).expect("warner matrix");
    let data = CategoricalDataset::new(n, (0..records).map(|i| i % n).collect())
        .expect("cyclic records are in range");
    let mut rng = StdRng::seed_from_u64(11);
    let naive = summarize_ns(&time_iterations(warmup, iters, || {
        let out = rr::disguise_dataset_reference(&m, &data, &mut rng).expect("disguise");
        std::hint::black_box(out.retained);
    }));
    let mut rng = StdRng::seed_from_u64(11);
    let alias = summarize_ns(&time_iterations(warmup, iters, || {
        let out = rr::disguise_dataset(&m, &data, &mut rng).expect("disguise");
        std::hint::black_box(out.retained);
    }));
    DisguiseRow {
        n,
        records,
        naive_records_per_sec: records_per_sec(records, naive.p50_ns),
        alias_records_per_sec: records_per_sec(records, alias.p50_ns),
        alias_over_naive: ratio(naive.p50_ns, alias.p50_ns),
        naive,
        alias,
    }
}

/// A deterministic dense test matrix with exact zeros sprinkled in so the
/// multiply's zero-skip path is exercised on both sides.
fn dense(rows: usize, cols: usize, salt: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let t = ((salt as f64) + (i * cols + j) as f64).sin();
            m[(i, j)] = if t.abs() < 0.05 { 0.0 } else { t };
        }
    }
    m
}

fn matmul_series(n: usize, warmup: usize, iters: usize) -> LinalgRow {
    let a = dense(n, n, 1);
    let b = dense(n, n, 2);
    let naive = summarize_ns(&time_iterations(warmup, iters, || {
        let out = linalg::reference::mul_matrix_naive(&a, &b).expect("multiply");
        std::hint::black_box(out.as_slice()[0]);
    }));
    let optimized = summarize_ns(&time_iterations(warmup, iters, || {
        let out = a.mul_matrix(&b).expect("multiply");
        std::hint::black_box(out.as_slice()[0]);
    }));
    LinalgRow {
        n,
        optimized_over_naive: ratio(naive.p50_ns, optimized.p50_ns),
        naive,
        optimized,
    }
}

/// A diagonally-dominant column-stochastic matrix — the shape evaluation
/// inverts — sized for the LU timing.
fn stochastic(n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    let off = 0.3 / (n as f64 - 1.0);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = if i == j { 0.7 } else { off };
        }
    }
    m
}

fn lu_series(n: usize, warmup: usize, iters: usize) -> LinalgRow {
    let m = stochastic(n);
    let naive = summarize_ns(&time_iterations(warmup, iters, || {
        let (lu, _, _) = linalg::reference::lu_factor_naive(&m).expect("factor");
        std::hint::black_box(lu.as_slice()[0]);
    }));
    let optimized = summarize_ns(&time_iterations(warmup, iters, || {
        let lu = LuDecomposition::new(&m).expect("factor");
        std::hint::black_box(lu.packed().as_slice()[0]);
    }));
    LinalgRow {
        n,
        optimized_over_naive: ratio(naive.p50_ns, optimized.p50_ns),
        naive,
        optimized,
    }
}

/// Times one full fresh fitness-kernel fill (every pair fresh) for a
/// population, in the serial, forced-parallel, and calibrated kernel
/// configurations.
fn kernel_fill_series(population: usize, warmup: usize, iters: usize) -> KernelFillRow {
    let mut rng = StdRng::seed_from_u64(23);
    let members: Vec<Individual<u64>> = (0..population as u64)
        .map(|id| {
            let t: f64 = rand::Rng::gen(&mut rng);
            Individual::new(id, Objectives::pair(t, 1.0 - t))
        })
        .collect();
    let ids: Vec<u64> = (0..population as u64).collect();
    let timed = |threshold: Option<usize>| {
        summarize_ns(&time_iterations(warmup, iters, || {
            // A fresh kernel per iteration keeps every pair a fresh pair.
            let mut kernel = match threshold {
                Some(t) => FitnessKernel::with_parallel_threshold(t),
                None => FitnessKernel::new(),
            };
            let mut filled = members.clone();
            kernel.assign_fitness(&mut filled, &ids, 1);
            std::hint::black_box(filled[0].fitness);
        }))
    };
    let serial = timed(Some(usize::MAX));
    let parallel = timed(Some(0));
    let calibrated = timed(None);
    KernelFillRow {
        population,
        fresh_pairs: population * (population - 1) / 2,
        serial_over_parallel: ratio(serial.p50_ns, parallel.p50_ns),
        serial,
        parallel,
        calibrated,
    }
}

/// Report-only mode: parse the committed baselines and print their
/// headline speedups. Missing or unreadable files are reported and
/// skipped — this step never fails a build.
fn report() {
    use serde::Value;
    let num = |row: &Value, key: &str| row.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    let int = |row: &Value, key: &str| row.get(key).and_then(Value::as_u64).unwrap_or(0);
    let rows = |value: &Value, key: &str| -> Vec<Value> {
        value
            .get(key)
            .and_then(Value::as_array)
            .map(<[Value]>::to_vec)
            .unwrap_or_default()
    };
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let load = |name: &str| -> Option<Value> {
        let path = format!("{root}/{name}");
        match std::fs::read_to_string(&path) {
            Ok(text) => match serde_json::from_str::<Value>(&text) {
                Ok(value) => Some(value),
                Err(error) => {
                    println!("perf-delta: {name}: unparsable ({error})");
                    None
                }
            },
            Err(_) => {
                println!("perf-delta: {name}: not committed, skipping");
                None
            }
        }
    };
    if let Some(kernels) = load("BENCH_kernels.json") {
        for row in rows(&kernels, "sampler") {
            println!(
                "perf-delta: sampler n={} alias-over-naive {:.2}x ({} -> {} draws/s)",
                int(&row, "n"),
                num(&row, "alias_over_naive"),
                int(&row, "naive_draws_per_sec"),
                int(&row, "alias_draws_per_sec"),
            );
        }
        for row in rows(&kernels, "disguise") {
            println!(
                "perf-delta: disguise n={} alias-over-naive {:.2}x ({} -> {} records/s)",
                int(&row, "n"),
                num(&row, "alias_over_naive"),
                int(&row, "naive_records_per_sec"),
                int(&row, "alias_records_per_sec"),
            );
        }
        for key in ["matmul", "lu"] {
            for row in rows(&kernels, key) {
                println!(
                    "perf-delta: {key} n={} optimized-over-naive {:.2}x",
                    int(&row, "n"),
                    num(&row, "optimized_over_naive"),
                );
            }
        }
        for row in rows(&kernels, "kernel_fill") {
            println!(
                "perf-delta: kernel-fill population={} serial-over-parallel {:.2}x",
                int(&row, "population"),
                num(&row, "serial_over_parallel"),
            );
        }
    }
    if let Some(fitness) = load("BENCH_fitness.json") {
        for row in rows(&fitness, "speedup_incremental") {
            println!(
                "perf-delta: fitness n={} scratch-over-incremental {:.2}x, over-calibrated {:.2}x",
                int(&row, "n"),
                num(&row, "scratch_over_incremental"),
                num(&row, "scratch_over_incremental_parallel"),
            );
        }
    }
    if let Some(pipeline) = load("BENCH_pipeline.json") {
        println!(
            "perf-delta: pipeline ingest {:.0} records/s (p50 {} ns), estimate p50 {} ns",
            num(&pipeline, "ingest_records_per_second"),
            int(&pipeline, "ingest_latency_p50_ns"),
            int(&pipeline, "estimate_latency_p50_ns"),
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--report") {
        report();
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let warmup = DEFAULT_WARMUP_ITERS;
    let (disguise_records, disguise_iters) = if smoke { (5_000, 3) } else { (100_000, 12) };
    let linalg_iters = if smoke { 4 } else { 30 };
    let fill_iters = if smoke { 3 } else { 15 };
    let fill_populations: &[usize] = if smoke { &[64] } else { &[128, 512] };

    // Install the calibrated (or OPTRR_TUNE) thresholds before the
    // calibrated kernel series reads them.
    let tuning = optrr::tuning();
    println!(
        "tuning: kernel_min_pairs={} batch_min_work={} calibrated={}",
        tuning.kernel_min_pairs, tuning.batch_min_work, tuning.calibrated
    );

    let sampler: Vec<SamplerRow> = [4usize, 16, 64, 256]
        .iter()
        .map(|&n| {
            let row = sampler_series(n, disguise_records, warmup, disguise_iters);
            println!(
                "sampler    n={n:<4} inverse-cdf {:>7} ns  alias {:>9} ns  ({:.2}x, {} -> {} draws/s)",
                row.naive.p50_ns,
                row.alias.p50_ns,
                row.alias_over_naive,
                row.naive_draws_per_sec,
                row.alias_draws_per_sec,
            );
            row
        })
        .collect();

    let disguise: Vec<DisguiseRow> = [4usize, 16, 64, 256]
        .iter()
        .map(|&n| {
            let row = disguise_series(n, disguise_records, warmup, disguise_iters);
            println!(
                "disguise   n={n:<4} naive {:>9} ns  alias {:>9} ns  ({:.2}x, {} -> {} records/s)",
                row.naive.p50_ns,
                row.alias.p50_ns,
                row.alias_over_naive,
                row.naive_records_per_sec,
                row.alias_records_per_sec,
            );
            row
        })
        .collect();

    let matmul: Vec<LinalgRow> = [32usize, 64, 96]
        .iter()
        .map(|&n| {
            let row = matmul_series(n, warmup, linalg_iters);
            println!(
                "matmul     n={n:<4} naive {:>9} ns  blocked {:>8} ns  ({:.2}x)",
                row.naive.p50_ns, row.optimized.p50_ns, row.optimized_over_naive
            );
            row
        })
        .collect();

    let lu: Vec<LinalgRow> = [32usize, 64, 96]
        .iter()
        .map(|&n| {
            let row = lu_series(n, warmup, linalg_iters);
            println!(
                "lu         n={n:<4} naive {:>9} ns  slice {:>10} ns  ({:.2}x)",
                row.naive.p50_ns, row.optimized.p50_ns, row.optimized_over_naive
            );
            row
        })
        .collect();

    let kernel_fill: Vec<KernelFillRow> = fill_populations
        .iter()
        .map(|&population| {
            let row = kernel_fill_series(population, warmup, fill_iters);
            println!(
                "fill       p={population:<4} serial {:>8} ns  parallel {:>8} ns  calibrated {:>8} ns (pairs={})",
                row.serial.p50_ns, row.parallel.p50_ns, row.calibrated.p50_ns, row.fresh_pairs
            );
            row
        })
        .collect();

    if smoke {
        println!("smoke mode: skipping BENCH_kernels.json baseline write");
        return;
    }
    let baseline = KernelsBaseline {
        tuning: TuningRow {
            kernel_min_pairs: tuning.kernel_min_pairs,
            batch_min_work: tuning.batch_min_work,
            calibrated: tuning.calibrated,
        },
        sampler,
        disguise,
        matmul,
        lu,
        kernel_fill,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("wrote baseline {path}"),
        Err(error) => eprintln!("warning: could not write {path}: {error}"),
    }
}
