//! E-FIG4 — Figure 4 (a)–(d) of the paper: Pareto fronts of the Warner
//! scheme vs OptRR on a normal-distribution workload (10 categories,
//! 10,000 records) for privacy bounds δ ∈ {0.6, 0.7, 0.8, 0.9}.
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_fig4 [--fast|--paper]`

use bench_support::{print_report, run_synthetic_figure, summary_line, Fidelity};
use datagen::SourceDistribution;

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let mut summaries = Vec::new();
    for (panel, delta) in [("a", 0.6), ("b", 0.7), ("c", 0.8), ("d", 0.9)] {
        let report = run_synthetic_figure(
            &format!("fig4{panel}-normal-delta{delta}"),
            SourceDistribution::standard_normal(),
            delta,
            fidelity,
            2008,
        );
        print_report(&report);
        summaries.push(summary_line(&report));
    }
    println!("=== figure 4 summary ===");
    for s in summaries {
        println!("{s}");
    }
}
