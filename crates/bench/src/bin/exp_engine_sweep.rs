//! Engine ablation sweep: every figure workload under both EMOO backends.
//!
//! The paper builds OptRR on SPEA2 and argues the engine choice is
//! interchangeable; the repo carries NSGA-II as the cross-check backend.
//! This sweep runs the standard experiment workloads (the Figure 4
//! synthetic distributions and the Figure 5(c) Adult surrogate) under
//! **both** [`EngineKind`]s with identical budgets and seeds, and emits a
//! side-by-side report of front quality (hypervolume against the shared
//! Warner baseline reference, fraction better at matched privacy levels)
//! and cost (generations, evaluations, wall-clock).
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_engine_sweep [--fast|--paper] [--parallel]`

use bench_support::{adult_first_attribute, paper_workload, Fidelity};
use datagen::SourceDistribution;
use emoo::EngineKind;
use optrr::{baseline_sweep, FrontComparison, Optimizer, OptrrProblem, SchemeKind};
use stats::Categorical;

struct SweepRow {
    workload: &'static str,
    engine: &'static str,
    hypervolume: f64,
    baseline_hypervolume: f64,
    better_fraction: f64,
    front_points: usize,
    generations: usize,
    evaluations: usize,
    wall_seconds: f64,
}

fn sweep_workload(
    label: &'static str,
    prior: &Categorical,
    num_records: u64,
    delta: f64,
    fidelity: Fidelity,
    rows: &mut Vec<SweepRow>,
) {
    for kind in [EngineKind::Spea2, EngineKind::Nsga2] {
        let mut config = fidelity.optimizer_config(delta, 2008);
        config.num_records = num_records;
        config.engine_kind = kind;
        config.parallel_evaluation = bench_support::parallel_evaluation_from_env_and_args();

        let problem = OptrrProblem::new(prior.clone(), &config).expect("valid problem");
        let warner = baseline_sweep(&problem, SchemeKind::Warner, fidelity.sweep_steps());

        let outcome = Optimizer::new(config)
            .expect("validated configuration")
            .optimize_distribution(prior)
            .expect("optimization succeeds");
        let comparison = FrontComparison::compare(&outcome.front, &warner.front, 100);

        rows.push(SweepRow {
            workload: label,
            engine: kind.label(),
            hypervolume: comparison.challenger_hypervolume,
            baseline_hypervolume: comparison.baseline_hypervolume,
            better_fraction: comparison.fraction_better_at_matched_privacy,
            front_points: outcome.front.len(),
            generations: outcome.statistics.generations_run,
            evaluations: outcome.statistics.evaluations,
            wall_seconds: outcome.statistics.wall_clock_seconds,
        });
    }
}

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let delta = 0.75;
    let mut rows = Vec::new();

    let normal = paper_workload(SourceDistribution::standard_normal(), 2008);
    let normal_prior = normal.dataset.empirical_distribution().expect("non-empty");
    sweep_workload(
        "fig4-normal",
        &normal_prior,
        normal.config.num_records as u64,
        delta,
        fidelity,
        &mut rows,
    );

    let gamma = paper_workload(SourceDistribution::paper_gamma(), 2008);
    let gamma_prior = gamma.dataset.empirical_distribution().expect("non-empty");
    sweep_workload(
        "fig4-gamma",
        &gamma_prior,
        gamma.config.num_records as u64,
        delta,
        fidelity,
        &mut rows,
    );

    let (adult_prior, adult_records) = adult_first_attribute();
    sweep_workload(
        "fig5c-adult",
        &adult_prior,
        adult_records as u64,
        delta,
        fidelity,
        &mut rows,
    );

    println!("# engine ablation sweep (delta = {delta}, fidelity {fidelity:?})");
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>8} {:>7} {:>6} {:>10} {:>8}",
        "workload", "engine", "hv", "warner_hv", "better%", "points", "gens", "evals", "wall_s"
    );
    for r in &rows {
        println!(
            "{:<14} {:>8} {:>12.4e} {:>12.4e} {:>7.1}% {:>7} {:>6} {:>10} {:>8.2}",
            r.workload,
            r.engine,
            r.hypervolume,
            r.baseline_hypervolume,
            r.better_fraction * 100.0,
            r.front_points,
            r.generations,
            r.evaluations,
            r.wall_seconds
        );
    }

    println!("\n# head-to-head (hypervolume ratio NSGA-II / SPEA2 per workload)");
    for pair in rows.chunks(2) {
        let [spea2, nsga2] = pair else { continue };
        let ratio = if spea2.hypervolume > 0.0 {
            nsga2.hypervolume / spea2.hypervolume
        } else {
            f64::NAN
        };
        let speed = if nsga2.wall_seconds > 0.0 {
            spea2.wall_seconds / nsga2.wall_seconds
        } else {
            f64::NAN
        };
        println!(
            "{:<14} hv ratio {:>6.3}   nsga2 speedup x{:>5.2}",
            spea2.workload, ratio, speed
        );
    }
}
