//! A-OMEGA ablation — the optimal set Ω vs the plain bounded SPEA2 archive.
//!
//! Section V.H of the paper motivates Ω by noting the bounded archive has to
//! throw good matrices away. This ablation runs the same optimization once
//! and compares the front reported from Ω against the front reported from
//! the final archive alone: Ω should cover at least as wide a privacy range
//! with at least as many points and no worse hypervolume.
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_ablation_omega [--fast|--paper]`

use bench_support::{paper_workload, print_report, Fidelity};
use datagen::SourceDistribution;
use optrr::{ExperimentReport, FrontComparison, FrontPoint, Optimizer, ParetoFront};

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let delta = 0.75;
    let workload = paper_workload(SourceDistribution::standard_normal(), 2008);
    let prior = workload
        .dataset
        .empirical_distribution()
        .expect("non-empty");

    let mut config = fidelity.optimizer_config(delta, 2008);
    config.num_records = workload.config.num_records as u64;
    bench_support::apply_engine_selection(&mut config);
    let outcome = Optimizer::new(config)
        .expect("validated configuration")
        .optimize_distribution(&prior)
        .expect("optimization succeeds");

    // Front from the bounded archive only (what stock SPEA2 would report).
    let archive_points: Vec<FrontPoint> = outcome
        .archive
        .iter()
        .filter(|(_, e)| e.feasible)
        .map(|(_, e)| FrontPoint::from_evaluation(e))
        .collect();
    let archive_front = ParetoFront::from_points("SPEA2-archive-only", &archive_points);
    let omega_front = outcome.front.clone();

    let comparison = FrontComparison::compare(&omega_front, &archive_front, 100);
    let report = ExperimentReport {
        experiment_id: "ablation-omega".into(),
        description: format!(
            "optimal set Omega ({} points) vs bounded archive only ({} points), normal workload, delta = {delta}",
            omega_front.len(),
            archive_front.len()
        ),
        delta,
        fronts: vec![archive_front.clone(), omega_front.clone()],
        comparison: Some(comparison),
        optimizer_statistics: Some(outcome.statistics),
    };
    print_report(&report);

    println!("=== ablation summary (Omega vs archive) ===");
    println!("omega front points   : {}", omega_front.len());
    println!("archive front points : {}", archive_front.len());
    println!("omega privacy range   : {:?}", omega_front.privacy_range());
    println!(
        "archive privacy range : {:?}",
        archive_front.privacy_range()
    );
}
