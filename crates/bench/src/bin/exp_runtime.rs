//! E-TIME — runtime observation of Section VI.C: the paper reports ~12
//! minutes per experiment on a 2.65 GHz Pentium 4 (and ~10 minutes for the
//! Adult attribute). This binary measures the wall-clock time of OptRR runs
//! at the three fidelities on the same workload shape so EXPERIMENTS.md can
//! report comparable numbers for the present machine.
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_runtime [--fast|--paper]`

use bench_support::{paper_workload, Fidelity};
use datagen::SourceDistribution;
use optrr::Optimizer;

fn main() {
    let requested = Fidelity::from_env_and_args();
    let workload = paper_workload(SourceDistribution::standard_normal(), 2008);
    let prior = workload
        .dataset
        .empirical_distribution()
        .expect("non-empty");

    println!("# E-TIME: optimizer wall-clock vs budget (normal workload, n = 10, N = 10,000)");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>12}",
        "fidelity", "generations", "evaluations", "wall-clock(s)", "front pts"
    );
    let fidelities: Vec<Fidelity> = match requested {
        Fidelity::Paper => vec![Fidelity::Fast, Fidelity::Standard, Fidelity::Paper],
        _ => vec![Fidelity::Fast, Fidelity::Standard],
    };
    for fidelity in fidelities {
        let mut config = fidelity.optimizer_config(0.75, 2008);
        config.num_records = workload.config.num_records as u64;
        bench_support::apply_engine_selection(&mut config);
        let generations = config.engine.generations;
        let outcome = Optimizer::new(config)
            .expect("validated configuration")
            .optimize_distribution(&prior)
            .expect("optimization succeeds");
        println!(
            "{:>10} {:>12} {:>14} {:>14.2} {:>12}",
            format!("{fidelity:?}"),
            generations,
            outcome.statistics.evaluations,
            outcome.statistics.wall_clock_seconds,
            outcome.front.len()
        );
    }
    println!();
    println!("paper reference: ~12 minutes per synthetic experiment, ~10 minutes for Adult,");
    println!("on a DELL Precision 340 (2.65 GHz Pentium 4, 512 MB RAM) at 20,000 iterations.");
}
