//! E-THM2 — Theorem 2: the Warner, Uniform Perturbation, and FRAPP
//! parameter families describe the same solution set, so their Pareto
//! fronts coincide.
//!
//! The experiment sweeps all three families on the same workload, verifies
//! the pointwise matrix equivalences under the Theorem 2 parameter maps,
//! and prints the three (privacy, MSE) fronts so their coincidence can be
//! inspected directly.
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_theorem2 [--fast|--paper]`

use bench_support::{paper_workload, print_report, Fidelity};
use datagen::SourceDistribution;
use optrr::{baseline_sweep, ExperimentReport, OptrrProblem, SchemeKind};
use rr::schemes::{frapp, theorem2, uniform_perturbation, warner};

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let delta = 0.75;
    let workload = paper_workload(SourceDistribution::standard_normal(), 2008);
    let prior = workload
        .dataset
        .empirical_distribution()
        .expect("non-empty");
    let n = prior.num_categories();

    let config = {
        let mut c = fidelity.optimizer_config(delta, 2008);
        c.num_records = workload.config.num_records as u64;
        bench_support::apply_engine_selection(&mut c);
        c
    };
    let problem = OptrrProblem::new(prior.clone(), &config).expect("valid problem");

    // 1. Pointwise equivalence check over a grid of Warner parameters.
    let mut max_disagreement: f64 = 0.0;
    let mut checked = 0usize;
    for k in 0..=200 {
        let p = (1.0 / n as f64) + (k as f64 / 200.0) * (1.0 - 1.0 / n as f64);
        let w = warner(n, p).expect("valid parameter");
        let q = theorem2::warner_to_up(n, p);
        if (0.0..=1.0).contains(&q) {
            let u = uniform_perturbation(n, q).expect("valid parameter");
            max_disagreement = max_disagreement.max(w.max_abs_difference(&u).expect("same size"));
            checked += 1;
        }
        let lambda = theorem2::warner_to_frapp(n, p);
        if lambda.is_finite() {
            let f = frapp(n, lambda).expect("valid parameter");
            max_disagreement = max_disagreement.max(w.max_abs_difference(&f).expect("same size"));
            checked += 1;
        }
    }
    println!("# Theorem 2 pointwise check");
    println!("parameter pairs checked          : {checked}");
    println!("max |Warner - UP/FRAPP| entry    : {max_disagreement:.3e}");
    println!(
        "equivalence holds (tolerance 1e-9): {}",
        max_disagreement < 1e-9
    );
    println!();

    // 2. Front coincidence across the three families.
    let steps = fidelity.sweep_steps();
    let warner_front = baseline_sweep(&problem, SchemeKind::Warner, steps).front;
    let up_front = baseline_sweep(&problem, SchemeKind::UniformPerturbation, steps).front;
    let frapp_front = baseline_sweep(&problem, SchemeKind::Frapp, steps).front;

    let report = ExperimentReport {
        experiment_id: "theorem2-front-equivalence".into(),
        description: "Warner / UP / FRAPP sweeps over the same normal workload; Theorem 2 \
                      predicts coinciding Pareto fronts"
            .into(),
        delta,
        fronts: vec![warner_front.clone(), up_front.clone(), frapp_front.clone()],
        comparison: None,
        optimizer_statistics: None,
    };
    print_report(&report);

    // 3. Numeric coincidence summary: MSE difference at matched privacy levels.
    println!("=== theorem 2 summary ===");
    if let (Some((lo, hi)), Some(_), Some(_)) = (
        warner_front.privacy_range(),
        up_front.privacy_range(),
        frapp_front.privacy_range(),
    ) {
        let mut worst_rel: f64 = 0.0;
        for k in 0..=20 {
            let privacy = lo + (hi - lo) * k as f64 / 20.0;
            if let (Some(w), Some(u), Some(f)) = (
                warner_front.best_mse_at_privacy_at_least(privacy),
                up_front.best_mse_at_privacy_at_least(privacy),
                frapp_front.best_mse_at_privacy_at_least(privacy),
            ) {
                worst_rel = worst_rel.max((w - u).abs() / w.max(1e-18));
                worst_rel = worst_rel.max((w - f).abs() / w.max(1e-18));
            }
        }
        println!("worst relative MSE difference across fronts at matched privacy: {worst_rel:.3e}");
        println!("fronts coincide (tolerance 5%): {}", worst_rel < 0.05);
    }
}
