//! E-FIG5D — Figure 5(d): re-score the OptRR optimal set and the Warner
//! baseline with the *iterative* estimator's empirical MSE instead of the
//! closed-form inversion MSE, on the gamma(1.0, 2.0) workload with
//! δ = 0.75. The paper's point: the dominance of OptRR over Warner is not
//! an artifact of the estimator used inside the optimizer.
//!
//! Usage: `cargo run -p optrr-bench --release --bin exp_fig5d [--fast|--paper]`

use bench_support::{paper_workload, print_report, Fidelity};
use datagen::SourceDistribution;
use optrr::{
    baseline_sweep, ExperimentReport, FrontComparison, FrontPoint, Optimizer, OptrrProblem,
    ParetoFront, SchemeKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rr::estimate::iterative::{iterative_estimate_from_frequencies, IterativeConfig};
use rr::metrics::utility::empirical_mse;
use rr::RrMatrix;
use stats::{Categorical, Histogram};

/// Empirical MSE of the *iterative* estimator for one matrix, by Monte
/// Carlo over fresh disguised samples.
fn iterative_mse(
    m: &RrMatrix,
    prior: &Categorical,
    num_records: u64,
    trials: usize,
    seed: u64,
) -> Option<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    // The convergence tolerance is set well below the MSE scale being
    // measured (~1e-4) but loose enough that strongly disguising matrices
    // (slow EM contraction) still converge within the iteration budget.
    empirical_mse(m, prior, num_records, trials, &mut rng, |matrix, counts| {
        let hist = Histogram::from_counts(counts.to_vec())?;
        let p_star = hist.empirical_distribution()?;
        let est = iterative_estimate_from_frequencies(
            matrix,
            &p_star,
            &IterativeConfig {
                max_iterations: 50_000,
                tolerance: 1e-6,
            },
        )?;
        Ok(est.distribution.probs().to_vec())
    })
    .ok()
}

fn main() {
    let fidelity = Fidelity::from_env_and_args();
    let delta = 0.75;
    let trials = match fidelity {
        Fidelity::Fast => 30,
        Fidelity::Standard => 100,
        Fidelity::Paper => 300,
    };

    // Same workload and optimal set as Figure 5(a).
    let workload = paper_workload(SourceDistribution::paper_gamma(), 2008);
    let prior = workload
        .dataset
        .empirical_distribution()
        .expect("non-empty");
    let num_records = workload.config.num_records as u64;

    let mut config = fidelity.optimizer_config(delta, 2008);
    config.num_records = num_records;
    bench_support::apply_engine_selection(&mut config);
    let problem = OptrrProblem::new(prior.clone(), &config).expect("valid problem");
    let warner = baseline_sweep(&problem, SchemeKind::Warner, fidelity.sweep_steps());
    let outcome = Optimizer::new(config)
        .expect("validated configuration")
        .optimize_distribution(&prior)
        .expect("optimization succeeds");

    // Re-score both fronts with the iterative estimator's empirical MSE.
    let rescore = |matrices: Vec<(f64, RrMatrix)>, label: &str| -> ParetoFront {
        let points: Vec<FrontPoint> = matrices
            .iter()
            .enumerate()
            .filter_map(|(i, (privacy, m))| {
                iterative_mse(m, &prior, num_records, trials, 9000 + i as u64).map(|mse| {
                    FrontPoint {
                        privacy: *privacy,
                        mse,
                    }
                })
            })
            .collect();
        ParetoFront::from_points(label, &points)
    };

    let warner_matrices: Vec<(f64, RrMatrix)> = warner
        .points
        .iter()
        .filter(|p| p.evaluation.feasible)
        .filter_map(|p| {
            rr::schemes::warner(prior.num_categories(), p.parameter)
                .ok()
                .map(|m| (p.evaluation.privacy, m))
        })
        .collect();
    // Thin the Warner set so the Monte Carlo stays tractable.
    let step = (warner_matrices.len() / 40).max(1);
    let warner_matrices: Vec<(f64, RrMatrix)> = warner_matrices.into_iter().step_by(step).collect();

    let optrr_matrices: Vec<(f64, RrMatrix)> = outcome
        .omega
        .pareto_entries()
        .iter()
        .map(|e| (e.evaluation.privacy, e.matrix.clone()))
        .collect();
    let step = (optrr_matrices.len() / 40).max(1);
    let optrr_matrices: Vec<(f64, RrMatrix)> = optrr_matrices.into_iter().step_by(step).collect();

    let warner_front = rescore(warner_matrices, "Warner");
    let optrr_front = rescore(optrr_matrices, "OptRR");
    let comparison = FrontComparison::compare(&optrr_front, &warner_front, 100);

    let report = ExperimentReport {
        experiment_id: "fig5d-iterative-utility-gamma-delta0.75".into(),
        description: format!(
            "gamma(1.0, 2.0) workload; utility re-measured as the empirical MSE of the \
             iterative estimator over {trials} Monte Carlo trials"
        ),
        delta,
        fronts: vec![warner_front, optrr_front],
        comparison: Some(comparison),
        optimizer_statistics: Some(outcome.statistics),
    };
    print_report(&report);
    println!("=== figure 5(d) summary ===");
    println!("{}", bench_support::summary_line(&report));
}
