//! Microbenchmarks of the linear-algebra substrate (matrix inversion and
//! matrix-vector products), which sit on the innermost path of every
//! fitness evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::{invert, Matrix, Vector};

fn diagonally_dominant(n: usize) -> Matrix {
    let mut m = Matrix::filled(n, n, 0.3 / (n as f64 - 1.0));
    for i in 0..n {
        m[(i, i)] = 0.7;
    }
    m
}

fn bench_inversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_inversion");
    for &n in &[5usize, 10, 20, 40, 80] {
        let m = diagonally_dominant(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| invert(black_box(&m)).unwrap())
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_vector_product");
    for &n in &[10usize, 40, 160] {
        let m = diagonally_dominant(n);
        let v = Vector::filled(n, 1.0 / n as f64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| m.mul_vector(black_box(&v)).unwrap())
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_matrix_product");
    for &n in &[10usize, 40, 80] {
        let m = diagonally_dominant(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| m.mul_matrix(black_box(&m)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inversion, bench_matvec, bench_matmul);
criterion_main!(benches);
