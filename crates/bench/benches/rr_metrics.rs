//! Microbenchmarks of the privacy and utility metrics — the two functions
//! evaluated once per candidate matrix per generation, which dominate the
//! optimizer's per-generation cost (the paper's §VI.C runtime observation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rr::metrics::bounds::max_posterior;
use rr::metrics::privacy::analyze;
use rr::metrics::utility::utility;
use rr::schemes::warner;
use stats::{discretize_distribution, Normal};

fn prior(n: usize) -> stats::Categorical {
    discretize_distribution(&Normal::new(0.0, 1.0).unwrap(), n).unwrap()
}

fn bench_privacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("privacy_metric");
    for &n in &[5usize, 10, 20, 40] {
        let p = prior(n);
        let m = warner(n, 0.7).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| analyze(black_box(&m), black_box(&p)).unwrap())
        });
    }
    group.finish();
}

fn bench_utility(c: &mut Criterion) {
    let mut group = c.benchmark_group("utility_metric");
    for &n in &[5usize, 10, 20, 40] {
        let p = prior(n);
        let m = warner(n, 0.7).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| utility(black_box(&m), black_box(&p), 10_000).unwrap())
        });
    }
    group.finish();
}

fn bench_max_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_posterior");
    for &n in &[10usize, 40] {
        let p = prior(n);
        let m = warner(n, 0.7).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| max_posterior(black_box(&m), black_box(&p)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_privacy, bench_utility, bench_max_posterior);
criterion_main!(benches);
