//! Microbenchmarks of the two distribution estimators: the inversion
//! approach of Theorem 1 vs the iterative approach of Equation (3). The
//! paper's stated reason for optimizing with the inversion estimator is
//! exactly this cost difference (Section III.A).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::CategoricalDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rr::disguise::disguise_dataset;
use rr::estimate::inversion::estimate_distribution;
use rr::estimate::iterative::{iterative_estimate, IterativeConfig};
use rr::schemes::warner;
use stats::{discretize_distribution, Normal};

fn disguised_workload(n: usize, records: usize) -> (rr::RrMatrix, CategoricalDataset) {
    let prior = discretize_distribution(&Normal::new(0.0, 1.0).unwrap(), n).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let original = CategoricalDataset::new(n, prior.sample_many(&mut rng, records)).unwrap();
    let m = warner(n, 0.7).unwrap();
    let disguised = disguise_dataset(&m, &original, &mut rng).unwrap().disguised;
    (m, disguised)
}

fn bench_inversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_inversion");
    for &n in &[5usize, 10, 20] {
        let (m, disguised) = disguised_workload(n, 10_000);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| estimate_distribution(black_box(&m), black_box(&disguised)).unwrap())
        });
    }
    group.finish();
}

fn bench_iterative(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_iterative");
    group.sample_size(20);
    for &n in &[5usize, 10, 20] {
        let (m, disguised) = disguised_workload(n, 10_000);
        let cfg = IterativeConfig {
            max_iterations: 10_000,
            tolerance: 1e-9,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| iterative_estimate(black_box(&m), black_box(&disguised), &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inversion, bench_iterative);
criterion_main!(benches);
