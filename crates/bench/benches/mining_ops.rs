//! Benchmarks of the privacy-preserving mining applications: per-record
//! disguise throughput, itemset-support reconstruction, and decision-tree
//! building over disguised data.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::labeled::{generate as generate_labeled, LabeledConfig};
use datagen::transactions::{generate as generate_txns, TransactionConfig};
use datagen::CategoricalDataset;
use mining::decision_tree::{build_tree, AttributeView, TreeConfig};
use mining::transactions::{disguise_transactions, estimate_support};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rr::disguise::disguise_dataset;
use rr::schemes::warner;
use stats::{discretize_distribution, Normal};

fn bench_record_disguise(c: &mut Criterion) {
    let mut group = c.benchmark_group("disguise_throughput");
    group.sample_size(20);
    let prior = discretize_distribution(&Normal::new(0.0, 1.0).unwrap(), 10).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for &records in &[10_000usize, 100_000] {
        let data = CategoricalDataset::new(10, prior.sample_many(&mut rng, records)).unwrap();
        let m = warner(10, 0.7).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| disguise_dataset(black_box(&m), black_box(&data), &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_support_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("itemset_support_reconstruction");
    group.sample_size(10);
    let data = generate_txns(&TransactionConfig {
        num_transactions: 20_000,
        ..TransactionConfig::default()
    })
    .unwrap();
    let m = warner(2, 0.85).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let disguised = disguise_transactions(&m, &data, &mut rng).unwrap();
    for size in [1usize, 2, 3] {
        let itemset: Vec<usize> = (0..size).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| estimate_support(black_box(&m), black_box(&disguised), &itemset).unwrap())
        });
    }
    group.finish();
}

fn bench_tree_building(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_tree_build");
    group.sample_size(10);
    let train = generate_labeled(&LabeledConfig {
        num_records: 10_000,
        ..Default::default()
    })
    .unwrap();
    let domain = train.attribute(0).unwrap().num_categories();
    let m = warner(domain, 0.8).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let disguised_column = disguise_dataset(&m, train.attribute(0).unwrap(), &mut rng)
        .unwrap()
        .disguised;
    let disguised_train = train.with_attribute(0, disguised_column).unwrap();

    group.bench_function("plain_attributes", |b| {
        let views = vec![AttributeView::Plain; train.num_attributes()];
        b.iter(|| build_tree(black_box(&train), &views, &TreeConfig::default()).unwrap())
    });
    group.bench_function("one_disguised_attribute", |b| {
        let mut views = vec![AttributeView::Plain; train.num_attributes()];
        views[0] = AttributeView::Disguised(&m);
        b.iter(|| build_tree(black_box(&disguised_train), &views, &TreeConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_record_disguise,
    bench_support_estimation,
    bench_tree_building
);
criterion_main!(benches);
