//! Benchmarks of the optimizer itself: the per-candidate evaluation, the
//! batched serial-vs-parallel evaluation path, the genetic operators, and
//! short end-to-end runs of both EMOO backends (the quantity behind the
//! paper's "about 12 minutes per experiment" observation, E-TIME).
//!
//! Under `cargo bench` this also emits a `BENCH_optimizer.json` baseline at
//! the workspace root so future performance PRs have a trajectory to beat.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use emoo::EngineKind;
use optrr::operators::{
    column_swap_crossover, proportional_column_mutation, repair_to_delta_bound,
};
use optrr::{Optimizer, OptrrConfig, OptrrProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rr::schemes::warner;
use rr::RrMatrix;
use serde::Serialize;
use stats::{discretize_distribution, Normal};

fn prior(n: usize) -> stats::Categorical {
    discretize_distribution(&Normal::new(0.0, 1.0).unwrap(), n).unwrap()
}

fn problem(n: usize, parallel: bool) -> OptrrProblem {
    let config = OptrrConfig {
        parallel_evaluation: parallel,
        ..OptrrConfig::fast(0.75, 1)
    };
    OptrrProblem::new(prior(n), &config).unwrap()
}

fn random_matrices(n: usize, count: usize, seed: u64) -> Vec<RrMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| RrMatrix::random(n, &mut rng).unwrap())
        .collect()
}

fn bench_candidate_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_evaluation");
    for &n in &[10usize, 20] {
        let problem = problem(n, false);
        let m = warner(n, 0.65).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            // Clone per sample so the evaluation cache stays cold and the
            // bench measures the actual computation.
            b.iter(|| problem.clone().evaluate_matrix(black_box(&m)))
        });
    }
    group.finish();
}

fn bench_batch_evaluation(c: &mut Criterion) {
    // The engine hot path: one generation's worth of candidate matrices
    // through the batched evaluation, serial vs parallel. Evaluation is
    // pure, so both paths return bit-identical results; on a single-core
    // host the parallel path falls back to the serial loop.
    let mut group = c.benchmark_group("batch_evaluation");
    group.sample_size(30);
    for &n in &[10usize, 20] {
        let matrices = random_matrices(n, 128, 7);
        for (label, parallel) in [("serial", false), ("parallel", true)] {
            let p = problem(n, parallel);
            group.bench_function(format!("{label}_n{n}_x128"), |b| {
                b.iter(|| p.clone().evaluate_matrices(black_box(&matrices)))
            });
        }
        // Warm-cache lookups: what Ω offers and archive reporting cost
        // after the engine has already evaluated the generation.
        let warm = problem(n, false);
        let _ = warm.evaluate_matrices(&matrices);
        group.bench_function(format!("cached_n{n}_x128"), |b| {
            b.iter(|| warm.evaluate_matrices(black_box(&matrices)))
        });
    }
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let n = 10usize;
    let p = prior(n);
    let mut rng = StdRng::seed_from_u64(3);
    let a = RrMatrix::random(n, &mut rng).unwrap();
    let b_mat = RrMatrix::random(n, &mut rng).unwrap();

    c.bench_function("crossover_n10", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| column_swap_crossover(black_box(&a), black_box(&b_mat), &mut rng))
    });
    c.bench_function("mutation_n10", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| proportional_column_mutation(black_box(&a), 0.25, &mut rng))
    });
    c.bench_function("repair_n10", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let tight = warner(n, 0.95).unwrap();
        b.iter(|| repair_to_delta_bound(black_box(&tight), &p, 0.75, &mut rng))
    });
}

fn short_run_config(kind: EngineKind, parallel: bool) -> OptrrConfig {
    OptrrConfig {
        engine: emoo::EngineConfig {
            population_size: 24,
            archive_size: 12,
            generations: 10,
            mutation_rate: 0.5,
            density_k: 1,
        },
        engine_kind: kind,
        parallel_evaluation: parallel,
        omega_slots: 200,
        ..OptrrConfig::fast(0.75, 9)
    }
}

fn bench_short_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_short_run");
    group.sample_size(10);
    let p = prior(10);
    for (label, kind) in [("spea2", EngineKind::Spea2), ("nsga2", EngineKind::Nsga2)] {
        for (mode, parallel) in [("serial", false), ("parallel", true)] {
            let config = short_run_config(kind, parallel);
            group.bench_function(format!("10_generations_n10_{label}_{mode}"), |b| {
                b.iter(|| {
                    Optimizer::new(config.clone())
                        .unwrap()
                        .optimize_distribution(black_box(&p))
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_candidate_evaluation,
    bench_batch_evaluation,
    bench_operators,
    bench_short_run
);

/// One row of the emitted baseline file.
#[derive(Serialize)]
struct BaselineEntry {
    name: String,
    mean_ns: u64,
    min_ns: u64,
    max_ns: u64,
    iterations: u64,
}

/// Writes `BENCH_optimizer.json` at the workspace root from the recorded
/// measurements (relies on the vendored criterion stand-in's `results()`
/// accessor; with the real criterion, read `target/criterion` instead).
fn write_baseline(criterion: &Criterion) {
    let entries: Vec<BaselineEntry> = criterion
        .results()
        .iter()
        .map(|(name, m)| BaselineEntry {
            name: name.clone(),
            mean_ns: m.mean.as_nanos() as u64,
            min_ns: m.min.as_nanos() as u64,
            max_ns: m.max.as_nanos() as u64,
            iterations: m.iterations,
        })
        .collect();
    if entries.is_empty() {
        return; // smoke-check mode (cargo test): nothing measured
    }
    let json = serde_json::to_string_pretty(&entries).expect("baseline serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_optimizer.json");
    if let Err(error) = std::fs::write(path, json + "\n") {
        eprintln!("warning: could not write {path}: {error}");
    } else {
        println!("wrote baseline {path}");
    }
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
    write_baseline(&criterion);
}
