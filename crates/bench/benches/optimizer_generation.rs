//! Benchmarks of the optimizer itself: the per-candidate evaluation, the
//! genetic operators, and a short end-to-end run (the quantity behind the
//! paper's "about 12 minutes per experiment" observation, E-TIME).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use optrr::operators::{column_swap_crossover, proportional_column_mutation, repair_to_delta_bound};
use optrr::{Optimizer, OptrrConfig, OptrrProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rr::schemes::warner;
use rr::RrMatrix;
use stats::{discretize_distribution, Normal};

fn prior(n: usize) -> stats::Categorical {
    discretize_distribution(&Normal::new(0.0, 1.0).unwrap(), n).unwrap()
}

fn bench_candidate_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_evaluation");
    for &n in &[10usize, 20] {
        let p = prior(n);
        let problem = OptrrProblem::new(p, &OptrrConfig::fast(0.75, 1)).unwrap();
        let m = warner(n, 0.65).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| problem.evaluate_matrix(black_box(&m)))
        });
    }
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let n = 10usize;
    let p = prior(n);
    let mut rng = StdRng::seed_from_u64(3);
    let a = RrMatrix::random(n, &mut rng).unwrap();
    let b_mat = RrMatrix::random(n, &mut rng).unwrap();

    c.bench_function("crossover_n10", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| column_swap_crossover(black_box(&a), black_box(&b_mat), &mut rng))
    });
    c.bench_function("mutation_n10", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| proportional_column_mutation(black_box(&a), 0.25, &mut rng))
    });
    c.bench_function("repair_n10", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let tight = warner(n, 0.95).unwrap();
        b.iter(|| repair_to_delta_bound(black_box(&tight), &p, 0.75, &mut rng))
    });
}

fn bench_short_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_short_run");
    group.sample_size(10);
    let p = prior(10);
    let config = OptrrConfig {
        engine: emoo::Spea2Config {
            population_size: 24,
            archive_size: 12,
            generations: 10,
            mutation_rate: 0.5,
            density_k: 1,
        },
        omega_slots: 200,
        ..OptrrConfig::fast(0.75, 9)
    };
    group.bench_function("10_generations_n10", |b| {
        b.iter(|| {
            Optimizer::new(config.clone())
                .unwrap()
                .optimize_distribution(black_box(&p))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_candidate_evaluation, bench_operators, bench_short_run);
criterion_main!(benches);
