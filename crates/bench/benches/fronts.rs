//! Benchmarks of the front machinery: baseline sweeps (the per-figure
//! Warner series of §VI.B), Pareto-front extraction, and the quality
//! indicators used to compare fronts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emoo::indicators::hypervolume_2d;
use emoo::{pareto_front, Objectives};
use optrr::{baseline_sweep, FrontPoint, OptrrConfig, OptrrProblem, ParetoFront, SchemeKind};
use stats::{discretize_distribution, Normal};

fn problem(n: usize) -> OptrrProblem {
    let prior = discretize_distribution(&Normal::new(0.0, 1.0).unwrap(), n).unwrap();
    OptrrProblem::new(prior, &OptrrConfig::fast(0.75, 1)).unwrap()
}

fn bench_baseline_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("warner_baseline_sweep");
    group.sample_size(10);
    let p = problem(10);
    for &steps in &[101usize, 1001] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, _| {
            b.iter(|| baseline_sweep(black_box(&p), SchemeKind::Warner, steps))
        });
    }
    group.finish();
}

fn bench_pareto_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_front_extraction");
    for &count in &[100usize, 1000] {
        let points: Vec<Objectives> = (0..count)
            .map(|i| {
                let x = (i as f64 * 0.618_033_988_75).fract();
                let y = (i as f64 * 0.414_213_562_37).fract();
                Objectives::pair(x, y)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, _| {
            b.iter(|| pareto_front(black_box(&points)))
        });
    }
    group.finish();
}

fn bench_indicators(c: &mut Criterion) {
    let points: Vec<FrontPoint> = (0..500)
        .map(|i| {
            let privacy = i as f64 / 500.0 * 0.7;
            FrontPoint {
                privacy,
                mse: 1e-3 * (1.0 - privacy) + 1e-5,
            }
        })
        .collect();
    let front = ParetoFront::from_points("bench", &points);
    let objectives = front.to_objectives();
    c.bench_function("hypervolume_500_points", |b| {
        b.iter(|| hypervolume_2d(black_box(&objectives), &Objectives::pair(1.0, 2e-3)))
    });
}

criterion_group!(
    benches,
    bench_baseline_sweep,
    bench_pareto_extraction,
    bench_indicators
);
criterion_main!(benches);
