//! # optrr-suite
//!
//! Host crate for the repository-level runnable examples (`examples/`) and
//! cross-crate integration tests (`tests/`) of the OptRR reproduction. It
//! re-exports the workspace crates so examples and tests can reach every
//! public API through a single dependency, and provides a few tiny helpers
//! shared by the integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use datagen;
pub use emoo;
pub use linalg;
pub use mining;
pub use optrr;
pub use rr;
pub use serve;
pub use stats;

/// A reduced-budget optimizer configuration for integration tests: large
/// enough that OptRR reliably matches-or-beats the Warner baseline on the
/// paper's 10-category workloads, small enough to keep the test suite
/// quick.
pub fn integration_config(delta: f64, seed: u64) -> optrr::OptrrConfig {
    optrr::OptrrConfig {
        engine: emoo::EngineConfig {
            population_size: 40,
            archive_size: 20,
            generations: 120,
            mutation_rate: 0.5,
            density_k: 1,
        },
        omega_slots: 600,
        ..optrr::OptrrConfig::fast(delta, seed)
    }
}

/// The reduced-budget configuration pinned to a specific EMOO backend —
/// used by the engine-equivalence integration tests.
pub fn integration_config_for(kind: emoo::EngineKind, delta: f64, seed: u64) -> optrr::OptrrConfig {
    optrr::OptrrConfig {
        engine_kind: kind,
        ..integration_config(delta, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integration_config_is_valid() {
        assert!(integration_config(0.75, 1).validate().is_ok());
        assert!(integration_config(0.6, 2).validate().is_ok());
        assert_eq!(
            integration_config(0.75, 1).engine_kind,
            emoo::EngineKind::Spea2
        );
        let nsga = integration_config_for(emoo::EngineKind::Nsga2, 0.75, 1);
        assert!(nsga.validate().is_ok());
        assert_eq!(nsga.engine_kind, emoo::EngineKind::Nsga2);
    }
}
