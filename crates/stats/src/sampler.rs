//! Random-variate samplers implemented from scratch on top of the base
//! uniform RNG provided by `rand`.
//!
//! The offline dependency set does not include `rand_distr`, so the
//! non-uniform samplers the workload generators need (normal via Box–Muller,
//! gamma via Marsaglia–Tsang, exponential via inversion, Zipf via inverse
//! CDF table) are implemented here and validated against their analytic
//! moments in the tests.

use crate::continuous::{Exponential, Gamma, Normal, Uniform};
use crate::error::{Result, StatsError};
use rand::Rng;

/// A source of i.i.d. draws from a continuous distribution.
pub trait Sampler {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `count` values.
    fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

impl Sampler for Normal {
    /// Box–Muller transform. One of the two generated variates is discarded
    /// for simplicity; the workloads here are small enough that the extra
    /// uniform draw is irrelevant.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen();
            let u2: f64 = rng.gen();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            let z = r * theta.cos();
            return self.mu + self.sigma * z;
        }
    }
}

impl Sampler for Exponential {
    /// Inversion: `-ln(1 - U) / lambda`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen();
            if u < 1.0 {
                return -(1.0 - u).ln() / self.lambda;
            }
        }
    }
}

impl Sampler for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.a + u * (self.b - self.a)
    }
}

impl Sampler for Gamma {
    /// Marsaglia–Tsang "squeeze" method for shape >= 1; for shape < 1 the
    /// standard boost `Gamma(alpha+1) * U^{1/alpha}` is applied.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let alpha = self.alpha;
        if alpha < 1.0 {
            // Boost: draw from Gamma(alpha + 1) and scale by U^{1/alpha}.
            let boosted = Gamma {
                alpha: alpha + 1.0,
                beta: self.beta,
            };
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            return boosted.sample(rng) * u.powf(1.0 / alpha);
        }
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let std_normal = Normal::standard();
        loop {
            let x = std_normal.sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            // Squeeze check followed by the full acceptance check.
            if u < 1.0 - 0.0331 * x * x * x * x || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * self.beta;
            }
        }
    }
}

/// Zipf (discrete power-law) distribution over ranks `0..n` with exponent
/// `s`: `P(rank k) ∝ 1 / (k+1)^s`. Used as an additional skewed workload in
/// the extended experiments and by the mining examples.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: usize,
    s: f64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InvalidParameter {
                name: "n",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        if !(s >= 0.0) || !s.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "s",
                value: s,
                constraint: "must be finite and non-negative",
            });
        }
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { n, s, cdf })
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// Exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability of rank `k`.
    pub fn prob(&self, k: usize) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - lo
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(idx) => (idx + 1).min(self.n - 1),
            Err(idx) => idx.min(self.n - 1),
        }
    }

    /// Draws `count` ranks.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::ContinuousDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_sampler_matches_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples = d.sample_many(&mut rng, 100_000);
        let (mean, var) = moments(&samples);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_sampler_matches_moments() {
        let d = Exponential::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let samples = d.sample_many(&mut rng, 100_000);
        let (mean, var) = moments(&samples);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn uniform_sampler_stays_in_bounds_and_matches_moments() {
        let d = Uniform::new(-2.0, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let samples = d.sample_many(&mut rng, 100_000);
        assert!(samples.iter().all(|&x| (-2.0..=6.0).contains(&x)));
        let (mean, var) = moments(&samples);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 64.0 / 12.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn gamma_sampler_matches_moments_paper_parameters() {
        // The paper's Figure 5(a) uses alpha = 1.0, beta = 2.0.
        let d = Gamma::new(1.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        let samples = d.sample_many(&mut rng, 100_000);
        let (mean, var) = moments(&samples);
        assert!((mean - d.mean()).abs() < 0.06, "mean {mean}");
        assert!((var - d.variance()).abs() < 0.3, "var {var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_sampler_large_shape() {
        let d = Gamma::new(7.5, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(15);
        let samples = d.sample_many(&mut rng, 100_000);
        let (mean, var) = moments(&samples);
        assert!((mean - d.mean()).abs() < 0.1, "mean {mean}");
        assert!((var - d.variance()).abs() < 0.3, "var {var}");
    }

    #[test]
    fn gamma_sampler_shape_below_one() {
        let d = Gamma::new(0.5, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(16);
        let samples = d.sample_many(&mut rng, 200_000);
        let (mean, var) = moments(&samples);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((var - 0.5).abs() < 0.1, "var {var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn zipf_validation() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
        assert!(Zipf::new(5, f64::NAN).is_err());
        let z = Zipf::new(5, 1.0).unwrap();
        assert_eq!(z.num_ranks(), 5);
        assert_eq!(z.exponent(), 1.0);
    }

    #[test]
    fn zipf_probabilities_sum_to_one_and_decrease() {
        let z = Zipf::new(10, 1.2).unwrap();
        let total: f64 = (0..10).map(|k| z.prob(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..10 {
            assert!(z.prob(k) <= z.prob(k - 1) + 1e-12);
        }
        assert_eq!(z.prob(10), 0.0);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.prob(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_sampling_matches_probabilities() {
        let z = Zipf::new(6, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 200_000;
        let mut counts = [0usize; 6];
        for s in z.sample_many(&mut rng, n) {
            counts[s] += 1;
        }
        for k in 0..6 {
            let freq = counts[k] as f64 / n as f64;
            assert!(
                (freq - z.prob(k)).abs() < 0.01,
                "rank {k}: freq {freq} vs prob {}",
                z.prob(k)
            );
        }
    }

    #[test]
    fn samplers_are_deterministic_given_a_seed() {
        let d = Normal::standard();
        let a = d.sample_many(&mut StdRng::seed_from_u64(99), 10);
        let b = d.sample_many(&mut StdRng::seed_from_u64(99), 10);
        assert_eq!(a, b);
    }
}
