//! Multinomial count statistics.
//!
//! Theorem 6 of the paper expresses the closed-form utility (MSE of the
//! reconstructed distribution) in terms of the variance and covariance of
//! the per-category relative frequencies `N_i / N` of the disguised data,
//! which follow a multinomial law:
//!
//! * `Var(N_i / N)   =  P(Y=c_i)(1 - P(Y=c_i)) / N`
//! * `Cov(N_i/N, N_j/N) = - P(Y=c_i) P(Y=c_j) / N`  for `i ≠ j`
//!
//! This module provides those quantities plus the full covariance matrix of
//! the frequency vector and a multinomial sampler used in simulation-based
//! cross-checks of the closed form.

use crate::categorical::Categorical;
use crate::error::{Result, StatsError};
use rand::Rng;

/// Variance of the relative frequency `N_i / N` of category `i` when `N`
/// records are drawn i.i.d. from `dist`.
pub fn frequency_variance(dist: &Categorical, i: usize, n_records: u64) -> Result<f64> {
    if n_records == 0 {
        return Err(StatsError::EmptyData);
    }
    let p = dist.prob(i);
    Ok(p * (1.0 - p) / n_records as f64)
}

/// Covariance of the relative frequencies of two *distinct* categories.
/// For `i == j` this returns the variance instead.
pub fn frequency_covariance(dist: &Categorical, i: usize, j: usize, n_records: u64) -> Result<f64> {
    if n_records == 0 {
        return Err(StatsError::EmptyData);
    }
    if i == j {
        return frequency_variance(dist, i, n_records);
    }
    Ok(-dist.prob(i) * dist.prob(j) / n_records as f64)
}

/// Full covariance matrix (row-major, `n x n`) of the frequency vector.
pub fn frequency_covariance_matrix(dist: &Categorical, n_records: u64) -> Result<Vec<Vec<f64>>> {
    if n_records == 0 {
        return Err(StatsError::EmptyData);
    }
    let n = dist.num_categories();
    let mut cov = vec![vec![0.0; n]; n];
    for (i, row) in cov.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = frequency_covariance(dist, i, j, n_records)?;
        }
    }
    Ok(cov)
}

/// Draws one multinomial count vector: `n_records` records distributed over
/// the categories of `dist`.
pub fn sample_counts<R: Rng + ?Sized>(dist: &Categorical, n_records: u64, rng: &mut R) -> Vec<u64> {
    let mut counts = vec![0u64; dist.num_categories()];
    for _ in 0..n_records {
        counts[dist.sample(rng)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dist() -> Categorical {
        Categorical::new(vec![0.2, 0.3, 0.5]).unwrap()
    }

    #[test]
    fn variance_formula() {
        let d = dist();
        let v = frequency_variance(&d, 0, 1000).unwrap();
        assert!((v - 0.2 * 0.8 / 1000.0).abs() < 1e-15);
        assert!(frequency_variance(&d, 0, 0).is_err());
        // Out-of-range category has probability 0 hence variance 0.
        assert_eq!(frequency_variance(&d, 9, 1000).unwrap(), 0.0);
    }

    #[test]
    fn covariance_formula() {
        let d = dist();
        let c = frequency_covariance(&d, 0, 2, 1000).unwrap();
        assert!((c + 0.2 * 0.5 / 1000.0).abs() < 1e-15);
        // Diagonal falls back to variance.
        assert_eq!(
            frequency_covariance(&d, 1, 1, 1000).unwrap(),
            frequency_variance(&d, 1, 1000).unwrap()
        );
        assert!(frequency_covariance(&d, 0, 1, 0).is_err());
    }

    #[test]
    fn covariance_matrix_rows_sum_to_zero() {
        // Because the frequencies sum to exactly one, each row of the
        // covariance matrix sums to zero.
        let d = dist();
        let cov = frequency_covariance_matrix(&d, 500).unwrap();
        for row in &cov {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-15, "row sum {s}");
        }
        assert!(frequency_covariance_matrix(&d, 0).is_err());
    }

    #[test]
    fn covariance_matrix_is_symmetric_with_negative_off_diagonals() {
        let d = dist();
        let cov = frequency_covariance_matrix(&d, 100).unwrap();
        for i in 0..3 {
            assert!(cov[i][i] > 0.0);
            for j in 0..3 {
                assert!((cov[i][j] - cov[j][i]).abs() < 1e-18);
                if i != j {
                    assert!(cov[i][j] < 0.0);
                }
            }
        }
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let d = dist();
        let n_records = 2_000u64;
        let trials = 3_000usize;
        let mut rng = StdRng::seed_from_u64(21);
        let mut freqs0 = Vec::with_capacity(trials);
        for _ in 0..trials {
            let counts = sample_counts(&d, n_records, &mut rng);
            freqs0.push(counts[0] as f64 / n_records as f64);
        }
        let mean: f64 = freqs0.iter().sum::<f64>() / trials as f64;
        let var: f64 = freqs0.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / trials as f64;
        let expected = frequency_variance(&d, 0, n_records).unwrap();
        assert!(
            (var - expected).abs() < expected * 0.15,
            "empirical {var} vs formula {expected}"
        );
    }

    #[test]
    fn sample_counts_total_is_preserved() {
        let d = dist();
        let mut rng = StdRng::seed_from_u64(5);
        let counts = sample_counts(&d, 1234, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), 1234);
        assert_eq!(counts.len(), 3);
    }
}
