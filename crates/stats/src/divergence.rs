//! Divergences and distances between categorical distributions.
//!
//! Utility in the paper is measured by the mean squared error between the
//! reconstructed and the true distribution; the additional divergences here
//! (total variation, KL, chi-square, Hellinger) are used by the extended
//! experiments and the mining integration tests to characterize
//! reconstruction quality from several angles.

use crate::categorical::Categorical;
use crate::error::{Result, StatsError};

fn check_support(p: &Categorical, q: &Categorical) -> Result<()> {
    if p.num_categories() != q.num_categories() {
        return Err(StatsError::SupportMismatch {
            left: p.num_categories(),
            right: q.num_categories(),
        });
    }
    Ok(())
}

/// Mean squared error between two distributions:
/// `(1/n) Σ_i (p_i - q_i)²` — the per-category average used by Eq. (10).
pub fn mean_squared_error(p: &Categorical, q: &Categorical) -> Result<f64> {
    check_support(p, q)?;
    let n = p.num_categories() as f64;
    Ok(p.probs()
        .iter()
        .zip(q.probs().iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / n)
}

/// Total-variation distance `0.5 Σ_i |p_i - q_i|` in `[0, 1]`.
pub fn total_variation(p: &Categorical, q: &Categorical) -> Result<f64> {
    check_support(p, q)?;
    Ok(0.5
        * p.probs()
            .iter()
            .zip(q.probs().iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>())
}

/// Kullback–Leibler divergence `Σ_i p_i ln(p_i / q_i)` in nats.
///
/// Categories where `p_i = 0` contribute 0. Returns infinity when `p` puts
/// mass where `q` has none (absolute-continuity violation).
pub fn kl_divergence(p: &Categorical, q: &Categorical) -> Result<f64> {
    check_support(p, q)?;
    let mut acc = 0.0;
    for (a, b) in p.probs().iter().zip(q.probs().iter()) {
        if *a == 0.0 {
            continue;
        }
        if *b == 0.0 {
            return Ok(f64::INFINITY);
        }
        acc += a * (a / b).ln();
    }
    Ok(acc.max(0.0))
}

/// Pearson chi-square divergence `Σ_i (p_i - q_i)² / q_i`.
///
/// Categories where `q_i = 0` and `p_i > 0` yield infinity; where both are
/// zero they contribute 0.
pub fn chi_square(p: &Categorical, q: &Categorical) -> Result<f64> {
    check_support(p, q)?;
    let mut acc = 0.0;
    for (a, b) in p.probs().iter().zip(q.probs().iter()) {
        if *b == 0.0 {
            if *a > 0.0 {
                return Ok(f64::INFINITY);
            }
            continue;
        }
        acc += (a - b) * (a - b) / b;
    }
    Ok(acc)
}

/// Hellinger distance `sqrt(0.5 Σ_i (sqrt(p_i) - sqrt(q_i))²)` in `[0, 1]`.
pub fn hellinger(p: &Categorical, q: &Categorical) -> Result<f64> {
    check_support(p, q)?;
    let s: f64 = p
        .probs()
        .iter()
        .zip(q.probs().iter())
        .map(|(a, b)| {
            let d = a.sqrt() - b.sqrt();
            d * d
        })
        .sum();
    Ok((0.5 * s).sqrt().min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(p: &[f64]) -> Categorical {
        Categorical::new(p.to_vec()).unwrap()
    }

    #[test]
    fn all_divergences_are_zero_for_identical_distributions() {
        let p = dist(&[0.2, 0.3, 0.5]);
        assert_eq!(mean_squared_error(&p, &p).unwrap(), 0.0);
        assert_eq!(total_variation(&p, &p).unwrap(), 0.0);
        assert!(kl_divergence(&p, &p).unwrap().abs() < 1e-15);
        assert_eq!(chi_square(&p, &p).unwrap(), 0.0);
        assert_eq!(hellinger(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn support_mismatch_is_rejected_everywhere() {
        let p = dist(&[0.5, 0.5]);
        let q = dist(&[0.2, 0.3, 0.5]);
        assert!(mean_squared_error(&p, &q).is_err());
        assert!(total_variation(&p, &q).is_err());
        assert!(kl_divergence(&p, &q).is_err());
        assert!(chi_square(&p, &q).is_err());
        assert!(hellinger(&p, &q).is_err());
    }

    #[test]
    fn mse_known_value() {
        let p = dist(&[0.5, 0.5]);
        let q = dist(&[0.9, 0.1]);
        assert!((mean_squared_error(&p, &q).unwrap() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn total_variation_known_value_and_symmetry() {
        let p = dist(&[0.5, 0.5]);
        let q = dist(&[0.9, 0.1]);
        let d1 = total_variation(&p, &q).unwrap();
        let d2 = total_variation(&q, &p).unwrap();
        assert!((d1 - 0.4).abs() < 1e-12);
        assert!((d1 - d2).abs() < 1e-15);
    }

    #[test]
    fn kl_known_value_and_asymmetry() {
        let p = dist(&[0.75, 0.25]);
        let q = dist(&[0.5, 0.5]);
        let expected = 0.75 * (0.75f64 / 0.5).ln() + 0.25 * (0.25f64 / 0.5).ln();
        assert!((kl_divergence(&p, &q).unwrap() - expected).abs() < 1e-12);
        assert!((kl_divergence(&p, &q).unwrap() - kl_divergence(&q, &p).unwrap()).abs() > 1e-3);
    }

    #[test]
    fn kl_handles_zeros() {
        let p = dist(&[1.0, 0.0]);
        let q = dist(&[0.5, 0.5]);
        assert!(kl_divergence(&p, &q).unwrap().is_finite());
        // p puts mass where q has none -> infinite divergence.
        let q0 = dist(&[0.0, 1.0]);
        assert!(kl_divergence(&p, &q0).unwrap().is_infinite());
    }

    #[test]
    fn chi_square_known_value_and_zero_handling() {
        let p = dist(&[0.6, 0.4]);
        let q = dist(&[0.5, 0.5]);
        let expected = (0.1f64 * 0.1) / 0.5 + (0.1f64 * 0.1) / 0.5;
        assert!((chi_square(&p, &q).unwrap() - expected).abs() < 1e-12);

        let q0 = dist(&[1.0, 0.0]);
        assert!(chi_square(&p, &q0).unwrap().is_infinite());
        let p0 = dist(&[1.0, 0.0]);
        assert_eq!(chi_square(&p0, &q0).unwrap(), 0.0);
    }

    #[test]
    fn hellinger_is_bounded_and_maximal_for_disjoint_support() {
        let p = dist(&[1.0, 0.0]);
        let q = dist(&[0.0, 1.0]);
        assert!((hellinger(&p, &q).unwrap() - 1.0).abs() < 1e-12);
        let r = dist(&[0.5, 0.5]);
        let h = hellinger(&p, &r).unwrap();
        assert!(h > 0.0 && h < 1.0);
    }

    #[test]
    fn divergences_increase_with_separation() {
        let base = dist(&[0.25, 0.25, 0.25, 0.25]);
        let near = dist(&[0.3, 0.25, 0.25, 0.2]);
        let far = dist(&[0.7, 0.1, 0.1, 0.1]);
        assert!(
            mean_squared_error(&base, &far).unwrap() > mean_squared_error(&base, &near).unwrap()
        );
        assert!(total_variation(&base, &far).unwrap() > total_variation(&base, &near).unwrap());
        assert!(kl_divergence(&base, &far).unwrap() > kl_divergence(&base, &near).unwrap());
        assert!(chi_square(&base, &far).unwrap() > chi_square(&base, &near).unwrap());
        assert!(hellinger(&base, &far).unwrap() > hellinger(&base, &near).unwrap());
    }
}
