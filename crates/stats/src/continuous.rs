//! Continuous probability distributions (density, CDF, moments) used as
//! *sources* for the synthetic categorical workloads of the paper's
//! evaluation (Section VI): normal, gamma, exponential, and continuous
//! uniform.
//!
//! Samplers live in [`crate::sampler`]; this module holds the analytic side
//! (pdf / cdf / quantile helpers) so that discretization can be done either
//! from analytic mass (exact bin probabilities) or from samples.

use crate::error::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A continuous distribution with a density and a CDF.
pub trait ContinuousDistribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Mean of the distribution.
    fn mean(&self) -> f64;
    /// Variance of the distribution.
    fn variance(&self) -> f64;
    /// A range `[lo, hi]` containing essentially all probability mass
    /// (used as the default discretization window).
    fn support_window(&self) -> (f64, f64);
}

/// Normal (Gaussian) distribution `N(mu, sigma^2)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation (must be positive).
    pub sigma: f64,
}

impl Normal {
    /// Creates a normal distribution, validating `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !(sigma > 0.0) || !sigma.is_finite() || !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be finite and positive",
            });
        }
        Ok(Self { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mu: 0.0,
            sigma: 1.0,
        }
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26), accurate to
/// about 1.5e-7 — ample for building discretized workloads.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        0.5 * (1.0 + erf((x - self.mu) / (self.sigma * std::f64::consts::SQRT_2)))
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn support_window(&self) -> (f64, f64) {
        (self.mu - 4.0 * self.sigma, self.mu + 4.0 * self.sigma)
    }
}

/// Gamma distribution with shape `alpha` and scale `beta`
/// (mean `alpha * beta`), matching the parameterization used in the paper's
/// Figure 5(a) (`alpha = 1.0`, `beta = 2.0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    /// Shape parameter (must be positive).
    pub alpha: f64,
    /// Scale parameter (must be positive).
    pub beta: f64,
}

impl Gamma {
    /// Creates a gamma distribution, validating both parameters.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be finite and positive",
            });
        }
        if !(beta > 0.0) || !beta.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "beta",
                value: beta,
                constraint: "must be finite and positive",
            });
        }
        Ok(Self { alpha, beta })
    }
}

/// Natural log of the gamma function via the Lanczos approximation.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`, via the series
/// expansion for `x < a + 1` and the continued fraction otherwise.
pub fn regularized_lower_gamma(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        // Continued fraction for the upper function, then complement.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let upper = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        1.0 - upper
    }
}

impl ContinuousDistribution for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Density at 0 for alpha < 1 diverges; for alpha == 1 it is 1/beta.
            return if self.alpha < 1.0 {
                f64::INFINITY
            } else if self.alpha == 1.0 {
                1.0 / self.beta
            } else {
                0.0
            };
        }
        let a = self.alpha;
        let b = self.beta;
        ((a - 1.0) * x.ln() - x / b - ln_gamma(a) - a * b.ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            regularized_lower_gamma(self.alpha, x / self.beta).clamp(0.0, 1.0)
        }
    }

    fn mean(&self) -> f64 {
        self.alpha * self.beta
    }

    fn variance(&self) -> f64 {
        self.alpha * self.beta * self.beta
    }

    fn support_window(&self) -> (f64, f64) {
        (0.0, self.mean() + 6.0 * self.variance().sqrt())
    }
}

/// Exponential distribution with rate `lambda` (a Gamma with `alpha = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    /// Rate parameter (must be positive).
    pub lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution, validating `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "lambda",
                value: lambda,
                constraint: "must be finite and positive",
            });
        }
        Ok(Self { lambda })
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }

    fn support_window(&self) -> (f64, f64) {
        (0.0, 8.0 / self.lambda)
    }
}

/// Continuous uniform distribution on `[a, b]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    /// Lower bound.
    pub a: f64,
    /// Upper bound (must exceed the lower bound).
    pub b: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[a, b]`, validating `a < b`.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if !(a < b) || !a.is_finite() || !b.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "b",
                value: b,
                constraint: "bounds must be finite with a < b",
            });
        }
        Ok(Self { a, b })
    }
}

impl ContinuousDistribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.a || x > self.b {
            0.0
        } else {
            1.0 / (self.b - self.a)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.a {
            0.0
        } else if x >= self.b {
            1.0
        } else {
            (x - self.a) / (self.b - self.a)
        }
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn variance(&self) -> f64 {
        (self.b - self.a) * (self.b - self.a) / 12.0
    }

    fn support_window(&self) -> (f64, f64) {
        (self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn normal_validation() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn standard_normal_moments_and_pdf() {
        let n = Normal::standard();
        assert_eq!(n.mean(), 0.0);
        assert_eq!(n.variance(), 1.0);
        assert_close(n.pdf(0.0), 0.398942, 1e-5);
        assert_close(n.cdf(0.0), 0.5, 1e-7);
        assert_close(n.cdf(1.96), 0.975, 1e-3);
        assert_close(n.cdf(-1.96), 0.025, 1e-3);
        let (lo, hi) = n.support_window();
        assert!(lo < -3.9 && hi > 3.9);
    }

    #[test]
    fn erf_reference_values() {
        assert_close(erf(0.0), 0.0, 1e-8);
        assert_close(erf(1.0), 0.842700, 2e-6);
        assert_close(erf(-1.0), -0.842700, 2e-6);
        assert_close(erf(2.0), 0.995322, 2e-6);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Gamma(1) = 1, Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
        assert_close(ln_gamma(1.0), 0.0, 1e-10);
        assert_close(ln_gamma(2.0), 0.0, 1e-10);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-9);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-9);
    }

    #[test]
    fn gamma_validation_and_moments() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        let g = Gamma::new(1.0, 2.0).unwrap();
        assert_eq!(g.mean(), 2.0);
        assert_eq!(g.variance(), 4.0);
    }

    #[test]
    fn gamma_alpha_one_matches_exponential() {
        // Gamma(alpha=1, beta) is Exponential(rate = 1/beta).
        let g = Gamma::new(1.0, 2.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert_close(g.pdf(x), e.pdf(x), 1e-9);
            assert_close(g.cdf(x), e.cdf(x), 1e-9);
        }
        assert_close(g.pdf(0.0), 0.5, 1e-12);
    }

    #[test]
    fn gamma_cdf_reference_values() {
        // For Gamma(shape=2, scale=1): CDF(x) = 1 - e^{-x}(1+x).
        let g = Gamma::new(2.0, 1.0).unwrap();
        for &x in &[0.5f64, 1.0, 2.0, 4.0] {
            let expected = 1.0 - (-x).exp() * (1.0 + x);
            assert_close(g.cdf(x), expected, 1e-8);
        }
        assert_eq!(g.cdf(-1.0), 0.0);
        assert_eq!(g.cdf(0.0), 0.0);
        assert_eq!(g.pdf(-1.0), 0.0);
        assert_eq!(g.pdf(0.0), 0.0);
    }

    #[test]
    fn gamma_pdf_alpha_below_one_diverges_at_zero() {
        let g = Gamma::new(0.5, 1.0).unwrap();
        assert!(g.pdf(0.0).is_infinite());
    }

    #[test]
    fn gamma_cdf_is_monotone_and_bounded() {
        let g = Gamma::new(3.0, 1.5).unwrap();
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.3;
            let c = g.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        // Essentially all mass inside the support window.
        let (_, hi) = g.support_window();
        assert!(g.cdf(hi) > 0.995);
    }

    #[test]
    fn exponential_validation_and_shape() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-2.0).is_err());
        let e = Exponential::new(2.0).unwrap();
        assert_close(e.mean(), 0.5, 1e-12);
        assert_close(e.variance(), 0.25, 1e-12);
        assert_close(e.cdf(e.mean()), 1.0 - (-1.0f64).exp(), 1e-12);
        assert_eq!(e.pdf(-1.0), 0.0);
        assert_eq!(e.cdf(-1.0), 0.0);
        let (lo, hi) = e.support_window();
        assert_eq!(lo, 0.0);
        assert!(e.cdf(hi) > 0.999);
    }

    #[test]
    fn uniform_validation_and_shape() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        let u = Uniform::new(-1.0, 3.0).unwrap();
        assert_close(u.mean(), 1.0, 1e-12);
        assert_close(u.variance(), 16.0 / 12.0, 1e-12);
        assert_eq!(u.pdf(-2.0), 0.0);
        assert_close(u.pdf(0.0), 0.25, 1e-12);
        assert_eq!(u.cdf(-2.0), 0.0);
        assert_eq!(u.cdf(5.0), 1.0);
        assert_close(u.cdf(1.0), 0.5, 1e-12);
        assert_eq!(u.support_window(), (-1.0, 3.0));
    }

    #[test]
    fn regularized_lower_gamma_edge_cases() {
        assert_eq!(regularized_lower_gamma(2.0, 0.0), 0.0);
        assert_eq!(regularized_lower_gamma(2.0, -1.0), 0.0);
        // P(1, x) = 1 - e^-x.
        assert_close(
            regularized_lower_gamma(1.0, 1.0),
            1.0 - (-1.0f64).exp(),
            1e-10,
        );
        // Large x saturates to 1.
        assert_close(regularized_lower_gamma(2.0, 100.0), 1.0, 1e-9);
    }
}
