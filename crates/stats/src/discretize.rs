//! Discretization of continuous distributions and continuous samples into a
//! fixed number of categories.
//!
//! The paper's synthetic workloads (Section VI.C) draw 10,000 records whose
//! category probabilities "follow a specific distribution" (normal, gamma,
//! discrete uniform). We support two ways to obtain such category
//! distributions:
//!
//! * **Analytic binning** — partition the distribution's support window into
//!   `n` equal-width bins and take each bin's probability mass from the CDF.
//! * **Sample binning** — draw continuous samples and histogram them into
//!   `n` equal-width bins (this is what one would do with a real continuous
//!   attribute such as Adult's `age`).

use crate::categorical::Categorical;
use crate::continuous::ContinuousDistribution;
use crate::error::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// An equal-width binning of the interval `[lo, hi]` into `n` bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EqualWidthBins {
    lo: f64,
    hi: f64,
    n: usize,
}

impl EqualWidthBins {
    /// Creates a binning of `[lo, hi]` into `n` bins.
    pub fn new(lo: f64, hi: f64, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InvalidParameter {
                name: "n",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
                constraint: "bounds must be finite with lo < hi",
            });
        }
        Ok(Self { lo, hi, n })
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.n
    }

    /// Lower bound of the binned interval.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the binned interval.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of each bin.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.n as f64
    }

    /// The `[lo, hi)` edges of bin `i` (the last bin is closed on the right).
    pub fn edges(&self, i: usize) -> Result<(f64, f64)> {
        if i >= self.n {
            return Err(StatsError::InvalidParameter {
                name: "i",
                value: i as f64,
                constraint: "must be < number of bins",
            });
        }
        let w = self.width();
        Ok((self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w))
    }

    /// Midpoint of bin `i`.
    pub fn midpoint(&self, i: usize) -> Result<f64> {
        let (a, b) = self.edges(i)?;
        Ok(0.5 * (a + b))
    }

    /// Maps a value to its bin index; values outside the interval clamp to
    /// the first or last bin (the standard treatment for tail mass).
    pub fn bin_of(&self, x: f64) -> usize {
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return self.n - 1;
        }
        let idx = ((x - self.lo) / self.width()).floor() as usize;
        idx.min(self.n - 1)
    }
}

/// Discretizes a continuous distribution into `n` categories by analytic
/// binning over its support window, assigning any tail mass outside the
/// window to the first and last bins.
pub fn discretize_distribution<D: ContinuousDistribution>(
    dist: &D,
    n: usize,
) -> Result<Categorical> {
    let (lo, hi) = dist.support_window();
    discretize_distribution_over(dist, n, lo, hi)
}

/// Discretizes a continuous distribution into `n` categories over an
/// explicit interval `[lo, hi]`.
pub fn discretize_distribution_over<D: ContinuousDistribution>(
    dist: &D,
    n: usize,
    lo: f64,
    hi: f64,
) -> Result<Categorical> {
    let bins = EqualWidthBins::new(lo, hi, n)?;
    let mut probs = Vec::with_capacity(n);
    for i in 0..n {
        let (a, b) = bins.edges(i)?;
        let mut mass = dist.cdf(b) - dist.cdf(a);
        if i == 0 {
            mass += dist.cdf(a); // left tail
        }
        if i == n - 1 {
            mass += 1.0 - dist.cdf(b); // right tail
        }
        probs.push(mass.max(0.0));
    }
    // Numerical slack: renormalize exactly.
    let total: f64 = probs.iter().sum();
    if total <= 0.0 {
        return Err(StatsError::InvalidDistribution {
            reason: "distribution has no mass in window",
        });
    }
    Categorical::new(probs.into_iter().map(|p| p / total).collect())
}

/// Histograms continuous samples into `n` equal-width bins spanning the
/// sample range, returning the resulting empirical categorical distribution
/// together with the binning used.
pub fn discretize_samples(samples: &[f64], n: usize) -> Result<(Categorical, EqualWidthBins)> {
    if samples.is_empty() {
        return Err(StatsError::EmptyData);
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::InvalidDistribution {
            reason: "non-finite sample",
        });
    }
    let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // Degenerate case: all samples identical — widen the interval slightly.
    let (lo, hi) = if lo == hi {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    };
    let bins = EqualWidthBins::new(lo, hi, n)?;
    let mut counts = vec![0u64; n];
    for &x in samples {
        counts[bins.bin_of(x)] += 1;
    }
    Ok((Categorical::from_counts(&counts)?, bins))
}

/// Maps each continuous sample to its category index under the supplied
/// binning — the per-record discretization used to turn a continuous
/// attribute (e.g. Adult's `age`) into categorical data before applying RR.
pub fn assign_bins(samples: &[f64], bins: &EqualWidthBins) -> Vec<usize> {
    samples.iter().map(|&x| bins.bin_of(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{Gamma, Normal, Uniform};

    #[test]
    fn bins_validation() {
        assert!(EqualWidthBins::new(0.0, 1.0, 0).is_err());
        assert!(EqualWidthBins::new(1.0, 1.0, 3).is_err());
        assert!(EqualWidthBins::new(2.0, 1.0, 3).is_err());
        assert!(EqualWidthBins::new(f64::NAN, 1.0, 3).is_err());
        assert!(EqualWidthBins::new(0.0, 1.0, 3).is_ok());
    }

    #[test]
    fn bins_geometry() {
        let b = EqualWidthBins::new(0.0, 10.0, 5).unwrap();
        assert_eq!(b.num_bins(), 5);
        assert_eq!(b.lo(), 0.0);
        assert_eq!(b.hi(), 10.0);
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.edges(0).unwrap(), (0.0, 2.0));
        assert_eq!(b.edges(4).unwrap(), (8.0, 10.0));
        assert!(b.edges(5).is_err());
        assert_eq!(b.midpoint(1).unwrap(), 3.0);
    }

    #[test]
    fn bin_of_clamps_out_of_range() {
        let b = EqualWidthBins::new(0.0, 10.0, 5).unwrap();
        assert_eq!(b.bin_of(-3.0), 0);
        assert_eq!(b.bin_of(0.0), 0);
        assert_eq!(b.bin_of(1.9), 0);
        assert_eq!(b.bin_of(2.0), 1);
        assert_eq!(b.bin_of(9.999), 4);
        assert_eq!(b.bin_of(10.0), 4);
        assert_eq!(b.bin_of(42.0), 4);
    }

    #[test]
    fn discretized_normal_is_symmetric_and_unimodal() {
        let d = discretize_distribution(&Normal::new(0.0, 1.0).unwrap(), 10).unwrap();
        assert_eq!(d.num_categories(), 10);
        // Symmetric: bin i and bin n-1-i carry the same mass.
        for i in 0..5 {
            assert!(
                (d.prob(i) - d.prob(9 - i)).abs() < 1e-6,
                "bin {i} vs {}",
                9 - i
            );
        }
        // Unimodal: central bins carry the most mass.
        assert!(d.prob(4) > d.prob(0));
        assert!(d.prob(5) > d.prob(9));
    }

    #[test]
    fn discretized_uniform_is_flat() {
        let d = discretize_distribution(&Uniform::new(0.0, 1.0).unwrap(), 10).unwrap();
        for i in 0..10 {
            assert!((d.prob(i) - 0.1).abs() < 1e-9, "bin {i} = {}", d.prob(i));
        }
    }

    #[test]
    fn discretized_gamma_is_right_skewed() {
        // The paper's gamma(1, 2) workload: mass concentrated in the low bins.
        let d = discretize_distribution(&Gamma::new(1.0, 2.0).unwrap(), 10).unwrap();
        assert!(d.prob(0) > d.prob(1));
        assert!(d.prob(1) > d.prob(3));
        assert!(d.prob(0) > 0.3);
        let total: f64 = d.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_window_discretization_collects_tail_mass() {
        let n = Normal::new(0.0, 1.0).unwrap();
        // A window covering only one standard deviation either side: the
        // first and last bins absorb the tails so mass still sums to one.
        let d = discretize_distribution_over(&n, 4, -1.0, 1.0).unwrap();
        let total: f64 = d.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(d.prob(0) > 0.2); // left tail + first bin
    }

    #[test]
    fn discretize_samples_roundtrip() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let (d, bins) = discretize_samples(&samples, 10).unwrap();
        assert_eq!(bins.num_bins(), 10);
        for i in 0..10 {
            assert!((d.prob(i) - 0.1).abs() < 1e-9);
        }
        let assigned = assign_bins(&samples, &bins);
        assert_eq!(assigned.len(), samples.len());
        assert!(assigned.iter().all(|&b| b < 10));
    }

    #[test]
    fn discretize_samples_validation() {
        assert!(discretize_samples(&[], 5).is_err());
        assert!(discretize_samples(&[1.0, f64::NAN], 5).is_err());
        // Constant samples still work (interval widened around the value).
        let (d, bins) = discretize_samples(&[2.0; 50], 4).unwrap();
        assert_eq!(d.num_categories(), 4);
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(bins.lo() < 2.0 && bins.hi() > 2.0);
    }

    #[test]
    fn discretize_distribution_zero_bins_rejected() {
        assert!(discretize_distribution(&Normal::standard(), 0).is_err());
    }
}
