//! Descriptive statistics over samples of `f64`.
//!
//! Used by the experiment harness to summarize Pareto-front series (privacy
//! ranges covered, MSE quantiles at matched privacy levels) and by the
//! bench reports in EXPERIMENTS.md.

use crate::error::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A one-pass summary of a sample: count, mean, variance, extremes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population variance (divides by `count`).
    pub variance: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a non-empty sample.
    pub fn of(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::EmptyData);
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::InvalidDistribution {
                reason: "non-finite sample",
            });
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Self {
            count,
            mean,
            variance,
            min,
            max,
        })
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Range (max - min).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of the sample using linear
/// interpolation between order statistics.
pub fn quantile(samples: &[f64], q: f64) -> Result<f64> {
    if samples.is_empty() {
        return Err(StatsError::EmptyData);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            value: q,
            constraint: "must be in [0, 1]",
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median shorthand.
pub fn median(samples: &[f64]) -> Result<f64> {
    quantile(samples, 0.5)
}

/// Pearson correlation coefficient between two equal-length samples.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.is_empty() || ys.is_empty() {
        return Err(StatsError::EmptyData);
    }
    if xs.len() != ys.len() {
        return Err(StatsError::SupportMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let sx = Summary::of(xs)?;
    let sy = Summary::of(ys)?;
    if sx.variance == 0.0 || sy.variance == 0.0 {
        return Err(StatsError::InvalidDistribution {
            reason: "zero variance",
        });
    }
    let cov = xs
        .iter()
        .zip(ys.iter())
        .map(|(x, y)| (x - sx.mean) * (y - sy.mean))
        .sum::<f64>()
        / xs.len() as f64;
    Ok(cov / (sx.std_dev() * sy.std_dev()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.range(), 7.0);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::of(&[]).is_err());
        assert!(Summary::of(&[1.0, f64::NAN]).is_err());
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 5.0);
        assert_eq!(median(&xs).unwrap(), 3.0);
        assert_eq!(quantile(&xs, 0.25).unwrap(), 2.0);
        // Interpolated quantile on an even-length sample.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn correlation_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert!(correlation(&xs, &[1.0, 1.0, 1.0, 1.0]).is_err());
        assert!(correlation(&xs, &ys[..2]).is_err());
        assert!(correlation(&[], &[]).is_err());
    }
}
