//! # optrr-stats
//!
//! Statistics substrate for the OptRR reproduction (Huang & Du, ICDE 2008).
//!
//! The paper's workloads are single-attribute categorical data sets whose
//! category probabilities follow normal, gamma, or uniform distributions
//! (Section VI.C), and both its privacy and utility metrics are estimation
//! quantities built from categorical distributions and multinomial counts.
//! This crate provides those building blocks, implemented from scratch on
//! top of `rand`'s uniform source:
//!
//! * [`Categorical`] — finite discrete distributions with sampling,
//!   entropy, Bayes pointwise products, and mode/argmax helpers.
//! * [`continuous`] — analytic normal / gamma / exponential / uniform
//!   distributions (pdf, cdf, moments) with an `erf` and incomplete-gamma
//!   implementation.
//! * [`sampler`] — Box–Muller, Marsaglia–Tsang, inversion, and Zipf
//!   samplers.
//! * [`discretize`] — equal-width binning of continuous distributions and
//!   samples into `n` categories (the workload construction of §VI).
//! * [`Histogram`] — category counts and empirical distributions (the MLE
//!   `N_i / N` of Theorem 1).
//! * [`CountSet`] — mergeable batch accumulators of categorical response
//!   counts (the substrate of the streaming ingest pipeline).
//! * [`multinomial`] — `Var(N_i/N)` and `Cov(N_i/N, N_j/N)` (Theorem 6).
//! * [`divergence`] — MSE, total variation, KL, chi-square, Hellinger.
//! * [`summary`] — descriptive statistics for experiment reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Negated comparisons like `!(x > 0.0)` are deliberate NaN-rejecting
// guards, and a few index loops walk several parallel arrays at once.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod categorical;
pub mod continuous;
pub mod counts;
pub mod discretize;
pub mod divergence;
pub mod error;
pub mod histogram;
pub mod multinomial;
pub mod sampler;
pub mod summary;

pub use categorical::{Categorical, PROBABILITY_TOLERANCE};
pub use continuous::{ContinuousDistribution, Exponential, Gamma, Normal, Uniform};
pub use counts::CountSet;
pub use discretize::{
    assign_bins, discretize_distribution, discretize_distribution_over, discretize_samples,
    EqualWidthBins,
};
pub use error::{Result, StatsError};
pub use histogram::Histogram;
pub use sampler::{Sampler, Zipf};
pub use summary::{correlation, median, quantile, Summary};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probability_vec() -> impl Strategy<Value = Vec<f64>> {
        (2usize..=12).prop_flat_map(|n| {
            proptest::collection::vec(0.01f64..1.0, n).prop_map(|raw| {
                let s: f64 = raw.iter().sum();
                raw.into_iter().map(|x| x / s).collect()
            })
        })
    }

    proptest! {
        #[test]
        fn categorical_round_trip(probs in probability_vec()) {
            let d = Categorical::new(probs.clone()).unwrap();
            prop_assert_eq!(d.num_categories(), probs.len());
            let total: f64 = d.probs().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(d.max_prob() <= 1.0 + 1e-12);
            prop_assert!(d.entropy() >= -1e-12);
            prop_assert!(d.entropy() <= (probs.len() as f64).ln() + 1e-9);
        }

        #[test]
        fn empirical_distribution_converges(probs in probability_vec(), seed in 0u64..100) {
            let d = Categorical::new(probs).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let samples = d.sample_many(&mut rng, 20_000);
            let h = Histogram::from_observations(d.num_categories(), &samples).unwrap();
            let emp = h.empirical_distribution().unwrap();
            // Convergence within a loose tolerance per category.
            for i in 0..d.num_categories() {
                prop_assert!((emp.prob(i) - d.prob(i)).abs() < 0.03);
            }
        }

        #[test]
        fn divergences_are_nonnegative(p in probability_vec(), q in probability_vec()) {
            let n = p.len().min(q.len());
            let renorm = |v: &[f64]| {
                let s: f64 = v[..n].iter().sum();
                Categorical::new(v[..n].iter().map(|x| x / s).collect()).unwrap()
            };
            let (p, q) = (renorm(&p), renorm(&q));
            prop_assert!(divergence::mean_squared_error(&p, &q).unwrap() >= 0.0);
            prop_assert!(divergence::total_variation(&p, &q).unwrap() >= 0.0);
            prop_assert!(divergence::kl_divergence(&p, &q).unwrap() >= -1e-12);
            prop_assert!(divergence::chi_square(&p, &q).unwrap() >= 0.0);
            prop_assert!(divergence::hellinger(&p, &q).unwrap() >= 0.0);
        }

        #[test]
        fn pinsker_inequality_holds(p in probability_vec(), q in probability_vec()) {
            // TV(p, q)^2 <= KL(p || q) / 2 — a sanity relation tying the
            // divergence implementations together.
            let n = p.len().min(q.len());
            let renorm = |v: &[f64]| {
                let s: f64 = v[..n].iter().sum();
                Categorical::new(v[..n].iter().map(|x| x / s).collect()).unwrap()
            };
            let (p, q) = (renorm(&p), renorm(&q));
            let tv = divergence::total_variation(&p, &q).unwrap();
            let kl = divergence::kl_divergence(&p, &q).unwrap();
            prop_assert!(tv * tv <= kl / 2.0 + 1e-9);
        }

        #[test]
        fn discretized_distribution_is_valid(n in 2usize..=20, mu in -5.0f64..5.0, sigma in 0.1f64..3.0) {
            let d = discretize_distribution(&Normal::new(mu, sigma).unwrap(), n).unwrap();
            prop_assert_eq!(d.num_categories(), n);
            let total: f64 = d.probs().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn quantiles_are_monotone(mut xs in proptest::collection::vec(-100.0f64..100.0, 3..50)) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q25 = quantile(&xs, 0.25).unwrap();
            let q50 = quantile(&xs, 0.50).unwrap();
            let q75 = quantile(&xs, 0.75).unwrap();
            prop_assert!(q25 <= q50 + 1e-12);
            prop_assert!(q50 <= q75 + 1e-12);
            prop_assert!(*xs.first().unwrap() <= q25 + 1e-12);
            prop_assert!(q75 <= *xs.last().unwrap() + 1e-12);
        }
    }
}
