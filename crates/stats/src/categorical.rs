//! Categorical (discrete) distributions over a finite domain
//! `C = {c_0, ..., c_{n-1}}`.
//!
//! The OptRR paper works with single-attribute categorical data; both the
//! original-data distribution `P(X)` and the disguised-data distribution
//! `P(Y)` are values of this type.

use crate::error::{Result, StatsError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tolerance used when validating that probabilities sum to one.
pub const PROBABILITY_TOLERANCE: f64 = 1e-9;

/// A probability distribution over `n` categories, indexed `0..n`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Categorical {
    probs: Vec<f64>,
    /// Cumulative distribution, cached for O(log n) sampling.
    cdf: Vec<f64>,
}

impl Categorical {
    /// Builds a distribution from the given probabilities.
    ///
    /// The probabilities must be non-negative, non-empty, and sum to one
    /// within [`PROBABILITY_TOLERANCE`].
    pub fn new(probs: Vec<f64>) -> Result<Self> {
        if probs.is_empty() {
            return Err(StatsError::InvalidDistribution {
                reason: "no categories",
            });
        }
        if probs.iter().any(|p| !p.is_finite()) {
            return Err(StatsError::InvalidDistribution {
                reason: "non-finite probability",
            });
        }
        if probs.iter().any(|&p| p < -PROBABILITY_TOLERANCE) {
            return Err(StatsError::InvalidDistribution {
                reason: "negative probability",
            });
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(StatsError::InvalidDistribution {
                reason: "probabilities do not sum to 1",
            });
        }
        // Clamp tiny negatives and renormalize exactly so the cached CDF ends at 1.
        let clipped: Vec<f64> = probs.iter().map(|&p| p.max(0.0)).collect();
        let s: f64 = clipped.iter().sum();
        let probs: Vec<f64> = clipped.into_iter().map(|p| p / s).collect();
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { probs, cdf })
    }

    /// Builds a distribution from unnormalized non-negative weights.
    pub fn from_weights(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(StatsError::InvalidDistribution {
                reason: "no categories",
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(StatsError::InvalidDistribution {
                reason: "weights must be finite and non-negative",
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::InvalidDistribution {
                reason: "weights sum to zero",
            });
        }
        Self::new(weights.iter().map(|w| w / total).collect())
    }

    /// Builds a distribution from observed category counts.
    pub fn from_counts(counts: &[u64]) -> Result<Self> {
        let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Self::from_weights(&weights)
    }

    /// The uniform distribution over `n` categories.
    pub fn uniform(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InvalidDistribution {
                reason: "no categories",
            });
        }
        Self::new(vec![1.0 / n as f64; n])
    }

    /// A point mass on category `i` of a domain with `n` categories.
    pub fn point_mass(n: usize, i: usize) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InvalidDistribution {
                reason: "no categories",
            });
        }
        if i >= n {
            return Err(StatsError::InvalidParameter {
                name: "i",
                value: i as f64,
                constraint: "must be < n",
            });
        }
        let mut probs = vec![0.0; n];
        probs[i] = 1.0;
        Self::new(probs)
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.probs.len()
    }

    /// Probability of category `i` (0.0 when out of range).
    pub fn prob(&self, i: usize) -> f64 {
        self.probs.get(i).copied().unwrap_or(0.0)
    }

    /// Borrow the probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The largest single-category probability, `max_X P(X)`.
    ///
    /// Theorem 5 of the paper shows the worst-case adversary accuracy bound
    /// `δ` can never be pushed below this value.
    pub fn max_prob(&self) -> f64 {
        self.probs.iter().copied().fold(0.0, f64::max)
    }

    /// Index of the most probable category (smallest index on ties).
    pub fn mode(&self) -> usize {
        let mut best = 0;
        for (i, &p) in self.probs.iter().enumerate() {
            if p > self.probs[best] {
                best = i;
            }
        }
        best
    }

    /// Shannon entropy in nats. `0 log 0` is taken as 0.
    pub fn entropy(&self) -> f64 {
        self.probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum()
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // Binary search in the cached CDF.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(idx) => (idx + 1).min(self.probs.len() - 1),
            Err(idx) => idx.min(self.probs.len() - 1),
        }
    }

    /// Draws `count` category indices.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Expected value of an arbitrary per-category score.
    pub fn expectation(&self, score: impl Fn(usize) -> f64) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p * score(i))
            .sum()
    }

    /// Returns a new distribution proportional to `self[i] * other[i]`
    /// (pointwise product, renormalized) — the Bayes-rule update used when
    /// computing posterior distributions `P(X | Y)`.
    pub fn pointwise_product(&self, other: &Categorical) -> Result<Categorical> {
        if self.num_categories() != other.num_categories() {
            return Err(StatsError::SupportMismatch {
                left: self.num_categories(),
                right: other.num_categories(),
            });
        }
        let weights: Vec<f64> = self
            .probs
            .iter()
            .zip(other.probs.iter())
            .map(|(a, b)| a * b)
            .collect();
        Categorical::from_weights(&weights)
    }

    /// True when the two distributions agree within `tol` on every category.
    pub fn approx_eq(&self, other: &Categorical, tol: f64) -> bool {
        self.num_categories() == other.num_categories()
            && self
                .probs
                .iter()
                .zip(other.probs.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Categorical::new(vec![]).is_err());
        assert!(Categorical::new(vec![0.5, 0.6]).is_err());
        assert!(Categorical::new(vec![-0.1, 1.1]).is_err());
        assert!(Categorical::new(vec![f64::NAN, 1.0]).is_err());
        assert!(Categorical::new(vec![0.25; 4]).is_ok());
    }

    #[test]
    fn from_weights_and_counts() {
        let d = Categorical::from_weights(&[2.0, 3.0, 5.0]).unwrap();
        assert!((d.prob(2) - 0.5).abs() < 1e-12);
        assert!(Categorical::from_weights(&[]).is_err());
        assert!(Categorical::from_weights(&[0.0, 0.0]).is_err());
        assert!(Categorical::from_weights(&[-1.0, 2.0]).is_err());

        let c = Categorical::from_counts(&[10, 30, 60]).unwrap();
        assert!((c.prob(2) - 0.6).abs() < 1e-12);
        assert!(Categorical::from_counts(&[0, 0]).is_err());
    }

    #[test]
    fn uniform_and_point_mass() {
        let u = Categorical::uniform(4).unwrap();
        assert_eq!(u.num_categories(), 4);
        assert!((u.prob(0) - 0.25).abs() < 1e-12);
        assert!((u.entropy() - (4.0f64).ln()).abs() < 1e-12);
        assert!(Categorical::uniform(0).is_err());

        let p = Categorical::point_mass(3, 1).unwrap();
        assert_eq!(p.mode(), 1);
        assert_eq!(p.max_prob(), 1.0);
        assert_eq!(p.entropy(), 0.0);
        assert!(Categorical::point_mass(3, 3).is_err());
        assert!(Categorical::point_mass(0, 0).is_err());
    }

    #[test]
    fn prob_out_of_range_is_zero() {
        let d = Categorical::uniform(3).unwrap();
        assert_eq!(d.prob(10), 0.0);
    }

    #[test]
    fn mode_and_max_prob() {
        let d = Categorical::new(vec![0.2, 0.5, 0.3]).unwrap();
        assert_eq!(d.mode(), 1);
        assert!((d.max_prob() - 0.5).abs() < 1e-12);
        // Tie goes to the smallest index.
        let t = Categorical::new(vec![0.4, 0.4, 0.2]).unwrap();
        assert_eq!(t.mode(), 0);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let u = Categorical::uniform(8).unwrap();
        let skew = Categorical::new(vec![0.9, 0.05, 0.01, 0.01, 0.01, 0.01, 0.005, 0.005]).unwrap();
        assert!(u.entropy() > skew.entropy());
    }

    #[test]
    fn sampling_matches_distribution() {
        let d = Categorical::new(vec![0.1, 0.2, 0.7]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples = d.sample_many(&mut rng, n);
        let mut counts = [0usize; 3];
        for s in samples {
            counts[s] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - d.prob(i)).abs() < 0.01,
                "category {i}: freq {freq} vs prob {}",
                d.prob(i)
            );
        }
    }

    #[test]
    fn sampling_point_mass_is_constant() {
        let d = Categorical::point_mass(5, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(d.sample_many(&mut rng, 100).iter().all(|&s| s == 3));
    }

    #[test]
    fn sampling_handles_zero_probability_categories() {
        let d = Categorical::new(vec![0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(d.sample_many(&mut rng, 100).iter().all(|&s| s == 1));
    }

    #[test]
    fn expectation_weights_scores() {
        let d = Categorical::new(vec![0.25, 0.75]).unwrap();
        let e = d.expectation(|i| if i == 1 { 4.0 } else { 0.0 });
        assert!((e - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pointwise_product_is_bayes_update() {
        let prior = Categorical::new(vec![0.5, 0.5]).unwrap();
        let likelihood = Categorical::new(vec![0.9, 0.1]).unwrap();
        let post = prior.pointwise_product(&likelihood).unwrap();
        assert!((post.prob(0) - 0.9).abs() < 1e-12);
        assert!(prior
            .pointwise_product(&Categorical::uniform(3).unwrap())
            .is_err());
    }

    #[test]
    fn approx_eq_compares_supports() {
        let a = Categorical::uniform(3).unwrap();
        let b = Categorical::new(vec![0.3334, 0.3333, 0.3333]).unwrap();
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-6));
        assert!(!a.approx_eq(&Categorical::uniform(4).unwrap(), 1.0));
    }

    #[test]
    fn tiny_negative_probabilities_are_clamped() {
        let d = Categorical::new(vec![1.0 + 1e-12, -1e-12]).unwrap();
        assert!(d.prob(1) >= 0.0);
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
