//! Mergeable response-count accumulators.
//!
//! A streaming pipeline collects disguised categorical responses in
//! batches: each batch is either a list of raw category indices or a
//! pre-counted per-category vector. A [`CountSet`] is the accumulator for
//! one such stream — category counts plus a batch counter — and its
//! central property is that accumulation is *commutative and associative*:
//! any partition of a batch stream across several `CountSet`s, merged back
//! through [`CountSet::merge`], is bitwise-identical to a single
//! accumulator fed the same batches in any order. That property is what
//! lets the serving layer shard ingest across disjoint locks (mirroring
//! the sharded Ω store) without ever changing the estimate computed from
//! the merged counts.

use crate::categorical::Categorical;
use crate::error::{Result, StatsError};
use crate::histogram::Histogram;
use serde::{Deserialize, Serialize};

/// Per-category response counts plus a batch counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountSet {
    counts: Vec<u64>,
    total: u64,
    batches: u64,
}

impl CountSet {
    /// Creates an empty count set over `n` categories.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InvalidParameter {
                name: "n",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        Ok(Self {
            counts: vec![0; n],
            total: 0,
            batches: 0,
        })
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.counts.len()
    }

    /// Borrow the per-category counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of category `i` (0 when out of range).
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Total responses accumulated.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of batches accumulated.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Whether no response has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Validates a raw-record batch against an `n`-category domain without
    /// touching any accumulator: non-empty, every record in-domain. The
    /// single gate shared by [`add_records`](CountSet::add_records) and by
    /// serving layers that must validate *before* committing to a stream.
    pub fn validate_records(n: usize, records: &[usize]) -> Result<()> {
        if records.is_empty() {
            return Err(StatsError::EmptyData);
        }
        if let Some(&bad) = records.iter().find(|&&r| r >= n) {
            return Err(StatsError::InvalidParameter {
                name: "record",
                value: bad as f64,
                constraint: "must be < num_categories",
            });
        }
        Ok(())
    }

    /// Accumulates one batch of raw category indices. The batch is
    /// all-or-nothing: an out-of-domain record rejects the whole batch
    /// without changing the set. An empty batch is rejected (it would
    /// inflate the batch counter without carrying information).
    pub fn add_records(&mut self, records: &[usize]) -> Result<()> {
        Self::validate_records(self.counts.len(), records)?;
        for &r in records {
            self.counts[r] += 1;
        }
        self.total += records.len() as u64;
        self.batches += 1;
        Ok(())
    }

    /// Upper bound on one pre-counted batch's total. Generous for any real
    /// stream (4.3 billion responses per batch) while guaranteeing the
    /// running `u64` totals cannot overflow within 2³² batches — untrusted
    /// protocol clients cannot wrap the accumulator with huge counts.
    pub const MAX_BATCH_TOTAL: u64 = u32::MAX as u64;

    /// Validates a pre-counted batch against an `n`-category domain and
    /// returns its total: length must match, total in
    /// `1..=`[`MAX_BATCH_TOTAL`](CountSet::MAX_BATCH_TOTAL) with no `u64`
    /// overflow. The single gate shared by
    /// [`add_counts`](CountSet::add_counts) and serving layers.
    pub fn validate_counts(n: usize, counts: &[u64]) -> Result<u64> {
        if counts.len() != n {
            return Err(StatsError::SupportMismatch {
                left: n,
                right: counts.len(),
            });
        }
        let batch_total = counts
            .iter()
            .try_fold(0u64, |acc, &c| acc.checked_add(c))
            .filter(|&t| t <= Self::MAX_BATCH_TOTAL)
            .ok_or(StatsError::InvalidParameter {
                name: "counts",
                value: Self::MAX_BATCH_TOTAL as f64,
                constraint: "batch total must not exceed MAX_BATCH_TOTAL",
            })?;
        if batch_total == 0 {
            return Err(StatsError::EmptyData);
        }
        Ok(batch_total)
    }

    /// Accumulates one pre-counted batch (see
    /// [`validate_counts`](CountSet::validate_counts) for the accepted
    /// shapes).
    pub fn add_counts(&mut self, counts: &[u64]) -> Result<()> {
        let batch_total = Self::validate_counts(self.counts.len(), counts)?;
        for (a, b) in self.counts.iter_mut().zip(counts) {
            *a += b;
        }
        self.total += batch_total;
        self.batches += 1;
        Ok(())
    }

    /// Merges another count set over the same domain into this one,
    /// summing counts, totals, and batch counters. Because `u64` addition
    /// commutes, merging any partition of a batch stream reproduces the
    /// single-accumulator state exactly.
    pub fn merge(&mut self, other: &CountSet) -> Result<()> {
        if self.num_categories() != other.num_categories() {
            return Err(StatsError::SupportMismatch {
                left: self.num_categories(),
                right: other.num_categories(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.batches += other.batches;
        Ok(())
    }

    /// The accumulated counts as a [`Histogram`].
    pub fn histogram(&self) -> Histogram {
        Histogram::from_counts(self.counts.clone()).expect("counts validated at construction")
    }

    /// The empirical distribution of the accumulated responses (the MLE
    /// `N_i / N` of Theorem 1). Errs when the set is empty.
    pub fn empirical_distribution(&self) -> Result<Categorical> {
        if self.total == 0 {
            return Err(StatsError::EmptyData);
        }
        Categorical::from_counts(&self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        assert!(CountSet::new(0).is_err());
        let c = CountSet::new(3).unwrap();
        assert_eq!(c.num_categories(), 3);
        assert_eq!(c.total(), 0);
        assert_eq!(c.batches(), 0);
        assert!(c.is_empty());
        assert!(c.empirical_distribution().is_err());
    }

    #[test]
    fn record_batches_accumulate_and_validate_atomically() {
        let mut c = CountSet::new(3).unwrap();
        c.add_records(&[0, 1, 1, 2]).unwrap();
        assert_eq!(c.counts(), &[1, 2, 1]);
        assert_eq!(c.total(), 4);
        assert_eq!(c.batches(), 1);
        // Out-of-domain record rejects the whole batch.
        assert!(c.add_records(&[0, 7]).is_err());
        assert_eq!(c.counts(), &[1, 2, 1]);
        assert_eq!(c.batches(), 1);
        // Empty batches carry no information.
        assert!(c.add_records(&[]).is_err());
        assert_eq!(c.count(1), 2);
        assert_eq!(c.count(9), 0);
    }

    #[test]
    fn counted_batches_accumulate_and_validate() {
        let mut c = CountSet::new(3).unwrap();
        c.add_counts(&[5, 0, 2]).unwrap();
        assert_eq!(c.total(), 7);
        assert_eq!(c.batches(), 1);
        assert!(c.add_counts(&[1, 2]).is_err());
        assert!(c.add_counts(&[0, 0, 0]).is_err());
        // Oversized and overflowing batches are rejected atomically: an
        // untrusted client cannot wrap the u64 accumulator.
        assert!(c.add_counts(&[u64::MAX, 1, 0]).is_err());
        assert!(c
            .add_counts(&[CountSet::MAX_BATCH_TOTAL + 1, 0, 0])
            .is_err());
        assert_eq!(c.batches(), 1);
        c.add_counts(&[0, 1, 0]).unwrap();
        assert_eq!(c.counts(), &[5, 1, 2]);
    }

    #[test]
    fn merge_reproduces_the_single_accumulator_state() {
        let batches: [&[usize]; 4] = [&[0, 1, 1], &[2, 2, 2, 0], &[1], &[0, 2]];
        let mut single = CountSet::new(3).unwrap();
        for b in &batches {
            single.add_records(b).unwrap();
        }
        // Partition the batches across two accumulators, merge in either
        // order: bitwise-identical state.
        let mut left = CountSet::new(3).unwrap();
        let mut right = CountSet::new(3).unwrap();
        left.add_records(batches[0]).unwrap();
        right.add_records(batches[1]).unwrap();
        left.add_records(batches[2]).unwrap();
        right.add_records(batches[3]).unwrap();
        let mut merged_a = CountSet::new(3).unwrap();
        merged_a.merge(&left).unwrap();
        merged_a.merge(&right).unwrap();
        let mut merged_b = CountSet::new(3).unwrap();
        merged_b.merge(&right).unwrap();
        merged_b.merge(&left).unwrap();
        assert_eq!(merged_a, single);
        assert_eq!(merged_b, single);
        // Domain mismatch is rejected.
        let other = CountSet::new(4).unwrap();
        assert!(merged_a.merge(&other).is_err());
    }

    #[test]
    fn histogram_and_distribution_match_counts() {
        let mut c = CountSet::new(4).unwrap();
        c.add_records(&[0, 0, 1, 3, 3, 3]).unwrap();
        assert_eq!(c.histogram().counts(), &[2, 1, 0, 3]);
        let d = c.empirical_distribution().unwrap();
        assert!((d.prob(3) - 0.5).abs() < 1e-12);
        assert_eq!(d.prob(2), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut c = CountSet::new(3).unwrap();
        c.add_records(&[0, 2, 2]).unwrap();
        c.add_counts(&[1, 1, 1]).unwrap();
        let text = serde_json::to_string(&c).unwrap();
        let back: CountSet = serde_json::from_str(&text).unwrap();
        assert_eq!(back, c);
    }
}
