//! Error type for the statistics substrate.

use std::fmt;

/// Errors produced by distribution construction, sampling, and divergence
/// computations.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A parameter was outside its valid domain (e.g. a negative variance).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
        /// Human-readable description of the constraint that was violated.
        constraint: &'static str,
    },
    /// A probability vector was empty, negative, or did not sum to one.
    InvalidDistribution {
        /// Explanation of what is wrong.
        reason: &'static str,
    },
    /// Two distributions that must share a support had different lengths.
    SupportMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// An empty sample or data set was supplied where data are required.
    EmptyData,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "invalid parameter {name}={value}: {constraint}")
            }
            StatsError::InvalidDistribution { reason } => {
                write!(f, "invalid probability distribution: {reason}")
            }
            StatsError::SupportMismatch { left, right } => {
                write!(
                    f,
                    "distribution support mismatch: {left} vs {right} categories"
                )
            }
            StatsError::EmptyData => write!(f, "empty data"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StatsError::InvalidParameter {
            name: "alpha",
            value: -1.0,
            constraint: "must be positive",
        };
        assert!(e.to_string().contains("alpha"));
        assert!(e.to_string().contains("positive"));

        assert!(StatsError::InvalidDistribution {
            reason: "sums to 2"
        }
        .to_string()
        .contains("sums to 2"));
        assert!(StatsError::SupportMismatch { left: 3, right: 4 }
            .to_string()
            .contains('3'));
        assert!(StatsError::EmptyData.to_string().contains("empty"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&StatsError::EmptyData);
    }
}
