//! Category histograms and empirical distributions.
//!
//! The disguised data set `Y_s = {y_1, ..., y_N}` is summarized by its
//! category counts `N_i`; the MLE of the disguised distribution is the
//! vector of relative frequencies `N_i / N` (Theorem 1 of the paper).

use crate::categorical::Categorical;
use crate::error::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Counts of observations per category over a fixed domain of `n` categories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram over `n` categories.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InvalidParameter {
                name: "n",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        Ok(Self {
            counts: vec![0; n],
            total: 0,
        })
    }

    /// Builds a histogram over `n` categories from observed category indices.
    /// Indices `>= n` are rejected.
    pub fn from_observations(n: usize, observations: &[usize]) -> Result<Self> {
        let mut h = Self::new(n)?;
        for &obs in observations {
            h.record(obs)?;
        }
        Ok(h)
    }

    /// Builds a histogram directly from per-category counts.
    pub fn from_counts(counts: Vec<u64>) -> Result<Self> {
        if counts.is_empty() {
            return Err(StatsError::InvalidParameter {
                name: "counts",
                value: 0.0,
                constraint: "must be non-empty",
            });
        }
        let total = counts.iter().sum();
        Ok(Self { counts, total })
    }

    /// Records one observation of category `i`.
    pub fn record(&mut self, i: usize) -> Result<()> {
        if i >= self.counts.len() {
            return Err(StatsError::InvalidParameter {
                name: "category",
                value: i as f64,
                constraint: "must be < number of categories",
            });
        }
        self.counts[i] += 1;
        self.total += 1;
        Ok(())
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of category `i` (0 when out of range).
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Borrow the raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Relative frequency of category `i` (0.0 when the histogram is empty).
    pub fn frequency(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(i) as f64 / self.total as f64
        }
    }

    /// Relative-frequency vector.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.frequency(i)).collect()
    }

    /// The empirical distribution (MLE of the underlying categorical
    /// distribution). Errs when the histogram is empty.
    pub fn empirical_distribution(&self) -> Result<Categorical> {
        if self.total == 0 {
            return Err(StatsError::EmptyData);
        }
        Categorical::from_counts(&self.counts)
    }

    /// Merges another histogram over the same domain into this one.
    pub fn merge(&mut self, other: &Histogram) -> Result<()> {
        if self.num_categories() != other.num_categories() {
            return Err(StatsError::SupportMismatch {
                left: self.num_categories(),
                right: other.num_categories(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_construction() {
        assert!(Histogram::new(0).is_err());
        let h = Histogram::new(3).unwrap();
        assert_eq!(h.num_categories(), 3);
        assert_eq!(h.total(), 0);
        assert_eq!(h.frequency(0), 0.0);
        assert!(h.empirical_distribution().is_err());
    }

    #[test]
    fn record_and_frequencies() {
        let mut h = Histogram::new(3).unwrap();
        h.record(0).unwrap();
        h.record(1).unwrap();
        h.record(1).unwrap();
        h.record(2).unwrap();
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(9), 0);
        assert!((h.frequency(1) - 0.5).abs() < 1e-12);
        assert_eq!(h.frequencies(), vec![0.25, 0.5, 0.25]);
        assert!(h.record(3).is_err());
    }

    #[test]
    fn from_observations_validates() {
        let h = Histogram::from_observations(4, &[0, 1, 1, 3, 3, 3]).unwrap();
        assert_eq!(h.counts(), &[1, 2, 0, 3]);
        assert!(Histogram::from_observations(2, &[0, 5]).is_err());
    }

    #[test]
    fn from_counts() {
        let h = Histogram::from_counts(vec![5, 0, 5]).unwrap();
        assert_eq!(h.total(), 10);
        assert!((h.frequency(0) - 0.5).abs() < 1e-12);
        assert!(Histogram::from_counts(vec![]).is_err());
    }

    #[test]
    fn empirical_distribution_matches_frequencies() {
        let h = Histogram::from_observations(3, &[0, 0, 1, 2, 2, 2]).unwrap();
        let d = h.empirical_distribution().unwrap();
        assert!((d.prob(0) - 2.0 / 6.0).abs() < 1e-12);
        assert!((d.prob(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::from_observations(3, &[0, 1]).unwrap();
        let b = Histogram::from_observations(3, &[1, 2, 2]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.counts(), &[1, 2, 2]);
        assert_eq!(a.total(), 5);
        let c = Histogram::new(4).unwrap();
        assert!(a.merge(&c).is_err());
    }
}
