//! Randomized response over binary transaction data and support estimation.
//!
//! The privacy-preserving association-rule mining line of work the paper
//! cites (Rizvi & Haritsa; Evfimievski et al.) disguises each item's
//! presence bit independently with a per-item RR matrix (a 2x2 matrix over
//! {absent, present}) and reconstructs itemset supports from the disguised
//! transactions. This module implements that per-bit disguise and the
//! support estimator for itemsets of arbitrary size (via the Kronecker
//! structure of the joint disguise matrix over the itemset's bits).

use crate::error::{MiningError, Result};
use datagen::TransactionDataset;
use linalg::{invert, Matrix, Vector};
use rand::Rng;
use rr::RrMatrix;

/// Disguises every item bit of every transaction independently with the
/// same 2-category RR matrix (`category 0 = absent`, `1 = present`).
pub fn disguise_transactions<R: Rng + ?Sized>(
    matrix: &RrMatrix,
    data: &TransactionDataset,
    rng: &mut R,
) -> Result<TransactionDataset> {
    if matrix.num_categories() != 2 {
        return Err(MiningError::InvalidParameter {
            name: "matrix categories",
            value: matrix.num_categories() as f64,
            constraint: "transaction disguise needs a 2-category RR matrix",
        });
    }
    if data.is_empty() {
        return Err(MiningError::EmptyData);
    }
    let absent = matrix.randomization_distribution(0)?;
    let present = matrix.randomization_distribution(1)?;
    let mut disguised = Vec::with_capacity(data.len());
    for idx in 0..data.len() {
        let bits = data.bitmap(idx).expect("index within bounds");
        let mut out = Vec::new();
        for (item, bit) in bits.iter().enumerate() {
            let reported = if *bit {
                present.sample(rng)
            } else {
                absent.sample(rng)
            };
            if reported == 1 {
                out.push(item);
            }
        }
        disguised.push(out);
    }
    Ok(TransactionDataset::new(data.num_items(), disguised)?)
}

/// Estimates the *original* support of an itemset from disguised
/// transactions.
///
/// Each bit is disguised independently, so the joint distribution of the
/// itemset's disguised bits is the Kronecker product of the per-bit RR
/// matrix applied to the joint original distribution. Inverting that
/// product (equivalently, applying the 2x2 inverse per bit) recovers the
/// original joint distribution, whose all-ones cell is the support
/// (Rizvi–Haritsa's estimator generalized to arbitrary itemset size).
pub fn estimate_support(
    matrix: &RrMatrix,
    disguised: &TransactionDataset,
    itemset: &[usize],
) -> Result<f64> {
    if matrix.num_categories() != 2 {
        return Err(MiningError::InvalidParameter {
            name: "matrix categories",
            value: matrix.num_categories() as f64,
            constraint: "transaction support estimation needs a 2-category RR matrix",
        });
    }
    if disguised.is_empty() {
        return Err(MiningError::EmptyData);
    }
    if itemset.is_empty() {
        return Ok(1.0);
    }
    if itemset.len() > 20 {
        return Err(MiningError::InvalidParameter {
            name: "itemset size",
            value: itemset.len() as f64,
            constraint: "support estimation is exponential in itemset size; limit is 20",
        });
    }
    if let Some(&bad) = itemset.iter().find(|&&i| i >= disguised.num_items()) {
        return Err(MiningError::InvalidParameter {
            name: "item",
            value: bad as f64,
            constraint: "must be < num_items",
        });
    }

    let k = itemset.len();
    let cells = 1usize << k;
    // Empirical joint distribution of the disguised bits over the itemset.
    let mut counts = vec![0.0_f64; cells];
    for idx in 0..disguised.len() {
        let bits = disguised.bitmap(idx).expect("index within bounds");
        let mut cell = 0usize;
        for (pos, &item) in itemset.iter().enumerate() {
            if bits[item] {
                cell |= 1 << pos;
            }
        }
        counts[cell] += 1.0;
    }
    let n = disguised.len() as f64;
    let observed = Vector::from_vec(counts.into_iter().map(|c| c / n).collect());

    // Joint disguise matrix = k-fold Kronecker product of the 2x2 matrix.
    let base = matrix.as_matrix().clone();
    let mut joint = Matrix::identity(1);
    for _ in 0..k {
        joint = kronecker(&joint, &base);
    }
    let inverse = invert(&joint).map_err(rr::RrError::from)?;
    let original = inverse.mul_vector(&observed).map_err(rr::RrError::from)?;
    // The all-ones cell (every bit present) is the itemset support.
    Ok(original[cells - 1].clamp(0.0, 1.0))
}

/// Kronecker product of two matrices.
fn kronecker(a: &Matrix, b: &Matrix) -> Matrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let mut out = Matrix::zeros(ar * br, ac * bc);
    for i in 0..ar {
        for j in 0..ac {
            let scale = a[(i, j)];
            if scale == 0.0 {
                continue;
            }
            for p in 0..br {
                for q in 0..bc {
                    out[(i * br + p, j * bc + q)] = scale * b[(p, q)];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::transactions::{generate, TransactionConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rr::schemes::warner;

    fn rr2(p: f64) -> RrMatrix {
        warner(2, p).unwrap()
    }

    #[test]
    fn kronecker_product_shape_and_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let k = kronecker(&a, &b);
        assert_eq!(k.shape(), (4, 4));
        assert_eq!(k[(0, 0)], 1.0);
        assert_eq!(k[(1, 1)], 1.0);
        assert_eq!(k[(0, 2)], 2.0);
        assert_eq!(k[(2, 0)], 3.0);
        assert_eq!(k[(3, 3)], 4.0);
        assert_eq!(k[(0, 1)], 0.0);
    }

    #[test]
    fn disguise_validates_inputs() {
        let data = generate(&TransactionConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(disguise_transactions(&warner(3, 0.8).unwrap(), &data, &mut rng).is_err());
        let empty = TransactionDataset::new(5, vec![]).unwrap();
        assert!(matches!(
            disguise_transactions(&rr2(0.9), &empty, &mut rng),
            Err(MiningError::EmptyData)
        ));
    }

    #[test]
    fn identity_disguise_preserves_transactions() {
        let data = generate(&TransactionConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let disguised =
            disguise_transactions(&RrMatrix::identity(2).unwrap(), &data, &mut rng).unwrap();
        assert_eq!(disguised, data);
    }

    #[test]
    fn support_estimation_recovers_planted_itemsets() {
        let cfg = TransactionConfig {
            num_transactions: 20_000,
            ..TransactionConfig::default()
        };
        let data = generate(&cfg).unwrap();
        let m = rr2(0.85);
        let mut rng = StdRng::seed_from_u64(3);
        let disguised = disguise_transactions(&m, &data, &mut rng).unwrap();

        // Single-item support.
        let true_s0 = data.support(&[0]);
        let est_s0 = estimate_support(&m, &disguised, &[0]).unwrap();
        assert!(
            (est_s0 - true_s0).abs() < 0.03,
            "item 0: {est_s0} vs {true_s0}"
        );

        // Planted pair {0,1}.
        let true_pair = data.support(&[0, 1]);
        let est_pair = estimate_support(&m, &disguised, &[0, 1]).unwrap();
        assert!(
            (est_pair - true_pair).abs() < 0.04,
            "pair: {est_pair} vs {true_pair}"
        );

        // Planted triple {2,3,4}.
        let true_triple = data.support(&[2, 3, 4]);
        let est_triple = estimate_support(&m, &disguised, &[2, 3, 4]).unwrap();
        assert!(
            (est_triple - true_triple).abs() < 0.05,
            "triple: {est_triple} vs {true_triple}"
        );

        // An unplanted pair has near-zero support both ways.
        let est_rare = estimate_support(&m, &disguised, &[10, 11]).unwrap();
        assert!(est_rare < 0.05);
    }

    #[test]
    fn support_estimation_validates_inputs() {
        let data = generate(&TransactionConfig::default()).unwrap();
        let m = rr2(0.9);
        let mut rng = StdRng::seed_from_u64(4);
        let disguised = disguise_transactions(&m, &data, &mut rng).unwrap();
        assert!(estimate_support(&warner(3, 0.9).unwrap(), &disguised, &[0]).is_err());
        assert!(estimate_support(&m, &disguised, &[999]).is_err());
        assert_eq!(estimate_support(&m, &disguised, &[]).unwrap(), 1.0);
        let empty = TransactionDataset::new(5, vec![]).unwrap();
        assert!(estimate_support(&m, &empty, &[0]).is_err());
        let oversized: Vec<usize> = (0..21).collect();
        let wide = TransactionDataset::new(30, vec![vec![0]]).unwrap();
        assert!(estimate_support(&m, &wide, &oversized).is_err());
    }

    #[test]
    fn singular_bit_matrix_is_rejected() {
        let data = generate(&TransactionConfig::default()).unwrap();
        let m = RrMatrix::uniform(2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let disguised = disguise_transactions(&m, &data, &mut rng).unwrap();
        assert!(estimate_support(&m, &disguised, &[0]).is_err());
    }
}
