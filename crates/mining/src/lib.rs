//! # optrr-mining
//!
//! Privacy-preserving data-mining applications over randomized-response
//! data, reproducing the downstream computations that motivate the OptRR
//! paper (Huang & Du, ICDE 2008): the point of choosing a good RR matrix is
//! that the disguised data still supports useful mining.
//!
//! * [`reconstruct`] — distribution reconstruction as a pluggable primitive
//!   (inversion or iterative estimator).
//! * [`transactions`] — per-bit randomized response over market-basket
//!   data and itemset-support reconstruction (the Rizvi–Haritsa /
//!   Evfimievski et al. setting).
//! * [`apriori`] — level-wise Apriori frequent-itemset and association-rule
//!   mining with a pluggable support oracle (exact or reconstructed).
//! * [`decision_tree`] — ID3-style decision-tree building where disguised
//!   attribute columns have their per-node counts corrected through `M⁻¹`
//!   (the Du–Zhan setting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Negated comparisons like `!(x > 0.0)` are deliberate NaN-rejecting
// guards, and a few index loops walk several parallel arrays at once.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod apriori;
pub mod decision_tree;
pub mod error;
pub mod reconstruct;
pub mod transactions;

pub use apriori::{
    association_rules, frequent_itemsets, mine, AprioriConfig, AssociationRule, FrequentItemset,
    SupportOracle,
};
pub use decision_tree::{accuracy, build_tree, AttributeView, TreeConfig, TreeNode};
pub use error::{MiningError, Result};
pub use reconstruct::Reconstructor;
pub use transactions::{disguise_transactions, estimate_support};

#[cfg(test)]
mod proptests {
    use super::*;
    use datagen::TransactionDataset;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rr::schemes::warner;

    fn arb_transactions() -> impl Strategy<Value = TransactionDataset> {
        (3usize..=8, 20usize..200).prop_flat_map(|(items, txns)| {
            proptest::collection::vec(
                proptest::collection::vec(0usize..items, 0..items),
                txns..txns + 1,
            )
            .prop_map(move |mut raw| {
                for t in &mut raw {
                    t.sort_unstable();
                    t.dedup();
                }
                TransactionDataset::new(items, raw).unwrap()
            })
        })
    }

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(24))]

        #[test]
        fn disguised_transactions_keep_shape(data in arb_transactions(), seed in 0u64..100) {
            let m = warner(2, 0.85).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let disguised = disguise_transactions(&m, &data, &mut rng).unwrap();
            prop_assert_eq!(disguised.len(), data.len());
            prop_assert_eq!(disguised.num_items(), data.num_items());
            for t in disguised.transactions() {
                prop_assert!(t.iter().all(|&i| i < data.num_items()));
                // Transactions are sets (sorted unique indices by construction).
                let mut sorted = t.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), t.len());
            }
        }

        #[test]
        fn estimated_supports_are_probabilities(data in arb_transactions(), seed in 0u64..100) {
            let m = warner(2, 0.9).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let disguised = disguise_transactions(&m, &data, &mut rng).unwrap();
            for item in 0..data.num_items().min(4) {
                let s = estimate_support(&m, &disguised, &[item]).unwrap();
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }

        #[test]
        fn apriori_itemsets_respect_the_apriori_property(data in arb_transactions()) {
            let oracle = SupportOracle::Exact(&data);
            let config = AprioriConfig { min_support: 0.2, min_confidence: 0.5, max_itemset_size: 3 };
            let itemsets = frequent_itemsets(&oracle, &config).unwrap();
            // Every reported itemset clears the threshold and its sub-itemsets
            // are also reported (downward closure).
            for set in &itemsets {
                prop_assert!(set.support >= config.min_support);
                if set.items.len() >= 2 {
                    for drop in 0..set.items.len() {
                        let mut sub = set.items.clone();
                        sub.remove(drop);
                        prop_assert!(
                            itemsets.iter().any(|s| s.items == sub),
                            "missing sub-itemset {:?} of {:?}", sub, set.items
                        );
                    }
                }
            }
        }
    }
}
