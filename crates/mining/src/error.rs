//! Error type for the privacy-preserving data-mining crate.

use std::fmt;

/// Errors produced by the mining algorithms over disguised data.
#[derive(Debug, Clone, PartialEq)]
pub enum MiningError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
        /// Constraint violated.
        constraint: &'static str,
    },
    /// The data set is empty or otherwise unusable.
    EmptyData,
    /// An error bubbled up from the randomized-response substrate.
    Rr(rr::RrError),
    /// An error bubbled up from the statistics substrate.
    Stats(stats::StatsError),
}

impl fmt::Display for MiningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiningError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "invalid parameter {name}={value}: {constraint}")
            }
            MiningError::EmptyData => write!(f, "empty data set"),
            MiningError::Rr(e) => write!(f, "randomized response error: {e}"),
            MiningError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for MiningError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MiningError::Rr(e) => Some(e),
            MiningError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rr::RrError> for MiningError {
    fn from(e: rr::RrError) -> Self {
        MiningError::Rr(e)
    }
}

impl From<stats::StatsError> for MiningError {
    fn from(e: stats::StatsError) -> Self {
        MiningError::Stats(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MiningError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        use std::error::Error;
        let p = MiningError::InvalidParameter {
            name: "support",
            value: 2.0,
            constraint: "in [0,1]",
        };
        assert!(p.to_string().contains("support"));
        assert!(p.source().is_none());
        assert!(MiningError::EmptyData.to_string().contains("empty"));
        let r: MiningError = rr::RrError::SingularMatrix.into();
        assert!(r.to_string().contains("singular"));
        assert!(r.source().is_some());
        let s: MiningError = stats::StatsError::EmptyData.into();
        assert!(s.source().is_some());
    }
}
