//! ID3-style decision-tree building over original or RR-disguised data.
//!
//! Du & Zhan's KDD'03 work (cited in the paper's related work) shows that a
//! decision tree can be built from randomized-response data because the
//! information-gain computation only needs class/attribute *counts*, which
//! can be reconstructed from the disguised data. This module implements:
//!
//! * a plain ID3 learner on labeled categorical data (the baseline), and
//! * a count-reconstruction path where a chosen attribute column has been
//!   disguised with an RR matrix: the per-node class-conditional counts of
//!   that attribute are corrected with `M⁻¹` before the information gain is
//!   computed.

use crate::error::{MiningError, Result};
use datagen::LabeledDataset;
use linalg::Vector;
use rr::RrMatrix;
use serde::{Deserialize, Serialize};

/// A learned decision tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// A leaf predicting a class.
    Leaf {
        /// Predicted class index.
        class: usize,
    },
    /// An internal node splitting on an attribute.
    Split {
        /// Attribute index used for the split.
        attribute: usize,
        /// One child per attribute value.
        children: Vec<TreeNode>,
        /// Majority class at this node (fallback for unseen values).
        majority: usize,
    },
}

impl TreeNode {
    /// Predicts the class of a record (attribute values indexed like the
    /// training data).
    pub fn predict(&self, values: &[usize]) -> usize {
        match self {
            TreeNode::Leaf { class } => *class,
            TreeNode::Split {
                attribute,
                children,
                majority,
            } => match values.get(*attribute).and_then(|&v| children.get(v)) {
                Some(child) => child.predict(values),
                None => *majority,
            },
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { children, .. } => {
                1 + children.iter().map(TreeNode::size).sum::<usize>()
            }
        }
    }

    /// Depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { children, .. } => {
                1 + children.iter().map(TreeNode::depth).max().unwrap_or(0)
            }
        }
    }
}

/// Configuration of the tree learner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of records required to attempt a split.
    pub min_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_split: 20,
        }
    }
}

/// How the learner should treat each attribute's counts.
#[derive(Debug, Clone)]
pub enum AttributeView<'a> {
    /// The attribute is observed in the clear.
    Plain,
    /// The attribute column was disguised with this RR matrix; per-node
    /// counts are corrected with its inverse before computing gains.
    Disguised(&'a RrMatrix),
}

/// Builds a decision tree from a labeled data set. `views` must have one
/// entry per attribute, saying whether that column is plain or disguised.
pub fn build_tree(
    data: &LabeledDataset,
    views: &[AttributeView<'_>],
    config: &TreeConfig,
) -> Result<TreeNode> {
    if data.is_empty() {
        return Err(MiningError::EmptyData);
    }
    if views.len() != data.num_attributes() {
        return Err(MiningError::InvalidParameter {
            name: "views",
            value: views.len() as f64,
            constraint: "must have one entry per attribute",
        });
    }
    if config.max_depth == 0 {
        return Err(MiningError::InvalidParameter {
            name: "max_depth",
            value: 0.0,
            constraint: "must be positive",
        });
    }
    // Validate disguised views have matching category counts up front.
    for (i, view) in views.iter().enumerate() {
        if let AttributeView::Disguised(m) = view {
            let domain = data.attribute(i).expect("index valid").num_categories();
            if m.num_categories() != domain {
                return Err(MiningError::InvalidParameter {
                    name: "disguised attribute matrix",
                    value: m.num_categories() as f64,
                    constraint: "matrix categories must match the attribute domain",
                });
            }
        }
    }
    let rows: Vec<usize> = (0..data.len()).collect();
    Ok(build_node(data, views, config, &rows, 0))
}

fn class_counts(data: &LabeledDataset, rows: &[usize]) -> Vec<f64> {
    let num_classes = data.labels().num_categories();
    let mut counts = vec![0.0; num_classes];
    for &r in rows {
        counts[data.labels().record(r).expect("row in range")] += 1.0;
    }
    counts
}

fn majority_class(counts: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            -p * p.ln()
        })
        .sum()
}

/// Per-class, per-value counts of an attribute over the given rows,
/// corrected through `M⁻¹` when the attribute is disguised (Du–Zhan's count
/// reconstruction). Reconstructed counts are clamped at zero.
fn attribute_class_counts(
    data: &LabeledDataset,
    rows: &[usize],
    attribute: usize,
    view: &AttributeView<'_>,
) -> Result<Vec<Vec<f64>>> {
    let domain = data
        .attribute(attribute)
        .expect("attribute validated")
        .num_categories();
    let num_classes = data.labels().num_categories();
    // counts[class][value]
    let mut counts = vec![vec![0.0_f64; domain]; num_classes];
    for &r in rows {
        let v = data
            .attribute(attribute)
            .expect("attribute validated")
            .record(r)
            .expect("row");
        let c = data.labels().record(r).expect("row");
        counts[c][v] += 1.0;
    }
    match view {
        AttributeView::Plain => Ok(counts),
        AttributeView::Disguised(m) => {
            let inverse = m.inverse()?;
            let corrected: Vec<Vec<f64>> = counts
                .into_iter()
                .map(|per_class| {
                    let reconstructed = inverse
                        .mul_vector(&Vector::from_vec(per_class))
                        .expect("dimensions validated");
                    reconstructed.iter().map(|&x| x.max(0.0)).collect()
                })
                .collect();
            Ok(corrected)
        }
    }
}

fn information_gain(
    data: &LabeledDataset,
    rows: &[usize],
    attribute: usize,
    view: &AttributeView<'_>,
) -> Result<f64> {
    let base_counts = class_counts(data, rows);
    let base_entropy = entropy(&base_counts);
    let counts = attribute_class_counts(data, rows, attribute, view)?;
    let domain = counts.first().map(|c| c.len()).unwrap_or(0);
    let total: f64 = counts
        .iter()
        .map(|per_class| per_class.iter().sum::<f64>())
        .sum();
    if total <= 0.0 {
        return Ok(0.0);
    }
    let mut conditional = 0.0;
    for value in 0..domain {
        let branch: Vec<f64> = counts.iter().map(|per_class| per_class[value]).collect();
        let branch_total: f64 = branch.iter().sum();
        if branch_total <= 0.0 {
            continue;
        }
        conditional += (branch_total / total) * entropy(&branch);
    }
    Ok((base_entropy - conditional).max(0.0))
}

fn build_node(
    data: &LabeledDataset,
    views: &[AttributeView<'_>],
    config: &TreeConfig,
    rows: &[usize],
    depth: usize,
) -> TreeNode {
    let counts = class_counts(data, rows);
    let majority = majority_class(&counts);
    let num_nonzero_classes = counts.iter().filter(|&&c| c > 0.0).count();

    // `max_depth` counts levels including the root, so a node may only split
    // when its children would still be within the limit.
    if depth + 1 >= config.max_depth || rows.len() < config.min_split || num_nonzero_classes <= 1 {
        return TreeNode::Leaf { class: majority };
    }

    // Pick the attribute with the largest information gain.
    let mut best: Option<(usize, f64)> = None;
    for attribute in 0..data.num_attributes() {
        let gain = information_gain(data, rows, attribute, &views[attribute]).unwrap_or(0.0);
        if best.map(|(_, g)| gain > g).unwrap_or(true) {
            best = Some((attribute, gain));
        }
    }
    let Some((attribute, gain)) = best else {
        return TreeNode::Leaf { class: majority };
    };
    if gain <= 1e-12 {
        return TreeNode::Leaf { class: majority };
    }

    // Partition the rows by the (observed) attribute value. Note that for a
    // disguised attribute this partitions on reported values — the standard
    // Du–Zhan construction: the split statistics are corrected, while the
    // routing necessarily uses what was observed.
    let domain = data
        .attribute(attribute)
        .expect("attribute in range")
        .num_categories();
    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); domain];
    for &r in rows {
        let v = data
            .attribute(attribute)
            .expect("attribute in range")
            .record(r)
            .expect("row");
        partitions[v].push(r);
    }
    let children: Vec<TreeNode> = partitions
        .iter()
        .map(|part| {
            if part.is_empty() {
                TreeNode::Leaf { class: majority }
            } else {
                build_node(data, views, config, part, depth + 1)
            }
        })
        .collect();
    TreeNode::Split {
        attribute,
        children,
        majority,
    }
}

/// Classification accuracy of a tree on a labeled data set.
pub fn accuracy(tree: &TreeNode, data: &LabeledDataset) -> Result<f64> {
    if data.is_empty() {
        return Err(MiningError::EmptyData);
    }
    let mut correct = 0usize;
    for i in 0..data.len() {
        let (values, label) = data.row(i).expect("row in range");
        if tree.predict(&values) == label {
            correct += 1;
        }
    }
    Ok(correct as f64 / data.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::labeled::{generate, LabeledConfig};
    use datagen::CategoricalDataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rr::disguise::disguise_dataset;
    use rr::schemes::warner;

    fn training_data(n: usize, seed: u64) -> LabeledDataset {
        generate(&LabeledConfig {
            num_records: n,
            seed,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn entropy_and_majority_helpers() {
        assert_eq!(entropy(&[5.0, 0.0]), 0.0);
        assert!((entropy(&[5.0, 5.0]) - (2.0f64).ln()).abs() < 1e-12);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
        assert_eq!(majority_class(&[1.0, 5.0, 3.0]), 1);
        assert_eq!(majority_class(&[2.0, 2.0]), 0);
    }

    #[test]
    fn validation_errors() {
        let data = training_data(200, 1);
        let views = vec![AttributeView::Plain; data.num_attributes()];
        assert!(build_tree(&data, &views[..2], &TreeConfig::default()).is_err());
        assert!(build_tree(
            &data,
            &views,
            &TreeConfig {
                max_depth: 0,
                min_split: 5
            }
        )
        .is_err());
        // Mismatched disguise matrix.
        let wrong = warner(7, 0.8).unwrap();
        let mut bad_views = views.clone();
        bad_views[0] = AttributeView::Disguised(&wrong);
        assert!(build_tree(&data, &bad_views, &TreeConfig::default()).is_err());
        // Accuracy on empty data is rejected.
        let tree = build_tree(&data, &views, &TreeConfig::default()).unwrap();
        let empty = LabeledDataset::new(
            vec![CategoricalDataset::new(4, vec![]).unwrap()],
            CategoricalDataset::new(2, vec![]).unwrap(),
        )
        .unwrap();
        assert!(accuracy(&tree, &empty).is_err());
    }

    #[test]
    fn plain_tree_learns_the_planted_rule() {
        let train = training_data(4_000, 2);
        let test = training_data(1_000, 3);
        let views = vec![AttributeView::Plain; train.num_attributes()];
        let tree = build_tree(&train, &views, &TreeConfig::default()).unwrap();
        let train_acc = accuracy(&tree, &train).unwrap();
        let test_acc = accuracy(&tree, &test).unwrap();
        // The planted rule holds for 85% of records; a correct learner gets
        // close to that ceiling and generalizes.
        assert!(train_acc > 0.8, "train accuracy {train_acc}");
        assert!(test_acc > 0.78, "test accuracy {test_acc}");
        assert!(tree.size() > 1);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn tree_respects_depth_and_split_limits() {
        let train = training_data(2_000, 4);
        let views = vec![AttributeView::Plain; train.num_attributes()];
        let stump = build_tree(
            &train,
            &views,
            &TreeConfig {
                max_depth: 1,
                min_split: 10,
            },
        )
        .unwrap();
        assert_eq!(stump.depth(), 1);
        assert_eq!(stump.size(), 1);
        let shallow = build_tree(
            &train,
            &views,
            &TreeConfig {
                max_depth: 2,
                min_split: 10,
            },
        )
        .unwrap();
        assert!(shallow.depth() <= 2);
    }

    #[test]
    fn prediction_falls_back_to_majority_for_out_of_range_values() {
        let train = training_data(2_000, 5);
        let views = vec![AttributeView::Plain; train.num_attributes()];
        let tree = build_tree(&train, &views, &TreeConfig::default()).unwrap();
        // A record with out-of-range attribute values still gets a prediction.
        let prediction = tree.predict(&[999, 999, 999, 999]);
        assert!(prediction < 2);
        // And an empty record too.
        let _ = tree.predict(&[]);
    }

    #[test]
    fn disguised_attribute_tree_stays_close_to_plain_tree() {
        // Disguise the first (most informative) attribute with a moderately
        // strong RR matrix, correct the counts through the matrix inverse,
        // and check the learned tree is still much better than chance and
        // close to the plain tree.
        let train = training_data(8_000, 6);
        let test = training_data(2_000, 7);
        let domain = train.attribute(0).unwrap().num_categories();
        let m = warner(domain, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let disguised_column = disguise_dataset(&m, train.attribute(0).unwrap(), &mut rng)
            .unwrap()
            .disguised;
        let disguised_train = train.with_attribute(0, disguised_column).unwrap();

        let plain_views = vec![AttributeView::Plain; train.num_attributes()];
        let plain_tree = build_tree(&train, &plain_views, &TreeConfig::default()).unwrap();
        let plain_acc = accuracy(&plain_tree, &test).unwrap();

        let mut disguised_views = vec![AttributeView::Plain; train.num_attributes()];
        disguised_views[0] = AttributeView::Disguised(&m);
        let disguised_tree =
            build_tree(&disguised_train, &disguised_views, &TreeConfig::default()).unwrap();
        let disguised_acc = accuracy(&disguised_tree, &test).unwrap();

        assert!(plain_acc > 0.78, "plain accuracy {plain_acc}");
        assert!(disguised_acc > 0.6, "disguised accuracy {disguised_acc}");
        assert!(
            plain_acc - disguised_acc < 0.25,
            "disguised tree lost too much accuracy: {disguised_acc} vs {plain_acc}"
        );
    }

    #[test]
    fn single_class_data_yields_a_leaf() {
        // All labels identical: the tree must be a single leaf predicting it.
        let attrs = vec![CategoricalDataset::new(3, vec![0, 1, 2, 0, 1, 2]).unwrap()];
        let labels = CategoricalDataset::new(2, vec![1; 6]).unwrap();
        let data = LabeledDataset::new(attrs, labels).unwrap();
        let tree = build_tree(
            &data,
            &[AttributeView::Plain],
            &TreeConfig {
                max_depth: 4,
                min_split: 2,
            },
        )
        .unwrap();
        assert_eq!(tree, TreeNode::Leaf { class: 1 });
        assert_eq!(accuracy(&tree, &data).unwrap(), 1.0);
    }
}
