//! Apriori frequent-itemset and association-rule mining, over original or
//! disguised transaction data.
//!
//! This implements the classical level-wise Apriori algorithm with a
//! pluggable support oracle, so the same mining code runs:
//!
//! * directly on original transactions (exact supports), and
//! * on randomized-response-disguised transactions, where supports are
//!   *estimated* through the RR reconstruction of
//!   [`crate::transactions::estimate_support`] — the privacy-preserving
//!   setting of Rizvi & Haritsa / Evfimievski et al. that motivates the
//!   paper.

use crate::error::{MiningError, Result};
use crate::transactions::estimate_support;
use datagen::TransactionDataset;
use rr::RrMatrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A frequent itemset with its (estimated) support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// The items, sorted ascending.
    pub items: Vec<usize>,
    /// The (estimated) fraction of transactions containing all the items.
    pub support: f64,
}

/// An association rule `antecedent => consequent` with its support and
/// confidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Items on the left-hand side.
    pub antecedent: Vec<usize>,
    /// Items on the right-hand side.
    pub consequent: Vec<usize>,
    /// Support of the full itemset.
    pub support: f64,
    /// Confidence `support(antecedent ∪ consequent) / support(antecedent)`.
    pub confidence: f64,
}

/// A source of itemset supports: either the original transactions or a
/// disguised data set paired with the RR matrix used to disguise it.
pub enum SupportOracle<'a> {
    /// Exact supports from undisguised transactions.
    Exact(&'a TransactionDataset),
    /// Estimated supports reconstructed from disguised transactions.
    Reconstructed {
        /// The 2-category RR matrix each bit was disguised with.
        matrix: &'a RrMatrix,
        /// The disguised transactions.
        disguised: &'a TransactionDataset,
    },
}

impl SupportOracle<'_> {
    /// Number of distinct items in the universe.
    pub fn num_items(&self) -> usize {
        match self {
            SupportOracle::Exact(d) => d.num_items(),
            SupportOracle::Reconstructed { disguised, .. } => disguised.num_items(),
        }
    }

    /// The (estimated) support of an itemset.
    pub fn support(&self, itemset: &[usize]) -> Result<f64> {
        match self {
            SupportOracle::Exact(d) => Ok(d.support(itemset)),
            SupportOracle::Reconstructed { matrix, disguised } => {
                estimate_support(matrix, disguised, itemset)
            }
        }
    }
}

/// Configuration of the Apriori run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AprioriConfig {
    /// Minimum support for an itemset to be considered frequent.
    pub min_support: f64,
    /// Minimum confidence for a rule to be reported.
    pub min_confidence: f64,
    /// Maximum itemset size explored (bounds the exponential reconstruction
    /// cost in the disguised setting).
    pub max_itemset_size: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        Self {
            min_support: 0.1,
            min_confidence: 0.6,
            max_itemset_size: 4,
        }
    }
}

impl AprioriConfig {
    fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.min_support) {
            return Err(MiningError::InvalidParameter {
                name: "min_support",
                value: self.min_support,
                constraint: "must be in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.min_confidence) {
            return Err(MiningError::InvalidParameter {
                name: "min_confidence",
                value: self.min_confidence,
                constraint: "must be in [0, 1]",
            });
        }
        if self.max_itemset_size == 0 {
            return Err(MiningError::InvalidParameter {
                name: "max_itemset_size",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        Ok(())
    }
}

/// Runs level-wise Apriori against the given support oracle, returning all
/// frequent itemsets up to `max_itemset_size`.
pub fn frequent_itemsets(
    oracle: &SupportOracle<'_>,
    config: &AprioriConfig,
) -> Result<Vec<FrequentItemset>> {
    config.validate()?;
    let num_items = oracle.num_items();
    let mut all: Vec<FrequentItemset> = Vec::new();

    // Level 1: single items.
    let mut current_level: Vec<Vec<usize>> = Vec::new();
    for item in 0..num_items {
        let support = oracle.support(&[item])?;
        if support >= config.min_support {
            current_level.push(vec![item]);
            all.push(FrequentItemset {
                items: vec![item],
                support,
            });
        }
    }

    // Levels 2..=max: candidate generation by prefix join + prune, then
    // support counting through the oracle.
    let mut level = 1usize;
    while !current_level.is_empty() && level < config.max_itemset_size {
        level += 1;
        let frequent_prev: BTreeSet<Vec<usize>> = current_level.iter().cloned().collect();
        let mut next_level: Vec<Vec<usize>> = Vec::new();
        for i in 0..current_level.len() {
            for j in (i + 1)..current_level.len() {
                let a = &current_level[i];
                let b = &current_level[j];
                // Join when the first k-1 items agree.
                if a[..level - 2] != b[..level - 2] {
                    continue;
                }
                let mut candidate = a.clone();
                candidate.push(b[level - 2]);
                candidate.sort_unstable();
                candidate.dedup();
                if candidate.len() != level {
                    continue;
                }
                // Prune: every (k-1)-subset must be frequent.
                let all_subsets_frequent = (0..candidate.len()).all(|drop| {
                    let mut subset = candidate.clone();
                    subset.remove(drop);
                    frequent_prev.contains(&subset)
                });
                if !all_subsets_frequent {
                    continue;
                }
                let support = oracle.support(&candidate)?;
                if support >= config.min_support {
                    all.push(FrequentItemset {
                        items: candidate.clone(),
                        support,
                    });
                    next_level.push(candidate);
                }
            }
        }
        next_level.sort_unstable();
        next_level.dedup();
        current_level = next_level;
    }
    Ok(all)
}

/// Derives association rules from the frequent itemsets: for every frequent
/// itemset of size ≥ 2 and every non-empty proper subset as antecedent,
/// reports the rule when its confidence clears the threshold.
pub fn association_rules(
    oracle: &SupportOracle<'_>,
    itemsets: &[FrequentItemset],
    config: &AprioriConfig,
) -> Result<Vec<AssociationRule>> {
    config.validate()?;
    let mut rules = Vec::new();
    for itemset in itemsets.iter().filter(|s| s.items.len() >= 2) {
        let k = itemset.items.len();
        // Enumerate non-empty proper subsets via bitmasks.
        for mask in 1..((1usize << k) - 1) {
            let antecedent: Vec<usize> = (0..k)
                .filter(|bit| mask & (1 << bit) != 0)
                .map(|bit| itemset.items[bit])
                .collect();
            let consequent: Vec<usize> = (0..k)
                .filter(|bit| mask & (1 << bit) == 0)
                .map(|bit| itemset.items[bit])
                .collect();
            let antecedent_support = oracle.support(&antecedent)?;
            if antecedent_support <= 0.0 {
                continue;
            }
            let confidence = (itemset.support / antecedent_support).min(1.0);
            if confidence >= config.min_confidence {
                rules.push(AssociationRule {
                    antecedent,
                    consequent,
                    support: itemset.support,
                    confidence,
                });
            }
        }
    }
    Ok(rules)
}

/// Convenience wrapper: mines frequent itemsets and rules in one call.
pub fn mine(
    oracle: &SupportOracle<'_>,
    config: &AprioriConfig,
) -> Result<(Vec<FrequentItemset>, Vec<AssociationRule>)> {
    let itemsets = frequent_itemsets(oracle, config)?;
    let rules = association_rules(oracle, &itemsets, config)?;
    Ok((itemsets, rules))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::disguise_transactions;
    use datagen::transactions::{generate, TransactionConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rr::schemes::warner;

    fn planted_data(n: usize) -> TransactionDataset {
        generate(&TransactionConfig {
            num_items: 12,
            num_transactions: n,
            background_prob: 0.03,
            planted_itemsets: vec![(vec![0, 1], 0.35), (vec![2, 3, 4], 0.25)],
            seed: 11,
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(AprioriConfig::default().validate().is_ok());
        assert!(AprioriConfig {
            min_support: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(AprioriConfig {
            min_confidence: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(AprioriConfig {
            max_itemset_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        let oracle = SupportOracle::Exact(&planted_data(100));
        assert!(frequent_itemsets(
            &oracle,
            &AprioriConfig {
                min_support: 2.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn exact_mining_finds_planted_itemsets() {
        let data = planted_data(8_000);
        let oracle = SupportOracle::Exact(&data);
        let config = AprioriConfig {
            min_support: 0.15,
            min_confidence: 0.6,
            max_itemset_size: 3,
        };
        let (itemsets, rules) = mine(&oracle, &config).unwrap();

        let has = |items: &[usize]| itemsets.iter().any(|s| s.items == items);
        assert!(has(&[0]));
        assert!(has(&[1]));
        assert!(has(&[0, 1]), "planted pair must be frequent");
        assert!(has(&[2, 3, 4]), "planted triple must be frequent");
        // Background-only items are not frequent at 15%.
        assert!(!has(&[10]));
        // The planted pair produces high-confidence rules in both directions.
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![0] && r.consequent == vec![1] && r.confidence > 0.7));
    }

    #[test]
    fn supports_are_monotone_along_subsets() {
        let data = planted_data(5_000);
        let oracle = SupportOracle::Exact(&data);
        let config = AprioriConfig {
            min_support: 0.05,
            min_confidence: 0.5,
            max_itemset_size: 3,
        };
        let itemsets = frequent_itemsets(&oracle, &config).unwrap();
        for set in itemsets.iter().filter(|s| s.items.len() == 2) {
            for &item in &set.items {
                let single = itemsets
                    .iter()
                    .find(|s| s.items == vec![item])
                    .expect("subsets of frequent itemsets are frequent (Apriori property)");
                assert!(single.support >= set.support - 1e-12);
            }
        }
    }

    #[test]
    fn mining_disguised_data_recovers_the_same_top_itemsets() {
        let data = planted_data(20_000);
        let m = warner(2, 0.85).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let disguised = disguise_transactions(&m, &data, &mut rng).unwrap();

        let config = AprioriConfig {
            min_support: 0.18,
            min_confidence: 0.6,
            max_itemset_size: 3,
        };
        let exact = frequent_itemsets(&SupportOracle::Exact(&data), &config).unwrap();
        let reconstructed = frequent_itemsets(
            &SupportOracle::Reconstructed {
                matrix: &m,
                disguised: &disguised,
            },
            &config,
        )
        .unwrap();

        // The reconstructed run finds the same planted structures.
        let has = |sets: &[FrequentItemset], items: &[usize]| sets.iter().any(|s| s.items == items);
        assert!(has(&reconstructed, &[0, 1]));
        assert!(has(&reconstructed, &[2, 3, 4]));
        // And the estimated supports are close to the exact ones.
        for set in &exact {
            if let Some(est) = reconstructed.iter().find(|s| s.items == set.items) {
                assert!(
                    (est.support - set.support).abs() < 0.05,
                    "itemset {:?}: {} vs {}",
                    set.items,
                    est.support,
                    set.support
                );
            }
        }
    }

    #[test]
    fn rules_respect_confidence_threshold() {
        let data = planted_data(5_000);
        let oracle = SupportOracle::Exact(&data);
        let config = AprioriConfig {
            min_support: 0.1,
            min_confidence: 0.9,
            max_itemset_size: 2,
        };
        let (_, strict_rules) = mine(&oracle, &config).unwrap();
        for r in &strict_rules {
            assert!(r.confidence >= 0.9);
            assert!(r.support >= 0.1);
            assert!(!r.antecedent.is_empty());
            assert!(!r.consequent.is_empty());
        }
        let relaxed = AprioriConfig {
            min_confidence: 0.3,
            ..config
        };
        let (_, relaxed_rules) = mine(&oracle, &relaxed).unwrap();
        assert!(relaxed_rules.len() >= strict_rules.len());
    }

    #[test]
    fn empty_results_when_support_threshold_is_too_high() {
        let data = planted_data(1_000);
        let oracle = SupportOracle::Exact(&data);
        let config = AprioriConfig {
            min_support: 0.99,
            min_confidence: 0.5,
            max_itemset_size: 3,
        };
        let (itemsets, rules) = mine(&oracle, &config).unwrap();
        assert!(itemsets.is_empty());
        assert!(rules.is_empty());
    }
}
