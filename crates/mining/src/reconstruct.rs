//! Distribution reconstruction as a data-mining primitive.
//!
//! Every mining computation over randomized-response data reduces to
//! estimating probabilities of the original data from the disguised data.
//! This module wraps the two estimators of the `rr` crate behind a single
//! [`Reconstructor`] enum so the higher-level miners (association rules,
//! decision trees) can be run with either estimator — the configuration the
//! paper's Figure 5(d) validation uses.

use crate::error::Result;
use datagen::CategoricalDataset;
use rr::estimate::inversion::estimate_distribution;
use rr::estimate::iterative::{iterative_estimate, IterativeConfig};
use rr::RrMatrix;
use serde::{Deserialize, Serialize};
use stats::Categorical;

/// Which estimator to use when reconstructing original-data probabilities
/// from disguised data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Reconstructor {
    /// The matrix-inversion estimator of Theorem 1 (fast, closed form, but
    /// requires an invertible matrix).
    #[default]
    Inversion,
    /// The iterative EM-style estimator of Equation (3) (always on the
    /// simplex, works for singular matrices, slower).
    Iterative {
        /// Maximum iterations of the fixed-point update.
        max_iterations: usize,
        /// Convergence tolerance on the L1 change between iterates.
        tolerance: f64,
    },
}

impl Reconstructor {
    /// The iterative estimator with its default settings.
    pub fn iterative_default() -> Self {
        let cfg = IterativeConfig::default();
        Reconstructor::Iterative {
            max_iterations: cfg.max_iterations,
            tolerance: cfg.tolerance,
        }
    }

    /// Reconstructs the original-data distribution of a disguised data set.
    pub fn reconstruct(
        &self,
        matrix: &RrMatrix,
        disguised: &CategoricalDataset,
    ) -> Result<Categorical> {
        match self {
            Reconstructor::Inversion => Ok(estimate_distribution(matrix, disguised)?.distribution),
            Reconstructor::Iterative {
                max_iterations,
                tolerance,
            } => {
                let cfg = IterativeConfig {
                    max_iterations: *max_iterations,
                    tolerance: *tolerance,
                };
                Ok(iterative_estimate(matrix, disguised, &cfg)?.distribution)
            }
        }
    }

    /// Reconstructs the *count* of each original category (distribution
    /// scaled by the number of records), the quantity itemset-support and
    /// information-gain computations need.
    pub fn reconstruct_counts(
        &self,
        matrix: &RrMatrix,
        disguised: &CategoricalDataset,
    ) -> Result<Vec<f64>> {
        let dist = self.reconstruct(matrix, disguised)?;
        let n = disguised.len() as f64;
        Ok(dist.probs().iter().map(|p| p * n).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rr::disguise::disguise_dataset;
    use rr::schemes::warner;
    use stats::divergence::total_variation;

    fn workload() -> (Categorical, CategoricalDataset) {
        let p = Categorical::new(vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data = CategoricalDataset::new(4, p.sample_many(&mut rng, 30_000)).unwrap();
        (p, data)
    }

    #[test]
    fn both_reconstructors_recover_the_distribution() {
        let (p, data) = workload();
        let m = warner(4, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let disguised = disguise_dataset(&m, &data, &mut rng).unwrap().disguised;

        for reconstructor in [Reconstructor::Inversion, Reconstructor::iterative_default()] {
            let est = reconstructor.reconstruct(&m, &disguised).unwrap();
            let err = total_variation(&est, &p).unwrap();
            assert!(err < 0.03, "{reconstructor:?} error {err}");
        }
    }

    #[test]
    fn default_is_inversion() {
        assert_eq!(Reconstructor::default(), Reconstructor::Inversion);
    }

    #[test]
    fn iterative_handles_singular_matrices() {
        let (_, data) = workload();
        let m = RrMatrix::uniform(4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let disguised = disguise_dataset(&m, &data, &mut rng).unwrap().disguised;
        assert!(Reconstructor::Inversion
            .reconstruct(&m, &disguised)
            .is_err());
        assert!(Reconstructor::iterative_default()
            .reconstruct(&m, &disguised)
            .is_ok());
    }

    #[test]
    fn reconstructed_counts_scale_with_records() {
        let (p, data) = workload();
        let m = warner(4, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let disguised = disguise_dataset(&m, &data, &mut rng).unwrap().disguised;
        let counts = Reconstructor::Inversion
            .reconstruct_counts(&m, &disguised)
            .unwrap();
        assert_eq!(counts.len(), 4);
        let total: f64 = counts.iter().sum();
        assert!((total - data.len() as f64).abs() < 1.0);
        assert!((counts[0] / data.len() as f64 - p.prob(0)).abs() < 0.03);
    }
}
