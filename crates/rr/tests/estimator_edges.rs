//! Estimator edge cases: zero-count categories, singular and
//! near-singular channels forcing the inversion → iterative fallback, and
//! the paper's disguise → estimate round trip against the closed-form MSE
//! bound of Theorem 6.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rr::estimate::{
    estimate_from_counts, estimate_from_disguised_frequencies, iterative_estimate_from_frequencies,
    iterative_estimate_warm, IterativeConfig,
};
use rr::metrics::utility::utility;
use rr::schemes::warner;
use rr::RrMatrix;
use stats::divergence::mean_squared_error;
use stats::Categorical;

/// A column-stochastic matrix with two identical columns: categories 0 and
/// 1 are indistinguishable after disguise, so `M` is exactly singular and
/// the inversion estimator must fail while the iterative one still runs.
fn two_identical_columns() -> RrMatrix {
    let shared = linalg::Vector::from_vec(vec![0.5, 0.3, 0.2]);
    let third = linalg::Vector::from_vec(vec![0.2, 0.2, 0.6]);
    RrMatrix::from_columns(&[shared.clone(), shared, third]).unwrap()
}

#[test]
fn zero_count_categories_estimate_cleanly() {
    // Category 2 was never reported: the disguised MLE has a zero entry,
    // and both estimators must handle it without blowing up.
    let m = warner(4, 0.75).unwrap();
    let counts = [700u64, 250, 0, 50];
    let inverted = estimate_from_counts(&m, &counts).unwrap();
    assert!((inverted.distribution.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(inverted.distribution.probs().iter().all(|&p| p >= 0.0));

    let p_star = stats::Histogram::from_counts(counts.to_vec())
        .unwrap()
        .empirical_distribution()
        .unwrap();
    let iterated =
        iterative_estimate_from_frequencies(&m, &p_star, &IterativeConfig::default()).unwrap();
    assert!((iterated.distribution.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // The estimators agree on the channel they both inverted.
    let d =
        stats::divergence::total_variation(&inverted.distribution, &iterated.distribution).unwrap();
    assert!(d < 0.02, "inversion vs iterative distance {d}");
}

#[test]
fn singular_channel_forces_the_iterative_fallback() {
    let m = two_identical_columns();
    assert!(!m.is_invertible());
    let p = Categorical::new(vec![0.5, 0.3, 0.2]).unwrap();
    let p_star = m.disguised_distribution(&p).unwrap();

    // Inversion refuses the singular channel…
    assert!(estimate_from_disguised_frequencies(&m, &p_star).is_err());

    // …the iterative estimator still converges to a valid distribution
    // that reproduces the observed disguised distribution exactly (the
    // original is unidentifiable between the merged categories, but the
    // fixed point must explain the data).
    let out =
        iterative_estimate_from_frequencies(&m, &p_star, &IterativeConfig::default()).unwrap();
    let explained = m.disguised_distribution(&out.distribution).unwrap();
    assert!(explained.approx_eq(&p_star, 1e-6));
    // Total mass of the two merged categories is identified.
    let merged_mass = out.distribution.prob(0) + out.distribution.prob(1);
    assert!(
        (merged_mass - 0.8).abs() < 1e-6,
        "merged mass {merged_mass}"
    );
}

#[test]
fn near_singular_channel_keeps_both_estimators_consistent() {
    // Two columns a hair apart: invertible in exact arithmetic, horribly
    // conditioned in floating point. Inversion may produce a wild raw
    // vector, but its simplex projection and the iterative estimate must
    // still both explain the data.
    let eps = 1e-7;
    let a = linalg::Vector::from_vec(vec![0.5, 0.3, 0.2]);
    let b = linalg::Vector::from_vec(vec![0.5 - eps, 0.3 + eps, 0.2]);
    let c = linalg::Vector::from_vec(vec![0.2, 0.2, 0.6]);
    let m = RrMatrix::from_columns(&[a, b, c]).unwrap();
    let p = Categorical::new(vec![0.4, 0.35, 0.25]).unwrap();
    let p_star = m.disguised_distribution(&p).unwrap();

    let iterated =
        iterative_estimate_from_frequencies(&m, &p_star, &IterativeConfig::default()).unwrap();
    let explained = m.disguised_distribution(&iterated.distribution).unwrap();
    assert!(explained.approx_eq(&p_star, 1e-6));

    if let Ok(inverted) = estimate_from_disguised_frequencies(&m, &p_star) {
        let explained = m.disguised_distribution(&inverted.distribution).unwrap();
        assert!(explained.approx_eq(&p_star, 1e-4));
    }
}

#[test]
fn disguise_then_estimate_round_trip_meets_the_paper_mse_bound() {
    // The full loop of Section III: sample N records from P, disguise them
    // through M, reconstruct P̂, and score MSE(P̂, P). Theorem 6 gives the
    // expected MSE in closed form; one draw concentrates near it.
    let n_records = 10_000usize;
    let m = warner(5, 0.7).unwrap();
    let p = Categorical::new(vec![0.35, 0.25, 0.2, 0.12, 0.08]).unwrap();
    let expected_mse = utility(&m, &p, n_records as u64).unwrap();
    assert!(expected_mse > 0.0);

    let mut rng = StdRng::seed_from_u64(2008);
    let records = p.sample_many(&mut rng, n_records);
    let original = datagen::CategoricalDataset::new(5, records).unwrap();
    let disguised = rr::disguise_dataset(&m, &original, &mut rng)
        .unwrap()
        .disguised;
    let estimate = rr::estimate::estimate_distribution(&m, &disguised).unwrap();
    let observed_mse = mean_squared_error(&estimate.distribution, &p).unwrap();
    assert!(
        observed_mse <= 20.0 * expected_mse,
        "observed {observed_mse} vs closed-form {expected_mse}"
    );

    // Warm-starting the iterative estimator from the inversion estimate
    // converges faster than a cold uniform start and agrees with it.
    let p_star = disguised.empirical_distribution().unwrap();
    let config = IterativeConfig::default();
    let cold = iterative_estimate_from_frequencies(&m, &p_star, &config).unwrap();
    let warm = iterative_estimate_warm(&m, &p_star, &estimate.distribution, &config).unwrap();
    assert!(
        warm.iterations <= cold.iterations,
        "warm {} vs cold {}",
        warm.iterations,
        cold.iterations
    );
    assert!(warm.distribution.approx_eq(&cold.distribution, 1e-7));
}
