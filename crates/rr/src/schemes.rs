//! The classical randomized-response schemes the paper compares against
//! (Section III.B): Warner, Uniform Perturbation (UP), and FRAPP, plus the
//! identity and uniform degenerate matrices of Section III.C.
//!
//! * **Warner** — diagonal `p`, off-diagonal `(1-p)/(n-1)`.
//! * **Uniform Perturbation (UP)** — retain with probability `q`, otherwise
//!   replace with a uniformly random category: diagonal `q + (1-q)/n`,
//!   off-diagonal `(1-q)/n`.
//! * **FRAPP** — diagonal `λ/(λ+n-1)`, off-diagonal `1/(λ+n-1)`.
//!
//! Theorem 2 of the paper states the three parametrized families describe
//! the same set of matrices; `theorem2` below gives the explicit parameter
//! maps, and the tests (plus the `exp_theorem2` experiment binary) verify
//! the equivalence.

use crate::error::{Result, RrError};
use crate::matrix::RrMatrix;
use linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Which classical scheme a matrix was generated from (used for labeling
/// experiment output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Warner (1965) scheme.
    Warner,
    /// Uniform Perturbation (Agrawal, Srikant & Thomas, SIGMOD'05).
    UniformPerturbation,
    /// FRAPP (Agrawal & Haritsa, ICDE'05).
    Frapp,
}

/// Builds the Warner RR matrix for `n` categories with retention
/// probability `p` on the diagonal.
///
/// `p` must lie in `[0, 1]`. With `p = 1` this is the identity matrix;
/// with `p = 1/n` it is the uniform (singular) matrix.
pub fn warner(n: usize, p: f64) -> Result<RrMatrix> {
    if n < 2 {
        return Err(RrError::InvalidMatrix {
            reason: "need at least two categories",
        });
    }
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(RrError::InvalidParameter {
            name: "p",
            value: p,
            constraint: "must be in [0, 1]",
        });
    }
    let off = (1.0 - p) / (n as f64 - 1.0);
    let mut m = Matrix::filled(n, n, off);
    for i in 0..n {
        m[(i, i)] = p;
    }
    RrMatrix::new(m)
}

/// Builds the Uniform Perturbation RR matrix for `n` categories with
/// retention probability `q`.
///
/// Each value is retained with probability `q` and otherwise replaced by a
/// category drawn uniformly from the whole domain (which may reproduce the
/// original value), so the diagonal is `q + (1-q)/n`.
pub fn uniform_perturbation(n: usize, q: f64) -> Result<RrMatrix> {
    if n < 2 {
        return Err(RrError::InvalidMatrix {
            reason: "need at least two categories",
        });
    }
    if !(0.0..=1.0).contains(&q) || !q.is_finite() {
        return Err(RrError::InvalidParameter {
            name: "q",
            value: q,
            constraint: "must be in [0, 1]",
        });
    }
    let off = (1.0 - q) / n as f64;
    let mut m = Matrix::filled(n, n, off);
    for i in 0..n {
        m[(i, i)] = q + off;
    }
    RrMatrix::new(m)
}

/// Builds the FRAPP RR matrix for `n` categories with diagonal weight `λ`.
///
/// Entries are `λ/(λ+n-1)` on the diagonal and `1/(λ+n-1)` elsewhere.
/// `λ` must be non-negative; `λ = 1` gives the uniform matrix, large `λ`
/// approaches the identity.
pub fn frapp(n: usize, lambda: f64) -> Result<RrMatrix> {
    if n < 2 {
        return Err(RrError::InvalidMatrix {
            reason: "need at least two categories",
        });
    }
    if !(lambda >= 0.0) || !lambda.is_finite() {
        return Err(RrError::InvalidParameter {
            name: "lambda",
            value: lambda,
            constraint: "must be finite and non-negative",
        });
    }
    let denom = lambda + n as f64 - 1.0;
    let mut m = Matrix::filled(n, n, 1.0 / denom);
    for i in 0..n {
        m[(i, i)] = lambda / denom;
    }
    RrMatrix::new(m)
}

/// Parameter conversions proving Theorem 2: for any Warner parameter `p`
/// there exist `q` (UP) and `λ` (FRAPP) producing the *same* matrix, and
/// vice versa.
pub mod theorem2 {
    /// The UP parameter `q` whose matrix equals the Warner matrix with
    /// parameter `p` on `n` categories: `q = (p·n − 1) / (n − 1)`.
    ///
    /// Note `q` is only a valid probability when `p ≥ 1/n`; Warner matrices
    /// with `p < 1/n` (off-diagonal exceeding the diagonal) have no UP
    /// counterpart with `q ∈ [0, 1]`, which is why the paper's Theorem 2
    /// concerns the *solution sets* over the full parameter ranges rather
    /// than a pointwise bijection over `[0, 1]`.
    pub fn warner_to_up(n: usize, p: f64) -> f64 {
        (p * n as f64 - 1.0) / (n as f64 - 1.0)
    }

    /// The Warner parameter `p` whose matrix equals the UP matrix with
    /// parameter `q`: `p = q + (1 − q)/n`.
    pub fn up_to_warner(n: usize, q: f64) -> f64 {
        q + (1.0 - q) / n as f64
    }

    /// The FRAPP parameter `λ` whose matrix equals the Warner matrix with
    /// parameter `p`: `λ = p (n−1) / (1 − p)` (infinite at `p = 1`).
    pub fn warner_to_frapp(n: usize, p: f64) -> f64 {
        if p >= 1.0 {
            f64::INFINITY
        } else {
            p * (n as f64 - 1.0) / (1.0 - p)
        }
    }

    /// The Warner parameter `p` whose matrix equals the FRAPP matrix with
    /// parameter `λ`: `p = λ / (λ + n − 1)`.
    pub fn frapp_to_warner(n: usize, lambda: f64) -> f64 {
        if lambda.is_infinite() {
            1.0
        } else {
            lambda / (lambda + n as f64 - 1.0)
        }
    }
}

/// A named, parametrized scheme instance (used by the experiment harness to
/// sweep baselines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeInstance {
    /// Which family the matrix comes from.
    pub kind: SchemeKind,
    /// The family parameter (`p`, `q`, or `λ`).
    pub parameter: f64,
}

impl SchemeInstance {
    /// Materializes the RR matrix for `n` categories.
    pub fn build(&self, n: usize) -> Result<RrMatrix> {
        match self.kind {
            SchemeKind::Warner => warner(n, self.parameter),
            SchemeKind::UniformPerturbation => uniform_perturbation(n, self.parameter),
            SchemeKind::Frapp => frapp(n, self.parameter),
        }
    }
}

/// Sweeps the Warner scheme parameter `p` from 0 to 1 inclusive in `steps`
/// equal increments (the paper's methodology, §VI.B, uses a step of 0.001,
/// i.e. 1001 matrices). Matrices that are singular (p = 1/n exactly) are
/// still returned; the caller decides whether to keep them.
pub fn warner_sweep(n: usize, steps: usize) -> Result<Vec<(f64, RrMatrix)>> {
    if steps < 2 {
        return Err(RrError::InvalidParameter {
            name: "steps",
            value: steps as f64,
            constraint: "must be at least 2",
        });
    }
    let mut out = Vec::with_capacity(steps);
    for k in 0..steps {
        let p = k as f64 / (steps - 1) as f64;
        out.push((p, warner(n, p)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warner_matrix_entries() {
        let m = warner(4, 0.7).unwrap();
        assert!((m.theta(0, 0) - 0.7).abs() < 1e-12);
        assert!((m.theta(1, 0) - 0.1).abs() < 1e-12);
        assert!(m.is_symmetric());
        assert!(warner(4, 1.2).is_err());
        assert!(warner(4, -0.1).is_err());
        assert!(warner(1, 0.5).is_err());
        assert!(warner(4, f64::NAN).is_err());
    }

    #[test]
    fn warner_extremes_match_identity_and_uniform() {
        let id = warner(3, 1.0).unwrap();
        assert!(id.approx_eq(&RrMatrix::identity(3).unwrap(), 1e-12));
        let unif = warner(3, 1.0 / 3.0).unwrap();
        assert!(unif.approx_eq(&RrMatrix::uniform(3).unwrap(), 1e-12));
    }

    #[test]
    fn up_matrix_entries() {
        let m = uniform_perturbation(5, 0.5).unwrap();
        // diagonal q + (1-q)/n = 0.5 + 0.1 = 0.6; off-diagonal 0.1.
        assert!((m.theta(0, 0) - 0.6).abs() < 1e-12);
        assert!((m.theta(1, 0) - 0.1).abs() < 1e-12);
        assert!(uniform_perturbation(5, 1.5).is_err());
        assert!(uniform_perturbation(1, 0.5).is_err());
    }

    #[test]
    fn up_extremes() {
        // q = 1 retains everything: identity.
        assert!(uniform_perturbation(4, 1.0)
            .unwrap()
            .approx_eq(&RrMatrix::identity(4).unwrap(), 1e-12));
        // q = 0 replaces everything uniformly: the uniform matrix.
        assert!(uniform_perturbation(4, 0.0)
            .unwrap()
            .approx_eq(&RrMatrix::uniform(4).unwrap(), 1e-12));
    }

    #[test]
    fn frapp_matrix_entries() {
        let m = frapp(3, 4.0).unwrap();
        // denom = 4 + 2 = 6: diagonal 4/6, off 1/6.
        assert!((m.theta(0, 0) - 4.0 / 6.0).abs() < 1e-12);
        assert!((m.theta(2, 0) - 1.0 / 6.0).abs() < 1e-12);
        assert!(frapp(3, -1.0).is_err());
        assert!(frapp(3, f64::INFINITY).is_err());
        assert!(frapp(1, 2.0).is_err());
    }

    #[test]
    fn frapp_lambda_one_is_uniform() {
        assert!(frapp(5, 1.0)
            .unwrap()
            .approx_eq(&RrMatrix::uniform(5).unwrap(), 1e-12));
    }

    #[test]
    fn theorem2_warner_up_equivalence() {
        // For p >= 1/n the UP matrix with q = (p n - 1)/(n - 1) equals the
        // Warner matrix with parameter p.
        let n = 6;
        for &p in &[1.0 / 6.0, 0.3, 0.5, 0.75, 0.9, 1.0] {
            let q = theorem2::warner_to_up(n, p);
            assert!((0.0..=1.0).contains(&q), "q={q} for p={p}");
            let w = warner(n, p).unwrap();
            let u = uniform_perturbation(n, q).unwrap();
            assert!(w.approx_eq(&u, 1e-12), "p={p}, q={q}");
            // Round trip.
            assert!((theorem2::up_to_warner(n, q) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn theorem2_warner_frapp_equivalence() {
        let n = 6;
        for &p in &[0.2, 1.0 / 6.0, 0.4, 0.6, 0.85] {
            let lambda = theorem2::warner_to_frapp(n, p);
            let w = warner(n, p).unwrap();
            let f = frapp(n, lambda).unwrap();
            assert!(w.approx_eq(&f, 1e-12), "p={p}, lambda={lambda}");
            assert!((theorem2::frapp_to_warner(n, lambda) - p).abs() < 1e-12);
        }
        // p = 1 maps to infinite lambda, which maps back to p = 1.
        assert!(theorem2::warner_to_frapp(n, 1.0).is_infinite());
        assert!((theorem2::frapp_to_warner(n, f64::INFINITY) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scheme_instance_builds_correct_family() {
        let w = SchemeInstance {
            kind: SchemeKind::Warner,
            parameter: 0.8,
        }
        .build(4)
        .unwrap();
        assert!((w.theta(0, 0) - 0.8).abs() < 1e-12);
        let u = SchemeInstance {
            kind: SchemeKind::UniformPerturbation,
            parameter: 0.8,
        }
        .build(4)
        .unwrap();
        assert!((u.theta(0, 0) - 0.85).abs() < 1e-12);
        let f = SchemeInstance {
            kind: SchemeKind::Frapp,
            parameter: 3.0,
        }
        .build(4)
        .unwrap();
        assert!((f.theta(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warner_sweep_covers_the_range() {
        let sweep = warner_sweep(5, 11).unwrap();
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0].0, 0.0);
        assert_eq!(sweep[10].0, 1.0);
        assert!((sweep[5].0 - 0.5).abs() < 1e-12);
        assert!(sweep[10]
            .1
            .approx_eq(&RrMatrix::identity(5).unwrap(), 1e-12));
        assert!(warner_sweep(5, 1).is_err());
    }
}
