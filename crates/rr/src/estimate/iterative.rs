//! The iterative (EM-style) estimator of Equation (3).
//!
//! Starting from any strictly positive initial guess summing to one, each
//! iteration redistributes the observed disguised mass according to the
//! current posterior:
//!
//! ```text
//! P_{k+1}(X = c_j) = Σ_i  P*(Y = c_i) · θ_{i,j} P_k(X = c_j) / Σ_l θ_{i,l} P_k(X = c_l)
//! ```
//!
//! and the iteration stops when two consecutive estimates are close enough.
//! Unlike the inversion estimator this never needs `M⁻¹` (so it works for
//! singular matrices too) and always stays on the probability simplex, but
//! it has no closed-form error — which is exactly why the paper's optimizer
//! uses the inversion estimator during the search and only re-validates the
//! final Pareto set with this estimator (Figure 5(d)).

use crate::error::{Result, RrError};
use crate::matrix::RrMatrix;
use datagen::CategoricalDataset;
use serde::{Deserialize, Serialize};
use stats::Categorical;

/// Configuration of the iterative estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterativeConfig {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Convergence threshold on the L1 distance between consecutive
    /// estimates.
    pub tolerance: f64,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        Self {
            max_iterations: 10_000,
            tolerance: 1e-10,
        }
    }
}

/// The outcome of an iterative estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterativeOutcome {
    /// The estimated original distribution.
    pub distribution: Categorical,
    /// Number of iterations performed.
    pub iterations: usize,
    /// L1 distance between the last two iterates (convergence residual).
    pub residual: f64,
}

/// Runs the iterative estimator on a disguised data set.
pub fn iterative_estimate(
    m: &RrMatrix,
    disguised: &CategoricalDataset,
    config: &IterativeConfig,
) -> Result<IterativeOutcome> {
    if disguised.num_categories() != m.num_categories() {
        return Err(RrError::DimensionMismatch {
            matrix: m.num_categories(),
            data: disguised.num_categories(),
        });
    }
    if disguised.is_empty() {
        return Err(RrError::EmptyData);
    }
    let p_star = disguised.empirical_distribution()?;
    iterative_estimate_from_frequencies(m, &p_star, config)
}

/// Runs the iterative estimator directly on the disguised distribution,
/// starting from the uniform distribution.
pub fn iterative_estimate_from_frequencies(
    m: &RrMatrix,
    p_star: &Categorical,
    config: &IterativeConfig,
) -> Result<IterativeOutcome> {
    let n = m.num_categories();
    iterative_estimate_with_start(m, p_star, &vec![1.0 / n as f64; n], config)
}

/// Uniform blend weight applied to warm-start probabilities. A zero entry
/// is absorbing under the EM update (it can never regain mass), and an
/// entry merely *close* to zero moves so slowly that the residual can
/// fall under the tolerance before the iterate escapes the degenerate
/// corner. Blending the start with the uniform distribution at a weight
/// several orders of magnitude above the default tolerance fixes both:
/// every category starts with enough mass to move at full speed.
pub const WARM_START_BLEND: f64 = 1e-4;

/// Prepares an estimated posterior for handoff as an *optimization
/// target* (or as any other downstream prior): blends it with the uniform
/// distribution at weight `blend`, so every category keeps at least
/// `blend / n` mass.
///
/// A projected inversion estimate can contain exact zeros (a drifted
/// stream concentrated on one category produces them routinely), and a
/// zero-probability category is degenerate as an optimization prior: the
/// closed-form MSE stops weighing that category's reconstruction error,
/// so the optimizer is free to garble it. The blend is the same remedy
/// [`WARM_START_BLEND`] applies to warm-started EM runs, exposed for the
/// serving layer's drift-driven re-optimization, where the refresh run
/// targets the estimated distribution instead of the registered prior.
/// `blend` is clamped to `[0, 1]`; 0 returns the posterior unchanged.
pub fn handoff_posterior(posterior: &Categorical, blend: f64) -> Categorical {
    let blend = blend.clamp(0.0, 1.0);
    let n = posterior.num_categories() as f64;
    let floored: Vec<f64> = posterior
        .probs()
        .iter()
        .map(|p| (1.0 - blend) * p + blend / n)
        .collect();
    Categorical::new(floored).expect("a blend of two distributions is a distribution")
}

/// Runs the iterative estimator warm-started from a previous posterior.
///
/// This is the incremental mode of the streaming pipeline: after new
/// batches arrive, re-estimating resumes from the last estimate instead of
/// restarting from uniform, which converges in a handful of iterations
/// when the new batches only perturb the disguised distribution slightly.
/// The log-likelihood the update climbs is concave, so warm and cold runs
/// reach the same fixed point (to within the configured tolerance) — the
/// start only changes how far there is to travel.
pub fn iterative_estimate_warm(
    m: &RrMatrix,
    p_star: &Categorical,
    start: &Categorical,
    config: &IterativeConfig,
) -> Result<IterativeOutcome> {
    if start.num_categories() != m.num_categories() {
        return Err(RrError::DimensionMismatch {
            matrix: m.num_categories(),
            data: start.num_categories(),
        });
    }
    let n = start.num_categories() as f64;
    let start: Vec<f64> = start
        .probs()
        .iter()
        .map(|p| (1.0 - WARM_START_BLEND) * p + WARM_START_BLEND / n)
        .collect();
    iterative_estimate_with_start(m, p_star, &start, config)
}

/// The shared EM loop behind the cold and warm entry points.
fn iterative_estimate_with_start(
    m: &RrMatrix,
    p_star: &Categorical,
    start: &[f64],
    config: &IterativeConfig,
) -> Result<IterativeOutcome> {
    if p_star.num_categories() != m.num_categories() {
        return Err(RrError::DimensionMismatch {
            matrix: m.num_categories(),
            data: p_star.num_categories(),
        });
    }
    if config.max_iterations == 0 {
        return Err(RrError::InvalidParameter {
            name: "max_iterations",
            value: 0.0,
            constraint: "must be positive",
        });
    }
    if !(config.tolerance > 0.0) {
        return Err(RrError::InvalidParameter {
            name: "tolerance",
            value: config.tolerance,
            constraint: "must be positive",
        });
    }

    let n = m.num_categories();
    let mut current = start.to_vec();
    let mut residual = f64::INFINITY;

    for iteration in 1..=config.max_iterations {
        // Denominators: (M P_k)_i = Σ_l θ_{i,l} P_k(l).
        let mut denom = vec![0.0_f64; n];
        for (i, d) in denom.iter_mut().enumerate() {
            for (l, cl) in current.iter().enumerate() {
                *d += m.theta(i, l) * cl;
            }
        }
        // Update each category j.
        let mut next = vec![0.0_f64; n];
        for (j, slot) in next.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in 0..n {
                if denom[i] > 0.0 {
                    acc += p_star.prob(i) * (m.theta(i, j) * current[j]) / denom[i];
                }
            }
            *slot = acc;
        }
        // Normalize to protect against accumulated round-off.
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for v in &mut next {
                *v /= total;
            }
        }
        residual = current
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        current = next;
        if residual <= config.tolerance {
            return Ok(IterativeOutcome {
                distribution: Categorical::new(current)?,
                iterations: iteration,
                residual,
            });
        }
    }
    // The update is a contraction for reasonable matrices; failing to reach
    // the tolerance is still useful information, so report it as an error
    // the caller can downgrade if it wants the last iterate.
    Err(RrError::NoConvergence {
        iterations: config.max_iterations,
    })
    .map_err(|e| {
        // Preserve residual information in debug logs if ever needed.
        let _ = residual;
        e
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disguise::disguise_dataset;
    use crate::estimate::inversion::estimate_distribution;
    use crate::schemes::{uniform_perturbation, warner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stats::divergence::total_variation;

    fn sample_dataset(p: &Categorical, n: usize, seed: u64) -> CategoricalDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        CategoricalDataset::new(p.num_categories(), p.sample_many(&mut rng, n)).unwrap()
    }

    #[test]
    fn recovers_distribution_with_analytic_frequencies() {
        let m = warner(4, 0.7).unwrap();
        let p = Categorical::new(vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let p_star = m.disguised_distribution(&p).unwrap();
        let out =
            iterative_estimate_from_frequencies(&m, &p_star, &IterativeConfig::default()).unwrap();
        assert!(
            out.distribution.approx_eq(&p, 1e-6),
            "estimate {:?}",
            out.distribution
        );
        assert!(out.iterations > 0);
        assert!(out.residual <= 1e-10);
    }

    #[test]
    fn agrees_with_inversion_estimator_on_sampled_data() {
        let m = uniform_perturbation(5, 0.6).unwrap();
        let p = Categorical::new(vec![0.35, 0.25, 0.2, 0.15, 0.05]).unwrap();
        let original = sample_dataset(&p, 50_000, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let disguised = disguise_dataset(&m, &original, &mut rng).unwrap().disguised;

        let inv = estimate_distribution(&m, &disguised).unwrap();
        let itr = iterative_estimate(&m, &disguised, &IterativeConfig::default()).unwrap();
        let d = total_variation(&inv.distribution, &itr.distribution).unwrap();
        assert!(d < 0.02, "inversion vs iterative distance {d}");
        // Both close to the truth.
        assert!(total_variation(&itr.distribution, &p).unwrap() < 0.03);
    }

    #[test]
    fn works_for_singular_matrices_where_inversion_fails() {
        // The uniform matrix is singular: inversion fails, the iterative
        // estimator still returns a (noninformative) distribution.
        let m = RrMatrix::uniform(4).unwrap();
        let p = Categorical::new(vec![0.7, 0.1, 0.1, 0.1]).unwrap();
        let data = sample_dataset(&p, 5_000, 23);
        let mut rng = StdRng::seed_from_u64(24);
        let disguised = disguise_dataset(&m, &data, &mut rng).unwrap().disguised;
        assert!(estimate_distribution(&m, &disguised).is_err());
        let itr = iterative_estimate(&m, &disguised, &IterativeConfig::default()).unwrap();
        // With all information destroyed, the fixed point is the uniform start.
        assert!(itr
            .distribution
            .approx_eq(&Categorical::uniform(4).unwrap(), 1e-6));
    }

    #[test]
    fn identity_matrix_converges_immediately_to_empirical() {
        let m = RrMatrix::identity(3).unwrap();
        let data = CategoricalDataset::new(3, vec![0, 0, 1, 1, 1, 2]).unwrap();
        let out = iterative_estimate(&m, &data, &IterativeConfig::default()).unwrap();
        let emp = data.empirical_distribution().unwrap();
        assert!(out.distribution.approx_eq(&emp, 1e-9));
    }

    #[test]
    fn validation_errors() {
        let m = warner(3, 0.8).unwrap();
        let wrong = CategoricalDataset::new(4, vec![0, 1]).unwrap();
        assert!(matches!(
            iterative_estimate(&m, &wrong, &IterativeConfig::default()),
            Err(RrError::DimensionMismatch { .. })
        ));
        let empty = CategoricalDataset::new(3, vec![]).unwrap();
        assert!(matches!(
            iterative_estimate(&m, &empty, &IterativeConfig::default()),
            Err(RrError::EmptyData)
        ));
        let data = CategoricalDataset::new(3, vec![0, 1, 2]).unwrap();
        assert!(iterative_estimate(
            &m,
            &data,
            &IterativeConfig {
                max_iterations: 0,
                tolerance: 1e-9
            }
        )
        .is_err());
        assert!(iterative_estimate(
            &m,
            &data,
            &IterativeConfig {
                max_iterations: 10,
                tolerance: 0.0
            }
        )
        .is_err());
    }

    #[test]
    fn warm_start_resumes_and_agrees_with_the_cold_run() {
        let m = uniform_perturbation(5, 0.55).unwrap();
        let p = Categorical::new(vec![0.35, 0.25, 0.2, 0.15, 0.05]).unwrap();
        let p_star = m.disguised_distribution(&p).unwrap();
        let config = IterativeConfig::default();
        let cold = iterative_estimate_from_frequencies(&m, &p_star, &config).unwrap();
        // Resuming from the converged posterior is a handful of iterations,
        // strictly fewer than the cold run, and lands on the same answer.
        let warm = iterative_estimate_warm(&m, &p_star, &cold.distribution, &config).unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!(warm.distribution.approx_eq(&cold.distribution, 1e-8));
        assert!(warm.residual <= config.tolerance);
    }

    #[test]
    fn warm_start_tolerates_zero_probability_entries() {
        // A projected inversion estimate can contain exact zeros; a zero is
        // absorbing under the EM update, so the warm path must floor it.
        let m = warner(4, 0.7).unwrap();
        let p = Categorical::new(vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let p_star = m.disguised_distribution(&p).unwrap();
        let degenerate = Categorical::point_mass(4, 0).unwrap();
        let out =
            iterative_estimate_warm(&m, &p_star, &degenerate, &IterativeConfig::default()).unwrap();
        assert!(
            out.distribution.approx_eq(&p, 1e-6),
            "estimate {:?}",
            out.distribution
        );
    }

    #[test]
    fn handoff_posterior_floors_zeros_and_preserves_the_simplex() {
        let degenerate = Categorical::point_mass(4, 2).unwrap();
        let target = handoff_posterior(&degenerate, 1e-3);
        assert!((target.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (i, &p) in target.probs().iter().enumerate() {
            assert!(p >= 1e-3 / 4.0, "category {i} lost its floor: {p}");
        }
        assert!(
            target.prob(2) > 0.99,
            "the mass stays where the estimate put it"
        );
        // blend 0 is the identity; out-of-range blends are clamped.
        let p = Categorical::new(vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        assert!(handoff_posterior(&p, 0.0).approx_eq(&p, 1e-12));
        assert!(handoff_posterior(&p, 7.0).approx_eq(&Categorical::uniform(4).unwrap(), 1e-12));
        assert!(handoff_posterior(&p, -3.0).approx_eq(&p, 1e-12));
    }

    #[test]
    fn warm_start_validates_dimensions() {
        let m = warner(3, 0.8).unwrap();
        let p_star = Categorical::uniform(3).unwrap();
        let wrong = Categorical::uniform(4).unwrap();
        assert!(matches!(
            iterative_estimate_warm(&m, &p_star, &wrong, &IterativeConfig::default()),
            Err(RrError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn reports_no_convergence_when_budget_is_tiny() {
        let m = warner(6, 0.55).unwrap();
        let p = Categorical::new(vec![0.3, 0.25, 0.2, 0.1, 0.1, 0.05]).unwrap();
        let p_star = m.disguised_distribution(&p).unwrap();
        let result = iterative_estimate_from_frequencies(
            &m,
            &p_star,
            &IterativeConfig {
                max_iterations: 1,
                tolerance: 1e-14,
            },
        );
        assert!(matches!(
            result,
            Err(RrError::NoConvergence { iterations: 1 })
        ));
    }
}
