//! The inversion estimator of Theorem 1: `P̂ = M⁻¹ P̂*`.
//!
//! `P̂*` is the MLE of the disguised distribution — the vector of relative
//! frequencies `N_i / N` of the disguised data. When `M` is invertible the
//! resulting `P̂` is an unbiased MLE of the original distribution. Because
//! of sampling noise the raw estimate can leave the probability simplex;
//! the estimator therefore reports both the raw vector (used by the
//! closed-form utility analysis) and a simplex-projected distribution (used
//! by downstream mining).

use crate::error::{Result, RrError};
use crate::matrix::RrMatrix;
use datagen::CategoricalDataset;
use linalg::Vector;
use serde::{Deserialize, Serialize};
use stats::{Categorical, Histogram};

/// The result of an inversion estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InversionEstimate {
    /// The raw estimate `M⁻¹ P̂*` (may have entries slightly outside `[0,1]`
    /// because of sampling noise).
    pub raw: Vec<f64>,
    /// The estimate projected back onto the probability simplex.
    pub distribution: Categorical,
}

/// Estimates the original distribution from a disguised data set.
pub fn estimate_distribution(
    m: &RrMatrix,
    disguised: &CategoricalDataset,
) -> Result<InversionEstimate> {
    if disguised.num_categories() != m.num_categories() {
        return Err(RrError::DimensionMismatch {
            matrix: m.num_categories(),
            data: disguised.num_categories(),
        });
    }
    if disguised.is_empty() {
        return Err(RrError::EmptyData);
    }
    let p_star = disguised.empirical_distribution()?;
    estimate_from_disguised_frequencies(m, &p_star)
}

/// Estimates the original distribution from disguised category counts.
pub fn estimate_from_counts(m: &RrMatrix, counts: &[u64]) -> Result<InversionEstimate> {
    if counts.len() != m.num_categories() {
        return Err(RrError::DimensionMismatch {
            matrix: m.num_categories(),
            data: counts.len(),
        });
    }
    let hist = Histogram::from_counts(counts.to_vec())?;
    if hist.total() == 0 {
        return Err(RrError::EmptyData);
    }
    estimate_from_disguised_frequencies(m, &hist.empirical_distribution()?)
}

/// Estimates the original distribution from the disguised distribution
/// `P̂*` directly (Equation 2 of the paper).
pub fn estimate_from_disguised_frequencies(
    m: &RrMatrix,
    p_star: &Categorical,
) -> Result<InversionEstimate> {
    if p_star.num_categories() != m.num_categories() {
        return Err(RrError::DimensionMismatch {
            matrix: m.num_categories(),
            data: p_star.num_categories(),
        });
    }
    let inverse = m.inverse()?;
    let raw = inverse
        .mul_vector(&Vector::from_vec(p_star.probs().to_vec()))
        .map_err(RrError::from)?;
    let distribution = Categorical::new(raw.project_to_simplex().into_vec())?;
    Ok(InversionEstimate {
        raw: raw.into_vec(),
        distribution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disguise::disguise_dataset;
    use crate::schemes::warner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stats::divergence::total_variation;

    fn skewed_dataset(n_records: usize, seed: u64) -> (Categorical, CategoricalDataset) {
        let p = Categorical::new(vec![0.45, 0.25, 0.15, 0.10, 0.05]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let records = p.sample_many(&mut rng, n_records);
        (p, CategoricalDataset::new(5, records).unwrap())
    }

    #[test]
    fn exact_inversion_with_population_frequencies() {
        // When P* is computed analytically (no sampling noise), the
        // inversion recovers P exactly.
        let m = warner(5, 0.7).unwrap();
        let p = Categorical::new(vec![0.4, 0.3, 0.15, 0.1, 0.05]).unwrap();
        let p_star = m.disguised_distribution(&p).unwrap();
        let est = estimate_from_disguised_frequencies(&m, &p_star).unwrap();
        assert!(est.distribution.approx_eq(&p, 1e-9));
        for (raw, expected) in est.raw.iter().zip(p.probs()) {
            assert!((raw - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn estimate_converges_with_sample_size() {
        let m = warner(5, 0.6).unwrap();
        let (p, small) = skewed_dataset(500, 1);
        let (_, large) = skewed_dataset(200_000, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let disguised_small = disguise_dataset(&m, &small, &mut rng).unwrap().disguised;
        let disguised_large = disguise_dataset(&m, &large, &mut rng).unwrap().disguised;
        let est_small = estimate_distribution(&m, &disguised_small).unwrap();
        let est_large = estimate_distribution(&m, &disguised_large).unwrap();
        let err_small = total_variation(&est_small.distribution, &p).unwrap();
        let err_large = total_variation(&est_large.distribution, &p).unwrap();
        assert!(
            err_large < err_small,
            "large-sample error {err_large} should beat small-sample error {err_small}"
        );
        assert!(err_large < 0.02, "large-sample error {err_large}");
    }

    #[test]
    fn identity_matrix_estimate_is_the_empirical_distribution() {
        let m = RrMatrix::identity(5).unwrap();
        let (_, data) = skewed_dataset(10_000, 4);
        // With the identity matrix the "disguised" data are the original data.
        let est = estimate_distribution(&m, &data).unwrap();
        let emp = data.empirical_distribution().unwrap();
        assert!(est.distribution.approx_eq(&emp, 1e-12));
    }

    #[test]
    fn estimate_from_counts_matches_dataset_estimate() {
        let m = warner(3, 0.8).unwrap();
        let data = CategoricalDataset::new(3, vec![0, 0, 1, 2, 2, 2, 1, 0, 0, 2]).unwrap();
        let counts = data.histogram().counts().to_vec();
        let a = estimate_distribution(&m, &data).unwrap();
        let b = estimate_from_counts(&m, &counts).unwrap();
        assert!(a.distribution.approx_eq(&b.distribution, 1e-12));
    }

    #[test]
    fn validation_errors() {
        let m = warner(3, 0.8).unwrap();
        let wrong_dim = CategoricalDataset::new(4, vec![0, 1, 2, 3]).unwrap();
        assert!(matches!(
            estimate_distribution(&m, &wrong_dim),
            Err(RrError::DimensionMismatch { .. })
        ));
        let empty = CategoricalDataset::new(3, vec![]).unwrap();
        assert!(matches!(
            estimate_distribution(&m, &empty),
            Err(RrError::EmptyData)
        ));
        assert!(matches!(
            estimate_from_counts(&m, &[1, 2]),
            Err(RrError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            estimate_from_counts(&m, &[0, 0, 0]),
            Err(RrError::EmptyData)
        ));
        assert!(matches!(
            estimate_from_disguised_frequencies(&m, &Categorical::uniform(4).unwrap()),
            Err(RrError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn singular_matrix_is_reported() {
        let m = RrMatrix::uniform(3).unwrap();
        let data = CategoricalDataset::new(3, vec![0, 1, 2, 0]).unwrap();
        assert!(matches!(
            estimate_distribution(&m, &data),
            Err(RrError::SingularMatrix)
        ));
    }

    #[test]
    fn raw_estimate_can_leave_simplex_but_projection_fixes_it() {
        // With heavy disguise and a tiny sample the raw inverse estimate
        // frequently has negative components; the projected distribution
        // must still be a valid probability vector.
        let m = warner(5, 0.35).unwrap();
        let (_, data) = skewed_dataset(40, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let disguised = disguise_dataset(&m, &data, &mut rng).unwrap().disguised;
        let est = estimate_distribution(&m, &disguised).unwrap();
        assert!((est.distribution.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(est.distribution.probs().iter().all(|&p| p >= 0.0));
        // The raw estimate sums to one as well (M⁻¹ preserves the total),
        // even if individual entries stray outside [0, 1].
        let raw_sum: f64 = est.raw.iter().sum();
        assert!((raw_sum - 1.0).abs() < 1e-9);
    }
}
