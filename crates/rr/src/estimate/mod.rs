//! Distribution estimation from disguised data.
//!
//! Section III.A of the paper gives two ways to reconstruct the original
//! distribution `P(X)` from the disguised data `Y_s`:
//!
//! * the **inversion approach** (Theorem 1): `P̂ = M⁻¹ P̂*`, where `P̂*` is
//!   the vector of disguised-category relative frequencies — see
//!   [`inversion`];
//! * the **iterative approach** (Equation 3, from Agrawal, Srikant &
//!   Thomas): a fixed-point / EM-style update of the posterior
//!   redistribution — see [`iterative`].
//!
//! The paper's optimizer uses the inversion approach because it admits the
//! closed-form error of Theorem 6; Figure 5(d) re-scores the found matrices
//! under the iterative estimator, which `iterative` supports.

pub mod inversion;
pub mod iterative;

pub use inversion::{
    estimate_distribution, estimate_from_counts, estimate_from_disguised_frequencies,
};
pub use iterative::{
    handoff_posterior, iterative_estimate, iterative_estimate_from_frequencies,
    iterative_estimate_warm, IterativeConfig, IterativeOutcome, WARM_START_BLEND,
};
