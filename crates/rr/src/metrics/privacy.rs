//! The privacy metric (Section IV.A of the paper).
//!
//! Privacy quantifies how well an adversary can recover individual records
//! from their disguised values. Theorems 3 and 4 show the best the
//! adversary can do — with the 0/1 accuracy function of Equation (6) — is
//! the MAP estimate `X̂_Y = argmax_X P(X | Y)`, whether or not the adversary
//! is allowed to be inconsistent. The expected accuracy of that estimate is
//!
//! ```text
//! A = Σ_Y P(Y | X̂_Y) · P(X̂_Y)
//! ```
//!
//! and privacy is defined as `1 − A` (Equation 8). This module also exposes
//! an empirical adversary simulation used to validate the closed form.

use crate::error::{Result, RrError};
use crate::matrix::RrMatrix;
use crate::metrics::bounds::posterior_matrix;
use datagen::CategoricalDataset;
use serde::{Deserialize, Serialize};
use stats::Categorical;

/// The full privacy analysis of an RR matrix against a prior distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyAnalysis {
    /// The MAP estimate `X̂_Y` for each observed value `Y` (index = observed
    /// category, value = estimated original category).
    pub map_estimates: Vec<usize>,
    /// The expected adversary accuracy `A` of Equation (8)'s derivation.
    pub adversary_accuracy: f64,
    /// Privacy `= 1 − A`.
    pub privacy: f64,
    /// The worst-case posterior `max_Y P(X̂_Y | Y)` that the δ bound of
    /// Equation (9) constrains.
    pub max_posterior: f64,
}

/// Computes the MAP estimate `X̂_Y` for every observed value `Y`.
pub fn map_estimates(m: &RrMatrix, prior: &Categorical) -> Result<Vec<usize>> {
    let q = posterior_matrix(m, prior)?;
    let n = m.num_categories();
    let mut estimates = Vec::with_capacity(n);
    for i in 0..n {
        let row = q.row(i).map_err(RrError::from)?;
        estimates.push(row.argmax().unwrap_or(0));
    }
    Ok(estimates)
}

/// Computes the expected adversary accuracy
/// `A = Σ_Y P(Y | X̂_Y) · P(X̂_Y)` (the simplified form derived in §IV.A).
pub fn adversary_accuracy(m: &RrMatrix, prior: &Categorical) -> Result<f64> {
    let analysis = analyze(m, prior)?;
    Ok(analysis.adversary_accuracy)
}

/// Computes privacy `= 1 − A`.
pub fn privacy(m: &RrMatrix, prior: &Categorical) -> Result<f64> {
    let analysis = analyze(m, prior)?;
    Ok(analysis.privacy)
}

/// Computes the full privacy analysis in one pass.
pub fn analyze(m: &RrMatrix, prior: &Categorical) -> Result<PrivacyAnalysis> {
    let n = m.num_categories();
    if prior.num_categories() != n {
        return Err(RrError::DimensionMismatch {
            matrix: n,
            data: prior.num_categories(),
        });
    }
    let q = posterior_matrix(m, prior)?;

    let mut estimates = Vec::with_capacity(n);
    let mut accuracy = 0.0;
    let mut max_post: f64 = 0.0;

    for i in 0..n {
        // Posterior row for observed value Y = c_i.
        let row = q.row(i).map_err(RrError::from)?;
        let x_hat = row.argmax().unwrap_or(0);
        estimates.push(x_hat);
        max_post = max_post.max(row[x_hat]);
        // A contribution: P(Y = c_i | X = x_hat) * P(X = x_hat)
        //              = θ_{i, x_hat} * P(x_hat)
        // which equals P(x_hat | Y = c_i) * P(Y = c_i) by Bayes' rule.
        accuracy += m.theta(i, x_hat) * prior.prob(x_hat);
    }

    Ok(PrivacyAnalysis {
        map_estimates: estimates,
        adversary_accuracy: accuracy,
        privacy: 1.0 - accuracy,
        max_posterior: max_post,
    })
}

/// Simulates the MAP adversary on actual paired (original, disguised)
/// records and returns the empirical accuracy — used by tests and the
/// experiment harness to validate the closed-form `A`.
pub fn empirical_adversary_accuracy(
    m: &RrMatrix,
    prior: &Categorical,
    pairs: &[(usize, usize)],
) -> Result<f64> {
    if pairs.is_empty() {
        return Err(RrError::EmptyData);
    }
    let estimates = map_estimates(m, prior)?;
    let n = m.num_categories();
    let mut correct = 0usize;
    for &(original, disguised) in pairs {
        if original >= n || disguised >= n {
            return Err(RrError::DimensionMismatch {
                matrix: n,
                data: original.max(disguised) + 1,
            });
        }
        if estimates[disguised] == original {
            correct += 1;
        }
    }
    Ok(correct as f64 / pairs.len() as f64)
}

/// Convenience wrapper: analyzes privacy using the *empirical* distribution
/// of an original data set as the prior (the setting of the paper's
/// experiments, where the data owner evaluates a candidate matrix against
/// the data set being disguised).
pub fn analyze_for_dataset(m: &RrMatrix, original: &CategoricalDataset) -> Result<PrivacyAnalysis> {
    let prior = original.empirical_distribution()?;
    analyze(m, &prior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disguise::disguise_paired;
    use crate::schemes::{uniform_perturbation, warner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prior() -> Categorical {
        Categorical::new(vec![0.5, 0.3, 0.2]).unwrap()
    }

    #[test]
    fn identity_matrix_has_zero_privacy() {
        // M1 from the paper: no disguise, adversary always right.
        let m = RrMatrix::identity(3).unwrap();
        let a = analyze(&m, &prior()).unwrap();
        assert!((a.adversary_accuracy - 1.0).abs() < 1e-12);
        assert!(a.privacy.abs() < 1e-12);
        assert_eq!(a.map_estimates, vec![0, 1, 2]);
        assert!((a.max_posterior - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_matrix_has_maximal_privacy_for_the_prior() {
        // M2 from the paper: all information destroyed. The adversary's
        // best move is to always guess the mode of the prior, so accuracy
        // equals max_X P(X) and privacy equals 1 - max_X P(X).
        let m = RrMatrix::uniform(3).unwrap();
        let p = prior();
        let a = analyze(&m, &p).unwrap();
        assert!((a.adversary_accuracy - p.max_prob()).abs() < 1e-12);
        assert!((a.privacy - (1.0 - p.max_prob())).abs() < 1e-12);
        assert!(a.map_estimates.iter().all(|&e| e == p.mode()));
    }

    #[test]
    fn privacy_decreases_as_retention_grows() {
        let p = prior();
        let mut last = f64::INFINITY;
        for &param in &[0.34, 0.5, 0.7, 0.9, 1.0] {
            let m = warner(3, param).unwrap();
            let priv_val = privacy(&m, &p).unwrap();
            assert!(
                priv_val <= last + 1e-12,
                "privacy should not increase with p: {priv_val} after {last}"
            );
            last = priv_val;
        }
    }

    #[test]
    fn privacy_is_within_bounds() {
        let p = Categorical::new(vec![0.4, 0.25, 0.2, 0.1, 0.05]).unwrap();
        for k in 1..=10 {
            let m = warner(5, 0.2 + 0.08 * k as f64).unwrap();
            let a = analyze(&m, &p).unwrap();
            assert!(a.privacy >= -1e-12);
            // Privacy can never exceed 1 - max prior (Theorem 5 corollary).
            assert!(a.privacy <= 1.0 - p.max_prob() + 1e-9);
            assert!(a.adversary_accuracy >= p.max_prob() - 1e-9);
            assert!(a.adversary_accuracy <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn hand_computed_accuracy_for_warner() {
        // Warner p=0.7, prior (0.5, 0.3, 0.2). Posterior argmax for every
        // observed value is category 0? Check: for Y=c1, numerators are
        // 0.15*0.5=0.075 (X=0), 0.7*0.3=0.21 (X=1), 0.15*0.2=0.03 -> MAP=1.
        // For Y=c2: 0.075, 0.045, 0.14 -> MAP=2. For Y=c0: 0.35, .045, .03 -> 0.
        // A = θ_{0,0} P(0) + θ_{1,1} P(1) + θ_{2,2} P(2) = 0.7*(0.5+0.3+0.2) = 0.7
        let m = warner(3, 0.7).unwrap();
        let a = analyze(&m, &prior()).unwrap();
        assert_eq!(a.map_estimates, vec![0, 1, 2]);
        assert!((a.adversary_accuracy - 0.7).abs() < 1e-12);
        assert!((a.privacy - 0.3).abs() < 1e-12);
    }

    #[test]
    fn skewed_prior_pulls_map_estimates_to_the_mode() {
        // With a strongly skewed prior and heavy disguise, the MAP estimate
        // ignores the observation and always answers the mode.
        let p = Categorical::new(vec![0.9, 0.05, 0.05]).unwrap();
        let m = warner(3, 0.4).unwrap();
        let a = analyze(&m, &p).unwrap();
        assert!(a.map_estimates.iter().all(|&e| e == 0));
        // Accuracy is then P(Y | X=0 chosen) summed = Σ_Y θ_{Y,0} * 0.9 = 0.9.
        assert!((a.adversary_accuracy - 0.9).abs() < 1e-12);
    }

    #[test]
    fn closed_form_accuracy_matches_simulation() {
        let p = Categorical::new(vec![0.45, 0.3, 0.15, 0.1]).unwrap();
        let m = uniform_perturbation(4, 0.5).unwrap();
        // Draw originals from the prior, disguise them, run the MAP attacker.
        let mut rng = StdRng::seed_from_u64(31);
        let originals = CategoricalDataset::new(4, p.sample_many(&mut rng, 100_000)).unwrap();
        let pairs = disguise_paired(&m, &originals, &mut rng).unwrap();
        let empirical = empirical_adversary_accuracy(&m, &p, &pairs).unwrap();
        let closed = adversary_accuracy(&m, &p).unwrap();
        assert!(
            (empirical - closed).abs() < 0.01,
            "empirical {empirical} vs closed-form {closed}"
        );
    }

    #[test]
    fn analyze_for_dataset_uses_empirical_prior() {
        let data = CategoricalDataset::new(3, vec![0, 0, 0, 1, 1, 2]).unwrap();
        let m = warner(3, 0.8).unwrap();
        let via_dataset = analyze_for_dataset(&m, &data).unwrap();
        let via_prior = analyze(&m, &data.empirical_distribution().unwrap()).unwrap();
        assert_eq!(via_dataset, via_prior);
        let empty = CategoricalDataset::new(3, vec![]).unwrap();
        assert!(analyze_for_dataset(&m, &empty).is_err());
    }

    #[test]
    fn validation_errors() {
        let m = warner(3, 0.8).unwrap();
        assert!(matches!(
            analyze(&m, &Categorical::uniform(4).unwrap()),
            Err(RrError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            empirical_adversary_accuracy(&m, &prior(), &[]),
            Err(RrError::EmptyData)
        ));
        assert!(empirical_adversary_accuracy(&m, &prior(), &[(0, 7)]).is_err());
    }

    use crate::matrix::RrMatrix;
}
