//! Posterior probabilities `P(X | Y)` and the worst-case privacy bound
//! `max_Y P(X̂_Y | Y) ≤ δ` (Equation 9 of the paper).
//!
//! For a disguised value `Y = c_i`, Bayes' rule gives
//!
//! ```text
//! P(X = c_j | Y = c_i) = θ_{i,j} P(X = c_j) / Σ_l θ_{i,l} P(X = c_l)
//! ```
//!
//! The matrix of those posteriors drives both the privacy metric (the MAP
//! estimate picks the largest entry of each row) and the δ-bound repair
//! step of the optimizer. Theorem 5 shows the bound can never be pushed
//! below `max_X P(X)`, the largest prior probability.

use crate::error::{Result, RrError};
use crate::matrix::RrMatrix;
use linalg::Matrix;
use stats::Categorical;

/// Computes the posterior matrix `Q` with `Q[(i, j)] = P(X = c_j | Y = c_i)`.
///
/// Rows correspond to observed (disguised) values, columns to original
/// values; each row sums to one unless the observed value has zero
/// probability under the prior and matrix (in which case the row is all
/// zeros).
pub fn posterior_matrix(m: &RrMatrix, prior: &Categorical) -> Result<Matrix> {
    let n = m.num_categories();
    if prior.num_categories() != n {
        return Err(RrError::DimensionMismatch {
            matrix: n,
            data: prior.num_categories(),
        });
    }
    let mut q = Matrix::zeros(n, n);
    for i in 0..n {
        // P(Y = c_i) = Σ_l θ_{i,l} P(X = c_l)
        let mut p_y = 0.0;
        for l in 0..n {
            p_y += m.theta(i, l) * prior.prob(l);
        }
        if p_y <= 0.0 {
            continue; // unreachable disguised value: leave the row at zero
        }
        for j in 0..n {
            q[(i, j)] = m.theta(i, j) * prior.prob(j) / p_y;
        }
    }
    Ok(q)
}

/// The largest posterior probability over all observed values and original
/// values: `max_{Y, X} P(X | Y)`. This is the quantity the paper bounds by
/// `δ` (Equation 9).
pub fn max_posterior(m: &RrMatrix, prior: &Categorical) -> Result<f64> {
    let q = posterior_matrix(m, prior)?;
    Ok(q.max_abs())
}

/// Whether the RR matrix satisfies the worst-case bound
/// `max P(X | Y) ≤ δ` for the given prior (within `tol`).
pub fn satisfies_delta_bound(
    m: &RrMatrix,
    prior: &Categorical,
    delta: f64,
    tol: f64,
) -> Result<bool> {
    if !(0.0 < delta && delta <= 1.0) {
        return Err(RrError::InvalidParameter {
            name: "delta",
            value: delta,
            constraint: "must be in (0, 1]",
        });
    }
    Ok(max_posterior(m, prior)? <= delta + tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::warner;

    fn prior() -> Categorical {
        Categorical::new(vec![0.5, 0.3, 0.2]).unwrap()
    }

    #[test]
    fn posterior_rows_sum_to_one() {
        let m = warner(3, 0.7).unwrap();
        let q = posterior_matrix(&m, &prior()).unwrap();
        for i in 0..3 {
            let s: f64 = (0..3).map(|j| q[(i, j)]).sum();
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn posterior_matches_hand_computation() {
        // Warner p=0.7 on 3 categories, prior (0.5, 0.3, 0.2).
        // P(Y=c0) = 0.7*0.5 + 0.15*0.3 + 0.15*0.2 = 0.425
        // P(X=c0 | Y=c0) = 0.7*0.5 / 0.425
        let m = warner(3, 0.7).unwrap();
        let q = posterior_matrix(&m, &prior()).unwrap();
        assert!((q[(0, 0)] - 0.35 / 0.425).abs() < 1e-12);
        assert!((q[(0, 1)] - 0.045 / 0.425).abs() < 1e-12);
        assert!((q[(0, 2)] - 0.03 / 0.425).abs() < 1e-12);
    }

    #[test]
    fn identity_matrix_has_certain_posteriors() {
        let m = RrMatrix::identity(3).unwrap();
        let q = posterior_matrix(&m, &prior()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((q[(i, j)] - expected).abs() < 1e-12);
            }
        }
        assert!((max_posterior(&m, &prior()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_matrix_posterior_equals_prior() {
        // With all information destroyed the posterior is just the prior,
        // so max posterior equals max prior (the Theorem 5 lower bound).
        let m = RrMatrix::uniform(3).unwrap();
        let p = prior();
        let q = posterior_matrix(&m, &p).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((q[(i, j)] - p.prob(j)).abs() < 1e-12);
            }
        }
        assert!((max_posterior(&m, &p).unwrap() - p.max_prob()).abs() < 1e-12);
    }

    #[test]
    fn theorem5_max_posterior_at_least_max_prior() {
        // For a spread of Warner parameters the maximum posterior never
        // drops below the maximum prior probability.
        let p = Categorical::new(vec![0.6, 0.25, 0.1, 0.05]).unwrap();
        for k in 0..=20 {
            let param = k as f64 / 20.0;
            let m = warner(4, param).unwrap();
            let mp = max_posterior(&m, &p).unwrap();
            assert!(
                mp >= p.max_prob() - 1e-9,
                "p={param}: max posterior {mp} < max prior {}",
                p.max_prob()
            );
        }
    }

    #[test]
    fn zero_probability_disguised_values_yield_zero_rows() {
        // A prior concentrated on category 0 and an identity matrix: the
        // disguised values 1 and 2 are unreachable.
        let m = RrMatrix::identity(3).unwrap();
        let p = Categorical::new(vec![1.0, 0.0, 0.0]).unwrap();
        let q = posterior_matrix(&m, &p).unwrap();
        for j in 0..3 {
            assert_eq!(q[(1, j)], 0.0);
            assert_eq!(q[(2, j)], 0.0);
        }
    }

    #[test]
    fn delta_bound_checks() {
        let p = prior();
        let strong_disguise = warner(3, 0.45).unwrap();
        let weak_disguise = warner(3, 0.95).unwrap();
        assert!(satisfies_delta_bound(&strong_disguise, &p, 0.8, 1e-9).unwrap());
        assert!(!satisfies_delta_bound(&weak_disguise, &p, 0.8, 1e-9).unwrap());
        // Invalid delta values rejected.
        assert!(satisfies_delta_bound(&weak_disguise, &p, 0.0, 1e-9).is_err());
        assert!(satisfies_delta_bound(&weak_disguise, &p, 1.5, 1e-9).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let m = warner(3, 0.7).unwrap();
        let wrong = Categorical::uniform(4).unwrap();
        assert!(matches!(
            posterior_matrix(&m, &wrong),
            Err(RrError::DimensionMismatch { .. })
        ));
    }

    use crate::matrix::RrMatrix;
}
