//! The utility metric (Section IV.B of the paper).
//!
//! Utility quantifies how accurately the original distribution can be
//! reconstructed from the disguised data. The paper uses the mean squared
//! error of the (unbiased) inversion estimator, which Theorem 6 expresses
//! in closed form from the entries `β_{k,i}` of `M⁻¹` and the multinomial
//! variance/covariance of the disguised-category frequencies:
//!
//! ```text
//! MSE(X = c_k) = Σ_i β_{k,i}² Var(N_i/N)
//!              + Σ_{i≠j} 2 β_{k,i} β_{k,j} Cov(N_i/N, N_j/N)
//! ```
//!
//! and overall utility is the per-category average (Equation 10). Because
//! utility is an error, **lower is better** throughout the workspace.

use crate::error::{Result, RrError};
use crate::matrix::RrMatrix;
use serde::{Deserialize, Serialize};
use stats::multinomial::{frequency_covariance, frequency_variance};
use stats::Categorical;

/// Per-category and averaged closed-form MSE of the inversion estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityAnalysis {
    /// `MSE(X = c_k)` for every category `k` (Theorem 6).
    pub per_category: Vec<f64>,
    /// The average MSE over categories (Equation 10); lower is better.
    pub mean: f64,
}

/// Computes the closed-form per-category MSE of Theorem 6 for a data set of
/// `n_records` records whose original distribution is `original`.
pub fn theoretical_mse_per_category(
    m: &RrMatrix,
    original: &Categorical,
    n_records: u64,
) -> Result<Vec<f64>> {
    let n = m.num_categories();
    if original.num_categories() != n {
        return Err(RrError::DimensionMismatch {
            matrix: n,
            data: original.num_categories(),
        });
    }
    if n_records == 0 {
        return Err(RrError::EmptyData);
    }
    // β = M⁻¹ (fails for singular matrices, as the paper requires).
    let beta = m.inverse()?;
    // The disguised distribution P(Y) = M P(X) feeds the multinomial moments.
    let disguised = m.disguised_distribution(original)?;

    let mut per_category = Vec::with_capacity(n);
    for k in 0..n {
        let mut mse = 0.0;
        for i in 0..n {
            let b_ki = beta[(k, i)];
            mse += b_ki * b_ki * frequency_variance(&disguised, i, n_records)?;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let b_kj = beta[(k, j)];
                mse += b_ki * b_kj * frequency_covariance(&disguised, i, j, n_records)?;
            }
        }
        per_category.push(mse.max(0.0));
    }
    Ok(per_category)
}

/// Computes the full utility analysis (per-category MSE plus the average of
/// Equation 10).
pub fn theoretical_mse(
    m: &RrMatrix,
    original: &Categorical,
    n_records: u64,
) -> Result<UtilityAnalysis> {
    let per_category = theoretical_mse_per_category(m, original, n_records)?;
    let mean = per_category.iter().sum::<f64>() / per_category.len() as f64;
    Ok(UtilityAnalysis { per_category, mean })
}

/// The utility value used by the optimizer: the average closed-form MSE
/// (lower is better).
pub fn utility(m: &RrMatrix, original: &Categorical, n_records: u64) -> Result<f64> {
    Ok(theoretical_mse(m, original, n_records)?.mean)
}

/// Empirically measures the average MSE of an arbitrary estimator by Monte
/// Carlo: repeatedly samples an original data set from `original`, disguises
/// it with `m`, runs `estimator` on the disguised counts, and averages the
/// squared reconstruction error per category.
///
/// This is how Figure 5(d) re-scores the optimal set under the iterative
/// estimator, and how the tests validate Theorem 6's closed form against
/// simulation (using the inversion estimator).
pub fn empirical_mse<R, F>(
    m: &RrMatrix,
    original: &Categorical,
    n_records: u64,
    trials: usize,
    rng: &mut R,
    mut estimator: F,
) -> Result<f64>
where
    R: rand::Rng + ?Sized,
    F: FnMut(&RrMatrix, &[u64]) -> Result<Vec<f64>>,
{
    if trials == 0 {
        return Err(RrError::InvalidParameter {
            name: "trials",
            value: 0.0,
            constraint: "must be positive",
        });
    }
    if n_records == 0 {
        return Err(RrError::EmptyData);
    }
    let n = m.num_categories();
    if original.num_categories() != n {
        return Err(RrError::DimensionMismatch {
            matrix: n,
            data: original.num_categories(),
        });
    }
    // Pre-build the per-category randomization distributions once.
    let columns: Vec<Categorical> = (0..n)
        .map(|i| m.randomization_distribution(i))
        .collect::<Result<_>>()?;

    let mut total_sq_err = 0.0;
    for _ in 0..trials {
        // Draw an original data set and disguise it record by record.
        let mut disguised_counts = vec![0u64; n];
        for _ in 0..n_records {
            let x = original.sample(rng);
            let y = columns[x].sample(rng);
            disguised_counts[y] += 1;
        }
        let estimate = estimator(m, &disguised_counts)?;
        if estimate.len() != n {
            return Err(RrError::DimensionMismatch {
                matrix: n,
                data: estimate.len(),
            });
        }
        for k in 0..n {
            let err = estimate[k] - original.prob(k);
            total_sq_err += err * err;
        }
    }
    Ok(total_sq_err / (trials as f64 * n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::inversion::estimate_from_counts;
    use crate::schemes::warner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn original() -> Categorical {
        Categorical::new(vec![0.4, 0.3, 0.2, 0.1]).unwrap()
    }

    #[test]
    fn identity_matrix_mse_is_pure_sampling_error() {
        // With the identity matrix, β = I and the MSE of category k is just
        // Var(N_k / N) = P(k)(1-P(k))/N.
        let m = RrMatrix::identity(4).unwrap();
        let p = original();
        let n_records = 1_000u64;
        let analysis = theoretical_mse(&m, &p, n_records).unwrap();
        for k in 0..4 {
            let expected = p.prob(k) * (1.0 - p.prob(k)) / n_records as f64;
            assert!(
                (analysis.per_category[k] - expected).abs() < 1e-15,
                "category {k}"
            );
        }
        let expected_mean: f64 = (0..4)
            .map(|k| p.prob(k) * (1.0 - p.prob(k)) / n_records as f64)
            .sum::<f64>()
            / 4.0;
        assert!((analysis.mean - expected_mean).abs() < 1e-15);
    }

    #[test]
    fn mse_grows_as_disguise_strengthens() {
        // Heavier disguise (p closer to 1/n) means a worse-conditioned M and
        // a larger reconstruction error.
        let p = original();
        let mut last = 0.0;
        for &param in &[1.0, 0.9, 0.7, 0.5, 0.35] {
            let m = warner(4, param).unwrap();
            let u = utility(&m, &p, 10_000).unwrap();
            assert!(
                u >= last - 1e-15,
                "utility (MSE) should grow as p decreases: {u} after {last}"
            );
            last = u;
        }
    }

    #[test]
    fn mse_shrinks_linearly_with_record_count() {
        let m = warner(4, 0.7).unwrap();
        let p = original();
        let mse_small = utility(&m, &p, 1_000).unwrap();
        let mse_large = utility(&m, &p, 10_000).unwrap();
        assert!((mse_small / mse_large - 10.0).abs() < 1e-6);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let m = RrMatrix::uniform(4).unwrap();
        assert!(matches!(
            utility(&m, &original(), 1_000),
            Err(RrError::SingularMatrix)
        ));
    }

    #[test]
    fn validation_errors() {
        let m = warner(4, 0.8).unwrap();
        assert!(matches!(
            utility(&m, &Categorical::uniform(3).unwrap(), 100),
            Err(RrError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            utility(&m, &original(), 0),
            Err(RrError::EmptyData)
        ));
    }

    #[test]
    fn closed_form_matches_monte_carlo_for_inversion_estimator() {
        // Theorem 6 validation: the analytic MSE agrees with simulation.
        let m = warner(4, 0.65).unwrap();
        let p = original();
        let n_records = 2_000u64;
        let closed = utility(&m, &p, n_records).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let simulated = empirical_mse(&m, &p, n_records, 800, &mut rng, |m, counts| {
            Ok(estimate_from_counts(m, counts)?.raw)
        })
        .unwrap();
        let rel = (simulated - closed).abs() / closed;
        assert!(
            rel < 0.15,
            "closed-form {closed} vs simulated {simulated} (rel err {rel})"
        );
    }

    #[test]
    fn empirical_mse_validation() {
        let m = warner(3, 0.8).unwrap();
        let p = Categorical::uniform(3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(empirical_mse(&m, &p, 100, 0, &mut rng, |_, _| Ok(vec![0.0; 3])).is_err());
        assert!(empirical_mse(&m, &p, 0, 10, &mut rng, |_, _| Ok(vec![0.0; 3])).is_err());
        assert!(empirical_mse(
            &m,
            &Categorical::uniform(4).unwrap(),
            100,
            10,
            &mut rng,
            |_, _| Ok(vec![0.0; 4])
        )
        .is_err());
        // Estimator returning the wrong length is rejected.
        assert!(empirical_mse(&m, &p, 100, 2, &mut rng, |_, _| Ok(vec![0.0; 2])).is_err());
    }

    #[test]
    fn per_category_mse_is_nonnegative() {
        let p = Categorical::new(vec![0.55, 0.25, 0.1, 0.06, 0.04]).unwrap();
        for &param in &[0.3, 0.5, 0.75, 0.95] {
            let m = warner(5, param).unwrap();
            let analysis = theoretical_mse(&m, &p, 5_000).unwrap();
            assert!(analysis.per_category.iter().all(|&v| v >= 0.0));
            assert!(analysis.mean >= 0.0);
            assert_eq!(analysis.per_category.len(), 5);
        }
    }

    use crate::matrix::RrMatrix;
}
