//! Privacy and utility quantification (Section IV of the paper).
//!
//! * [`privacy`] — the adversary's best individual-record estimate is the
//!   MAP (Bayes) estimate (Theorems 3 & 4); privacy is one minus its
//!   expected accuracy (Equation 8), with a per-value worst-case bound `δ`
//!   (Equation 9, Theorem 5).
//! * [`utility`] — the closed-form mean squared error of the inversion
//!   estimator (Theorem 6 / Equation 10), plus an empirical MSE used to
//!   cross-check the closed form and to re-score matrices under the
//!   iterative estimator (Figure 5(d)).
//! * [`bounds`] — the `max P(X|Y) ≤ δ` constraint handling shared by the
//!   metrics and the optimizer's repair operator.

pub mod bounds;
pub mod privacy;
pub mod utility;

pub use bounds::{max_posterior, posterior_matrix, satisfies_delta_bound};
pub use privacy::{adversary_accuracy, map_estimates, privacy, PrivacyAnalysis};
pub use utility::{empirical_mse, theoretical_mse, theoretical_mse_per_category, utility};
