//! # optrr-rr
//!
//! Randomized Response (RR) substrate for the OptRR reproduction (Huang &
//! Du, ICDE 2008).
//!
//! This crate implements everything in Sections III and IV of the paper:
//!
//! * [`RrMatrix`] — the validated column-stochastic disguise matrix `M`
//!   with `θ_{j,i} = P[report c_j | true value c_i]`.
//! * [`schemes`] — the classical Warner / Uniform-Perturbation / FRAPP
//!   families the paper compares against, the identity and uniform
//!   degenerate matrices, the Theorem 2 parameter equivalences, and the
//!   Warner parameter sweep used as the experimental baseline.
//! * [`disguise`] — the per-record disguise operator applied to whole data
//!   sets.
//! * [`sample`] — the Walker/Vose alias tables behind the disguise hot
//!   path: O(n) build per matrix column, O(1) per disguised record.
//! * [`estimate`] — distribution reconstruction by matrix inversion
//!   (Theorem 1) and by the iterative EM-style procedure (Equation 3).
//! * [`metrics`] — the privacy metric (MAP-adversary accuracy, Theorems 3–5
//!   and Equation 8), the closed-form utility metric (Theorem 6 and
//!   Equation 10), and the worst-case δ bound (Equation 9).
//!
//! ## Example
//!
//! ```
//! use rr::schemes::warner;
//! use rr::metrics::{privacy, utility};
//! use stats::Categorical;
//!
//! let prior = Categorical::new(vec![0.4, 0.3, 0.2, 0.1]).unwrap();
//! let m = warner(4, 0.75).unwrap();
//! let p = privacy(&m, &prior).unwrap();          // higher is better
//! let u = utility(&m, &prior, 10_000).unwrap();  // lower is better (MSE)
//! assert!(p > 0.0 && p < 1.0);
//! assert!(u > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Negated comparisons like `!(x > 0.0)` are deliberate NaN-rejecting
// guards, and a few index loops walk several parallel arrays at once.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod disguise;
pub mod error;
pub mod estimate;
pub mod matrix;
pub mod metrics;
pub mod sample;
pub mod schemes;

pub use disguise::{
    disguise_dataset, disguise_dataset_reference, disguise_dataset_with, disguise_paired,
    DisguiseOutcome,
};
pub use error::{Result, RrError};
pub use matrix::{RrMatrix, STOCHASTIC_TOLERANCE};
pub use metrics::privacy::PrivacyAnalysis;
pub use metrics::utility::UtilityAnalysis;
pub use sample::{AliasTable, ColumnSamplers};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stats::Categorical;

    fn arb_prior() -> impl Strategy<Value = Categorical> {
        (3usize..=8).prop_flat_map(|n| {
            proptest::collection::vec(0.02f64..1.0, n).prop_map(|raw| {
                let s: f64 = raw.iter().sum();
                Categorical::new(raw.into_iter().map(|x| x / s).collect()).unwrap()
            })
        })
    }

    fn arb_rr_matrix(n: usize) -> impl Strategy<Value = RrMatrix> {
        proptest::collection::vec(0.05f64..1.0, n * n).prop_map(move |raw| {
            let mut columns = Vec::with_capacity(n);
            for j in 0..n {
                let mut col: Vec<f64> = (0..n).map(|i| raw[j * n + i]).collect();
                // Bias the diagonal so the matrix is (almost surely) invertible.
                col[j] += 1.5;
                let s: f64 = col.iter().sum();
                columns.push(linalg::Vector::from_vec(
                    col.into_iter().map(|x| x / s).collect(),
                ));
            }
            RrMatrix::from_columns(&columns).unwrap()
        })
    }

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(48))]

        #[test]
        fn privacy_is_bounded_by_prior_mode(prior in arb_prior(), seed in 0u64..500) {
            let n = prior.num_categories();
            let m = RrMatrix::random(n, &mut StdRng::seed_from_u64(seed)).unwrap();
            let p = metrics::privacy::analyze(&m, &prior).unwrap();
            prop_assert!(p.privacy >= -1e-9);
            prop_assert!(p.privacy <= 1.0 - prior.max_prob() + 1e-9);
            prop_assert!(p.adversary_accuracy >= prior.max_prob() - 1e-9,
                "accuracy {} below prior mode {}", p.adversary_accuracy, prior.max_prob());
            prop_assert!(p.max_posterior >= prior.max_prob() - 1e-9); // Theorem 5
            prop_assert!(p.max_posterior <= 1.0 + 1e-9);
        }

        #[test]
        fn utility_is_nonnegative_and_scales_with_n(prior in arb_prior(), seed in 0u64..500) {
            let n = prior.num_categories();
            // Use a diagonally-biased (invertible) matrix.
            let m = {
                let mut rng = StdRng::seed_from_u64(seed);
                // Mix a random matrix with the identity to keep it invertible.
                let random = RrMatrix::random(n, &mut rng).unwrap();
                let mut mixed = linalg::Matrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..n {
                        let id = if i == j { 1.0 } else { 0.0 };
                        mixed[(i, j)] = 0.6 * id + 0.4 * random.theta(i, j);
                    }
                }
                RrMatrix::new(mixed).unwrap()
            };
            let u_small = metrics::utility::utility(&m, &prior, 1_000).unwrap();
            let u_large = metrics::utility::utility(&m, &prior, 4_000).unwrap();
            prop_assert!(u_small >= 0.0);
            prop_assert!(u_large >= 0.0);
            // MSE scales as 1/N.
            prop_assert!((u_small / u_large - 4.0).abs() < 1e-6);
        }

        #[test]
        fn theorem1_reconstruction_is_exact_without_sampling_noise(
            prior in arb_prior(),
            m in (3usize..=8).prop_flat_map(arb_rr_matrix)
        ) {
            // Only test when dimensions match (resize the prior otherwise).
            let n = m.num_categories();
            let probs: Vec<f64> = prior.probs().iter().copied().cycle().take(n).collect();
            let s: f64 = probs.iter().sum();
            let prior = Categorical::new(probs.into_iter().map(|x| x / s).collect()).unwrap();

            let p_star = m.disguised_distribution(&prior).unwrap();
            let est = estimate::inversion::estimate_from_disguised_frequencies(&m, &p_star).unwrap();
            prop_assert!(est.distribution.approx_eq(&prior, 1e-6));
        }

        #[test]
        fn disguise_preserves_record_count_and_domain(
            prior in arb_prior(),
            seed in 0u64..200
        ) {
            let n = prior.num_categories();
            let mut rng = StdRng::seed_from_u64(seed);
            let records = prior.sample_many(&mut rng, 500);
            let data = datagen::CategoricalDataset::new(n, records).unwrap();
            let m = schemes::warner(n, 0.6).unwrap();
            let out = disguise_dataset(&m, &data, &mut rng).unwrap();
            prop_assert_eq!(out.disguised.len(), data.len());
            prop_assert!(out.disguised.records().iter().all(|&r| r < n));
            prop_assert!(out.retained <= data.len());
        }

        #[test]
        fn warner_up_frapp_produce_identical_metric_pairs(
            prior in arb_prior(),
            p_param in 0.0f64..1.0
        ) {
            // Theorem 2 consequence: matched parameters give identical
            // (privacy, utility) pairs for the three classical schemes.
            let n = prior.num_categories();
            let p_param = (1.0 / n as f64) + p_param * (1.0 - 1.0 / n as f64);
            // Skip parameters too close to the singular point.
            prop_assume!((p_param - 1.0 / n as f64).abs() > 0.02);
            let w = schemes::warner(n, p_param).unwrap();
            let q = schemes::theorem2::warner_to_up(n, p_param);
            let u = schemes::uniform_perturbation(n, q).unwrap();
            let lambda = schemes::theorem2::warner_to_frapp(n, p_param);
            prop_assume!(lambda.is_finite());
            let f = schemes::frapp(n, lambda).unwrap();

            let pw = metrics::privacy::privacy(&w, &prior).unwrap();
            let pu = metrics::privacy::privacy(&u, &prior).unwrap();
            let pf = metrics::privacy::privacy(&f, &prior).unwrap();
            prop_assert!((pw - pu).abs() < 1e-9);
            prop_assert!((pw - pf).abs() < 1e-9);

            let uw = metrics::utility::utility(&w, &prior, 10_000).unwrap();
            let uu = metrics::utility::utility(&u, &prior, 10_000).unwrap();
            let uf = metrics::utility::utility(&f, &prior, 10_000).unwrap();
            prop_assert!((uw - uu).abs() < 1e-9 * uw.abs().max(1e-12));
            prop_assert!((uw - uf).abs() < 1e-9 * uw.abs().max(1e-12));
        }

        #[test]
        fn iterative_and_inversion_agree_on_population_frequencies(
            prior in arb_prior(),
            m in (3usize..=6).prop_flat_map(arb_rr_matrix)
        ) {
            let n = m.num_categories();
            let probs: Vec<f64> = prior.probs().iter().copied().cycle().take(n).collect();
            let s: f64 = probs.iter().sum();
            let prior = Categorical::new(probs.into_iter().map(|x| x / s).collect()).unwrap();
            let p_star = m.disguised_distribution(&prior).unwrap();
            let inv = estimate::inversion::estimate_from_disguised_frequencies(&m, &p_star).unwrap();
            let itr = estimate::iterative::iterative_estimate_from_frequencies(
                &m,
                &p_star,
                &estimate::iterative::IterativeConfig { max_iterations: 50_000, tolerance: 1e-12 },
            ).unwrap();
            let d = stats::divergence::total_variation(&inv.distribution, &itr.distribution).unwrap();
            prop_assert!(d < 1e-3, "inversion vs iterative TV distance {d}");
        }
    }
}
