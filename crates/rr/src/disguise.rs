//! The per-record disguise operator: applying an RR matrix to a data set.
//!
//! The randomized-response technique replaces each original record `x_i`
//! with a reported value drawn from column `x_i` of the RR matrix. This
//! module applies that operation to whole data sets and keeps the pairing
//! between original and disguised records so privacy experiments can score
//! adversarial estimates against the ground truth.

use crate::error::{Result, RrError};
use crate::matrix::RrMatrix;
use crate::sample::ColumnSamplers;
use datagen::CategoricalDataset;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The outcome of disguising a data set: the disguised records plus summary
/// counts of how many records kept their original value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisguiseOutcome {
    /// The disguised data set `Y_s` (same length and domain as the input).
    pub disguised: CategoricalDataset,
    /// Number of records whose reported value equals the original value.
    pub retained: usize,
}

impl DisguiseOutcome {
    /// Fraction of records that kept their original value.
    pub fn retention_rate(&self) -> f64 {
        if self.disguised.is_empty() {
            0.0
        } else {
            self.retained as f64 / self.disguised.len() as f64
        }
    }
}

fn validate_disguise_input(m: &RrMatrix, original: &CategoricalDataset) -> Result<()> {
    if original.num_categories() != m.num_categories() {
        return Err(RrError::DimensionMismatch {
            matrix: m.num_categories(),
            data: original.num_categories(),
        });
    }
    if original.is_empty() {
        return Err(RrError::EmptyData);
    }
    Ok(())
}

fn collect_outcome(
    original: &CategoricalDataset,
    disguised: Vec<usize>,
    retained: usize,
) -> Result<DisguiseOutcome> {
    let disguised = CategoricalDataset::new(original.num_categories(), disguised)?;
    Ok(DisguiseOutcome {
        disguised,
        retained,
    })
}

/// Disguises every record of `original` using the RR matrix `m`.
///
/// The per-column [`crate::sample::AliasTable`]s are built once (O(n²) for
/// the whole matrix), then each record costs O(1): one uniform draw per
/// record, exactly the draw budget of the inverse-CDF reference path in
/// [`disguise_dataset_reference`].
pub fn disguise_dataset<R: Rng + ?Sized>(
    m: &RrMatrix,
    original: &CategoricalDataset,
    rng: &mut R,
) -> Result<DisguiseOutcome> {
    validate_disguise_input(m, original)?;
    let samplers = ColumnSamplers::new(m)?;
    disguise_with_samplers(&samplers, original, rng)
}

/// Disguises every record of `original` through pre-built alias tables.
///
/// Building [`ColumnSamplers`] is the O(n²) part of a disguise call and is
/// a pure function of the matrix — it consumes no randomness — so a caller
/// that pins one matrix (a serving pipeline) builds the tables once and
/// streams every batch through this entry point. For the same RNG state
/// the output is bit-identical to [`disguise_dataset`] on the same matrix.
pub fn disguise_dataset_with<R: Rng + ?Sized>(
    samplers: &ColumnSamplers,
    original: &CategoricalDataset,
    rng: &mut R,
) -> Result<DisguiseOutcome> {
    if original.num_categories() != samplers.num_categories() {
        return Err(RrError::DimensionMismatch {
            matrix: samplers.num_categories(),
            data: original.num_categories(),
        });
    }
    if original.is_empty() {
        return Err(RrError::EmptyData);
    }
    disguise_with_samplers(samplers, original, rng)
}

fn disguise_with_samplers<R: Rng + ?Sized>(
    samplers: &ColumnSamplers,
    original: &CategoricalDataset,
    rng: &mut R,
) -> Result<DisguiseOutcome> {
    let mut disguised = Vec::with_capacity(original.len());
    let mut retained = 0usize;
    for &x in original.records() {
        let y = samplers.disguise_record(x, rng)?;
        if y == x {
            retained += 1;
        }
        disguised.push(y);
    }
    collect_outcome(original, disguised, retained)
}

/// The seed implementation kept as the distributional reference: per-column
/// cached-CDF samplers with an O(log n) binary search per record.
///
/// Kept `pub` (not `#[cfg(test)]`) so `bench_kernels` can measure the
/// naive-vs-alias throughput delta; production callers go through
/// [`disguise_dataset`]. The two paths draw different streams for the same
/// seed but the same *number* of RNG values, and both match `M·P`
/// distributionally (see the equivalence tests below).
pub fn disguise_dataset_reference<R: Rng + ?Sized>(
    m: &RrMatrix,
    original: &CategoricalDataset,
    rng: &mut R,
) -> Result<DisguiseOutcome> {
    validate_disguise_input(m, original)?;
    let columns: Vec<_> = (0..m.num_categories())
        .map(|i| m.randomization_distribution(i))
        .collect::<Result<_>>()?;
    let mut disguised = Vec::with_capacity(original.len());
    let mut retained = 0usize;
    for &x in original.records() {
        let y = columns[x].sample(rng);
        if y == x {
            retained += 1;
        }
        disguised.push(y);
    }
    collect_outcome(original, disguised, retained)
}

/// Disguises a data set and returns the original/disguised record pairs —
/// the view an attacker-evaluation harness needs.
pub fn disguise_paired<R: Rng + ?Sized>(
    m: &RrMatrix,
    original: &CategoricalDataset,
    rng: &mut R,
) -> Result<Vec<(usize, usize)>> {
    let outcome = disguise_dataset(m, original, rng)?;
    Ok(original
        .records()
        .iter()
        .copied()
        .zip(outcome.disguised.records().iter().copied())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::warner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> CategoricalDataset {
        // 3 categories, strongly skewed toward category 0.
        let mut records = vec![0usize; 6000];
        records.extend(vec![1usize; 3000]);
        records.extend(vec![2usize; 1000]);
        CategoricalDataset::new(3, records).unwrap()
    }

    #[test]
    fn dimension_and_empty_validation() {
        let m = warner(4, 0.8).unwrap();
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            disguise_dataset(&m, &d, &mut rng),
            Err(RrError::DimensionMismatch { .. })
        ));
        let empty = CategoricalDataset::new(3, vec![]).unwrap();
        let m3 = warner(3, 0.8).unwrap();
        assert!(matches!(
            disguise_dataset(&m3, &empty, &mut rng),
            Err(RrError::EmptyData)
        ));
    }

    #[test]
    fn identity_matrix_retains_everything() {
        let m = RrMatrix::identity(3).unwrap();
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let out = disguise_dataset(&m, &d, &mut rng).unwrap();
        assert_eq!(out.retained, d.len());
        assert!((out.retention_rate() - 1.0).abs() < 1e-12);
        assert_eq!(out.disguised, d);
    }

    #[test]
    fn warner_retention_matches_p() {
        let m = warner(3, 0.7).unwrap();
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let out = disguise_dataset(&m, &d, &mut rng).unwrap();
        assert_eq!(out.disguised.len(), d.len());
        assert!(
            (out.retention_rate() - 0.7).abs() < 0.02,
            "retention {}",
            out.retention_rate()
        );
    }

    #[test]
    fn disguised_distribution_tracks_m_times_p() {
        let m = warner(3, 0.6).unwrap();
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let out = disguise_dataset(&m, &d, &mut rng).unwrap();
        let expected = m
            .disguised_distribution(&d.empirical_distribution().unwrap())
            .unwrap();
        let observed = out.disguised.empirical_distribution().unwrap();
        for i in 0..3 {
            assert!(
                (observed.prob(i) - expected.prob(i)).abs() < 0.02,
                "category {i}: observed {} expected {}",
                observed.prob(i),
                expected.prob(i)
            );
        }
    }

    #[test]
    fn paired_output_preserves_order_and_originals() {
        let m = warner(3, 0.5).unwrap();
        let d = CategoricalDataset::new(3, vec![0, 1, 2, 2, 1, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = disguise_paired(&m, &d, &mut rng).unwrap();
        assert_eq!(pairs.len(), 6);
        for (i, (orig, disguised)) in pairs.iter().enumerate() {
            assert_eq!(*orig, d.record(i).unwrap());
            assert!(*disguised < 3);
        }
    }

    #[test]
    fn disguise_is_deterministic_for_a_seed() {
        let m = warner(3, 0.5).unwrap();
        let d = dataset();
        let a = disguise_dataset(&m, &d, &mut StdRng::seed_from_u64(11)).unwrap();
        let b = disguise_dataset(&m, &d, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(a, b);
        let c = disguise_dataset(&m, &d, &mut StdRng::seed_from_u64(12)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn cached_samplers_match_the_per_call_build_bitwise() {
        let m = warner(3, 0.55).unwrap();
        let d = dataset();
        let samplers = ColumnSamplers::new(&m).unwrap();
        let fresh = disguise_dataset(&m, &d, &mut StdRng::seed_from_u64(31)).unwrap();
        let cached = disguise_dataset_with(&samplers, &d, &mut StdRng::seed_from_u64(31)).unwrap();
        assert_eq!(fresh, cached, "table construction consumes no randomness");
        // The cached path validates like the building path.
        let wrong = CategoricalDataset::new(4, vec![0, 1, 2, 3]).unwrap();
        assert!(matches!(
            disguise_dataset_with(&samplers, &wrong, &mut StdRng::seed_from_u64(31)),
            Err(RrError::DimensionMismatch { .. })
        ));
        let empty = CategoricalDataset::new(3, vec![]).unwrap();
        assert!(matches!(
            disguise_dataset_with(&samplers, &empty, &mut StdRng::seed_from_u64(31)),
            Err(RrError::EmptyData)
        ));
    }

    #[test]
    fn alias_and_reference_paths_agree_distributionally() {
        // The alias path replaced the inverse-CDF path on the hot route;
        // they draw different streams for a seed but must land on the same
        // disguised distribution and retention rate.
        let m = warner(3, 0.6).unwrap();
        let d = dataset();
        let alias = disguise_dataset(&m, &d, &mut StdRng::seed_from_u64(21)).unwrap();
        let reference = disguise_dataset_reference(&m, &d, &mut StdRng::seed_from_u64(21)).unwrap();
        assert_eq!(alias.disguised.len(), reference.disguised.len());
        assert!(
            (alias.retention_rate() - reference.retention_rate()).abs() < 0.03,
            "retention alias {} vs reference {}",
            alias.retention_rate(),
            reference.retention_rate()
        );
        let oa = alias.disguised.empirical_distribution().unwrap();
        let ob = reference.disguised.empirical_distribution().unwrap();
        for i in 0..3 {
            assert!(
                (oa.prob(i) - ob.prob(i)).abs() < 0.03,
                "category {i}: alias {} vs reference {}",
                oa.prob(i),
                ob.prob(i)
            );
        }
    }

    #[test]
    fn reference_path_validates_like_the_alias_path() {
        let m = warner(4, 0.8).unwrap();
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            disguise_dataset_reference(&m, &d, &mut rng),
            Err(RrError::DimensionMismatch { .. })
        ));
        let empty = CategoricalDataset::new(3, vec![]).unwrap();
        let m3 = warner(3, 0.8).unwrap();
        assert!(matches!(
            disguise_dataset_reference(&m3, &empty, &mut rng),
            Err(RrError::EmptyData)
        ));
    }

    #[test]
    fn retention_rate_of_empty_outcome_is_zero() {
        // Construct the struct directly to cover the guard.
        let out = DisguiseOutcome {
            disguised: CategoricalDataset::new(2, vec![]).unwrap(),
            retained: 0,
        };
        assert_eq!(out.retention_rate(), 0.0);
    }
}
