//! The randomized-response (RR) matrix type.
//!
//! Section III of the paper: the RR technique replaces each original value
//! `c_i` with a value `c_j` with probability `θ_{j,i}`. Collecting those
//! probabilities gives the column-stochastic matrix `M` with
//! `M[j][i] = θ_{j,i} = P[output = c_j | input = c_i]`, and the disguised
//! distribution satisfies `P* = M · P` (Equation 1).

use crate::error::{Result, RrError};
use linalg::{invert, Matrix, Vector};
use rand::Rng;
use serde::{Deserialize, Serialize};
use stats::Categorical;

/// Tolerance used when validating column stochasticity.
pub const STOCHASTIC_TOLERANCE: f64 = 1e-7;

/// A validated randomized-response matrix.
///
/// Invariants enforced at construction and preserved by every method:
/// * square, with `n >= 2` categories;
/// * every entry in `[0, 1]` (up to [`STOCHASTIC_TOLERANCE`]);
/// * every column sums to one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RrMatrix {
    inner: Matrix,
}

impl RrMatrix {
    /// Wraps a raw matrix after validating the RR-matrix invariants.
    pub fn new(matrix: Matrix) -> Result<Self> {
        if !matrix.is_square() {
            return Err(RrError::InvalidMatrix {
                reason: "matrix must be square",
            });
        }
        if matrix.rows() < 2 {
            return Err(RrError::InvalidMatrix {
                reason: "need at least two categories",
            });
        }
        if !matrix.is_finite() {
            return Err(RrError::InvalidMatrix {
                reason: "entries must be finite",
            });
        }
        if !matrix.is_column_stochastic(STOCHASTIC_TOLERANCE) {
            return Err(RrError::InvalidMatrix {
                reason: "columns must be non-negative and sum to one",
            });
        }
        // Renormalize each column exactly so downstream arithmetic is clean.
        let mut inner = matrix;
        let n = inner.rows();
        for j in 0..n {
            let col = inner.column(j).expect("validated square matrix");
            let clipped: Vec<f64> = col.iter().map(|&x| x.max(0.0)).collect();
            let s: f64 = clipped.iter().sum();
            let normalized = Vector::from_vec(clipped.into_iter().map(|x| x / s).collect());
            inner
                .set_column(j, &normalized)
                .expect("validated dimensions");
        }
        Ok(Self { inner })
    }

    /// Builds an RR matrix from nested rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let matrix = Matrix::from_rows(rows).map_err(RrError::from)?;
        Self::new(matrix)
    }

    /// Builds an RR matrix from per-category columns (each column is the
    /// randomization distribution of one original category).
    pub fn from_columns(columns: &[Vector]) -> Result<Self> {
        let matrix = Matrix::from_columns(columns).map_err(RrError::from)?;
        Self::new(matrix)
    }

    /// The identity RR matrix: no disguise at all (the paper's `M1`
    /// example — best utility, worst privacy).
    pub fn identity(n: usize) -> Result<Self> {
        Self::new(Matrix::identity(n))
    }

    /// The uniform RR matrix with every entry `1/n` (the paper's `M2`
    /// example — perfect privacy, zero utility). Note this matrix is
    /// singular, so distribution reconstruction is impossible.
    pub fn uniform(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(RrError::InvalidMatrix {
                reason: "need at least two categories",
            });
        }
        Self::new(Matrix::filled(n, n, 1.0 / n as f64))
    }

    /// Number of categories `n`.
    pub fn num_categories(&self) -> usize {
        self.inner.rows()
    }

    /// `θ_{j,i} = P[output = c_j | input = c_i]`.
    pub fn theta(&self, output: usize, input: usize) -> f64 {
        self.inner[(output, input)]
    }

    /// Borrow the underlying matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.inner
    }

    /// Consume and return the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.inner
    }

    /// The randomization distribution of original category `i`
    /// (column `i` of the matrix).
    pub fn randomization_distribution(&self, input: usize) -> Result<Categorical> {
        if input >= self.num_categories() {
            return Err(RrError::InvalidParameter {
                name: "input",
                value: input as f64,
                constraint: "must be < number of categories",
            });
        }
        let col = self.inner.column(input).map_err(RrError::from)?;
        Categorical::new(col.into_vec()).map_err(RrError::from)
    }

    /// Applies the matrix to an original distribution: `P* = M P`
    /// (Equation 1).
    pub fn disguised_distribution(&self, original: &Categorical) -> Result<Categorical> {
        if original.num_categories() != self.num_categories() {
            return Err(RrError::DimensionMismatch {
                matrix: self.num_categories(),
                data: original.num_categories(),
            });
        }
        let p = Vector::from_vec(original.probs().to_vec());
        let p_star = self.inner.mul_vector(&p).map_err(RrError::from)?;
        Categorical::new(p_star.project_to_simplex().into_vec()).map_err(RrError::from)
    }

    /// Disguises one record: draws the reported category for an original
    /// value `input`.
    pub fn disguise_record<R: Rng + ?Sized>(&self, input: usize, rng: &mut R) -> Result<usize> {
        Ok(self.randomization_distribution(input)?.sample(rng))
    }

    /// The inverse matrix `M⁻¹` needed by Theorem 1 and Theorem 6, or
    /// [`RrError::SingularMatrix`] when the matrix is not invertible.
    pub fn inverse(&self) -> Result<Matrix> {
        invert(&self.inner).map_err(RrError::from)
    }

    /// Whether the matrix is invertible (determinant bounded away from
    /// zero), i.e. whether the inversion estimator applies.
    pub fn is_invertible(&self) -> bool {
        self.inverse().is_ok()
    }

    /// Whether the matrix is symmetric. The FRAPP work of Agrawal & Haritsa
    /// searches only symmetric matrices; OptRR searches both.
    pub fn is_symmetric(&self) -> bool {
        self.inner.is_symmetric(STOCHASTIC_TOLERANCE)
    }

    /// Whether every diagonal entry dominates its column — true of all the
    /// classical schemes with "retain" probability above `1/n`.
    pub fn is_diagonally_dominant(&self) -> bool {
        self.inner.is_column_diagonally_dominant()
    }

    /// Largest absolute difference with another RR matrix of the same size.
    pub fn max_abs_difference(&self, other: &RrMatrix) -> Result<f64> {
        if self.num_categories() != other.num_categories() {
            return Err(RrError::DimensionMismatch {
                matrix: self.num_categories(),
                data: other.num_categories(),
            });
        }
        let diff = self.inner.sub_matrix(&other.inner).map_err(RrError::from)?;
        Ok(diff.max_abs())
    }

    /// True when the two matrices agree entry-wise within `tol`.
    pub fn approx_eq(&self, other: &RrMatrix, tol: f64) -> bool {
        self.inner.approx_eq(&other.inner, tol)
    }

    /// Generates a random RR matrix by drawing each column uniformly from
    /// the probability simplex (via normalized exponential draws). Used to
    /// seed the evolutionary search's initial population.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<Self> {
        if n < 2 {
            return Err(RrError::InvalidMatrix {
                reason: "need at least two categories",
            });
        }
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            // Exponential draws normalized to one give a uniform Dirichlet(1,...,1) sample.
            let draws: Vec<f64> = (0..n)
                .map(|_| {
                    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    -u.ln()
                })
                .collect();
            let s: f64 = draws.iter().sum();
            columns.push(Vector::from_vec(draws.into_iter().map(|x| x / s).collect()));
        }
        Self::from_columns(&columns)
    }
}

impl std::fmt::Display for RrMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn warner3(p: f64) -> RrMatrix {
        let off = (1.0 - p) / 2.0;
        RrMatrix::from_rows(&[vec![p, off, off], vec![off, p, off], vec![off, off, p]]).unwrap()
    }

    #[test]
    fn validation_rejects_malformed_matrices() {
        // Not square.
        assert!(RrMatrix::new(Matrix::zeros(2, 3)).is_err());
        // Too small.
        assert!(RrMatrix::new(Matrix::identity(1)).is_err());
        // Negative entry.
        assert!(RrMatrix::from_rows(&[vec![1.1, 0.0], vec![-0.1, 1.0]]).is_err());
        // Columns not summing to one.
        assert!(RrMatrix::from_rows(&[vec![0.5, 0.5], vec![0.4, 0.5]]).is_err());
        // Non-finite entries.
        let mut m = Matrix::identity(2);
        m[(0, 0)] = f64::NAN;
        assert!(RrMatrix::new(m).is_err());
        // A valid matrix passes.
        assert!(RrMatrix::from_rows(&[vec![0.9, 0.2], vec![0.1, 0.8]]).is_ok());
    }

    #[test]
    fn construction_renormalizes_small_slack() {
        let m = RrMatrix::from_rows(&[vec![0.7 + 1e-9, 0.3], vec![0.3, 0.7 - 1e-9]]).unwrap();
        for j in 0..2 {
            let col: f64 = (0..2).map(|i| m.theta(i, j)).sum();
            assert!((col - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_and_uniform_special_matrices() {
        let id = RrMatrix::identity(4).unwrap();
        assert_eq!(id.num_categories(), 4);
        assert_eq!(id.theta(2, 2), 1.0);
        assert_eq!(id.theta(0, 2), 0.0);
        assert!(id.is_invertible());
        assert!(id.is_symmetric());
        assert!(id.is_diagonally_dominant());

        let u = RrMatrix::uniform(4).unwrap();
        assert!((u.theta(1, 3) - 0.25).abs() < 1e-12);
        assert!(!u.is_invertible());
        assert!(u.is_symmetric());
        assert!(RrMatrix::uniform(1).is_err());
        assert!(RrMatrix::identity(1).is_err());
    }

    #[test]
    fn columns_are_randomization_distributions() {
        let m = warner3(0.8);
        let d = m.randomization_distribution(1).unwrap();
        assert!((d.prob(1) - 0.8).abs() < 1e-12);
        assert!((d.prob(0) - 0.1).abs() < 1e-12);
        assert!(m.randomization_distribution(5).is_err());
    }

    #[test]
    fn disguised_distribution_follows_equation_1() {
        let m = warner3(0.8);
        let p = Categorical::new(vec![0.6, 0.3, 0.1]).unwrap();
        let p_star = m.disguised_distribution(&p).unwrap();
        // P*(c0) = 0.8*0.6 + 0.1*0.3 + 0.1*0.1 = 0.52
        assert!((p_star.prob(0) - 0.52).abs() < 1e-12);
        assert!((p_star.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Mismatched dimensions rejected.
        assert!(m
            .disguised_distribution(&Categorical::uniform(4).unwrap())
            .is_err());
    }

    #[test]
    fn identity_matrix_leaves_distribution_unchanged() {
        let id = RrMatrix::identity(3).unwrap();
        let p = Categorical::new(vec![0.5, 0.2, 0.3]).unwrap();
        let p_star = id.disguised_distribution(&p).unwrap();
        assert!(p_star.approx_eq(&p, 1e-12));
    }

    #[test]
    fn uniform_matrix_maps_everything_to_uniform() {
        let u = RrMatrix::uniform(5).unwrap();
        let p = Categorical::new(vec![0.9, 0.05, 0.02, 0.02, 0.01]).unwrap();
        let p_star = u.disguised_distribution(&p).unwrap();
        assert!(p_star.approx_eq(&Categorical::uniform(5).unwrap(), 1e-12));
    }

    #[test]
    fn disguise_record_samples_from_the_column() {
        let m = warner3(0.9);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mut retained = 0usize;
        for _ in 0..n {
            if m.disguise_record(2, &mut rng).unwrap() == 2 {
                retained += 1;
            }
        }
        let rate = retained as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.01, "retention rate {rate}");
        assert!(m.disguise_record(9, &mut rng).is_err());
    }

    #[test]
    fn inverse_round_trip() {
        let m = warner3(0.75);
        let inv = m.inverse().unwrap();
        let prod = m.as_matrix().mul_matrix(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
        assert!(matches!(
            RrMatrix::uniform(3).unwrap().inverse(),
            Err(RrError::SingularMatrix)
        ));
    }

    #[test]
    fn symmetry_and_dominance_predicates() {
        let asym = RrMatrix::from_rows(&[vec![0.9, 0.3], vec![0.1, 0.7]]).unwrap();
        assert!(!asym.is_symmetric());
        assert!(asym.is_diagonally_dominant());
        let off = RrMatrix::from_rows(&[vec![0.2, 0.6], vec![0.8, 0.4]]).unwrap();
        assert!(!off.is_diagonally_dominant());
    }

    #[test]
    fn max_abs_difference_and_approx_eq() {
        let a = warner3(0.8);
        let b = warner3(0.7);
        let d = a.max_abs_difference(&b).unwrap();
        assert!((d - 0.1).abs() < 1e-12);
        assert!(a.approx_eq(&warner3(0.8), 1e-12));
        assert!(!a.approx_eq(&b, 1e-3));
        assert!(a
            .max_abs_difference(&RrMatrix::identity(4).unwrap())
            .is_err());
    }

    #[test]
    fn random_matrices_are_valid_and_seeded() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = RrMatrix::random(6, &mut rng).unwrap();
        assert_eq!(m.num_categories(), 6);
        assert!(m.as_matrix().is_column_stochastic(1e-9));
        // Deterministic for a fixed seed.
        let again = RrMatrix::random(6, &mut StdRng::seed_from_u64(9)).unwrap();
        assert!(m.approx_eq(&again, 1e-15));
        assert!(RrMatrix::random(1, &mut rng).is_err());
    }

    #[test]
    fn display_renders_entries() {
        let m = warner3(0.8);
        let s = format!("{m}");
        assert!(s.contains("0.800000"));
        assert!(s.contains("0.100000"));
    }

    #[test]
    fn into_matrix_returns_inner() {
        let m = warner3(0.8);
        let inner = m.clone().into_matrix();
        assert_eq!(&inner, m.as_matrix());
    }
}
