//! O(1) categorical sampling via the Walker/Vose alias method.
//!
//! Batch disguise applies the same per-column randomization distribution to
//! every record with that original value, so the sampler construction cost
//! is paid once per column while the per-record cost dominates. The cached
//! inverse-CDF sampler in [`stats::Categorical`] costs O(log n) per draw;
//! the alias table here costs O(1): one uniform draw selects a bucket and
//! decides between the bucket's own category and its alias.
//!
//! Like [`stats::Categorical::sample`], [`AliasTable::sample`] consumes
//! exactly one `f64` from the RNG per record, so switching sampler changes
//! the disguised stream for a given seed but not the RNG draw budget. The
//! disguise pipeline's determinism contract is *per seed, per sampler*:
//! same seed → same stream, and sharded ingest equals single-stream ingest
//! bitwise because both sides run this same sampler (see
//! `serve::pipeline::payload_seed`).

use crate::error::{Result, RrError};
use crate::matrix::RrMatrix;
use rand::Rng;
use stats::Categorical;

/// A Walker/Vose alias table over `n` categories: O(n) to build from a
/// probability vector, O(1) per sample.
///
/// Each of the `n` buckets holds an acceptance threshold and an alias
/// category. Sampling draws one uniform `u ∈ [0, 1)`, scales it to pick a
/// bucket and a within-bucket fraction, and returns the bucket's own index
/// when the fraction clears the threshold, otherwise the alias.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance threshold of each bucket, in units of `prob * n`.
    prob: Vec<f64>,
    /// Alias category of each bucket.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from a probability vector.
    ///
    /// The probabilities must be finite, non-negative, and sum to one
    /// within the same tolerance [`stats::Categorical::new`] accepts —
    /// construction goes through `Categorical` so both samplers agree on
    /// what a valid distribution is.
    pub fn new(probs: Vec<f64>) -> Result<Self> {
        let dist = Categorical::new(probs)?;
        Ok(Self::from_distribution(&dist))
    }

    /// Builds an alias table from an already-validated distribution.
    pub fn from_distribution(dist: &Categorical) -> Self {
        let probs = dist.probs();
        let n = probs.len();
        let mut scaled: Vec<f64> = probs.iter().map(|&p| p * n as f64).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias: Vec<usize> = (0..n).collect();
        // Vose's stable partition: buckets under-full (< 1) borrow mass
        // from buckets over-full (> 1) until every bucket holds exactly
        // one unit split between its own category and a single alias.
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly-full up to rounding: they always accept.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.prob.len()
    }

    /// Draws one category index, consuming exactly one `f64` from the RNG.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let scaled = u * self.prob.len() as f64;
        // `u < 1` keeps `idx` in range; the `min` guards the pathological
        // rounding case `u * n == n`.
        let idx = (scaled as usize).min(self.prob.len() - 1);
        let frac = scaled - idx as f64;
        if frac < self.prob[idx] {
            idx
        } else {
            self.alias[idx]
        }
    }

    /// Draws `count` category indices.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// Per-column alias tables for a whole RR matrix: column `i` samples the
/// randomization distribution of original category `i`. Built once per
/// matrix, then O(1) per disguised record.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSamplers {
    columns: Vec<AliasTable>,
}

impl ColumnSamplers {
    /// Builds the alias table of every column of `m`.
    pub fn new(m: &RrMatrix) -> Result<Self> {
        let columns = (0..m.num_categories())
            .map(|i| {
                m.randomization_distribution(i)
                    .map(|d| AliasTable::from_distribution(&d))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { columns })
    }

    /// Number of categories (columns).
    pub fn num_categories(&self) -> usize {
        self.columns.len()
    }

    /// Disguises one record with true value `x`.
    #[inline]
    pub fn disguise_record<R: Rng + ?Sized>(&self, x: usize, rng: &mut R) -> Result<usize> {
        match self.columns.get(x) {
            Some(table) => Ok(table.sample(rng)),
            None => Err(RrError::DimensionMismatch {
                matrix: self.columns.len(),
                data: x + 1,
            }),
        }
    }

    /// Borrow the alias table of column `x`.
    pub fn column(&self, x: usize) -> Option<&AliasTable> {
        self.columns.get(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{frapp, uniform_perturbation, warner};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_through_categorical() {
        assert!(AliasTable::new(vec![]).is_err());
        assert!(AliasTable::new(vec![0.5, 0.6]).is_err());
        assert!(AliasTable::new(vec![f64::NAN, 1.0]).is_err());
        let t = AliasTable::new(vec![0.25; 4]).unwrap();
        assert_eq!(t.num_categories(), 4);
    }

    #[test]
    fn point_mass_always_returns_its_category() {
        let t = AliasTable::from_distribution(&Categorical::point_mass(5, 3).unwrap());
        let mut rng = StdRng::seed_from_u64(9);
        assert!(t.sample_many(&mut rng, 200).iter().all(|&s| s == 3));
    }

    #[test]
    fn zero_probability_categories_are_never_drawn() {
        let t = AliasTable::new(vec![0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(t.sample_many(&mut rng, 500).iter().all(|&s| s == 1));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t = AliasTable::new(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let a = t.sample_many(&mut StdRng::seed_from_u64(5), 1000);
        let b = t.sample_many(&mut StdRng::seed_from_u64(5), 1000);
        assert_eq!(a, b);
        let c = t.sample_many(&mut StdRng::seed_from_u64(6), 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn column_samplers_match_matrix_dimensions() {
        let m = warner(4, 0.8).unwrap();
        let s = ColumnSamplers::new(&m).unwrap();
        assert_eq!(s.num_categories(), 4);
        assert!(s.column(3).is_some());
        assert!(s.column(4).is_none());
        let mut rng = StdRng::seed_from_u64(2);
        assert!(s.disguise_record(0, &mut rng).unwrap() < 4);
        assert!(matches!(
            s.disguise_record(4, &mut rng),
            Err(RrError::DimensionMismatch { .. })
        ));
    }

    /// Pearson chi-square statistic of observed counts against expected
    /// probabilities.
    fn chi_square(counts: &[u64], probs: &[f64], total: u64) -> f64 {
        counts
            .iter()
            .zip(probs.iter())
            .filter(|(_, &p)| p > 0.0)
            .map(|(&c, &p)| {
                let expected = p * total as f64;
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    #[test]
    fn alias_sampling_matches_scheme_columns_chi_square() {
        // Every classical scheme family, every column: the alias sampler's
        // empirical frequencies must fit the `randomization_distribution`
        // probabilities under a chi-square goodness-of-fit test.
        let n = 6;
        let matrices = [
            warner(n, 0.55).unwrap(),
            uniform_perturbation(n, 0.35).unwrap(),
            frapp(n, 4.0).unwrap(),
        ];
        let draws = 60_000u64;
        // 99.9th percentile of chi-square with n-1 = 5 degrees of freedom.
        let critical = 20.52;
        let mut rng = StdRng::seed_from_u64(20_080_501);
        for m in &matrices {
            let samplers = ColumnSamplers::new(m).unwrap();
            for col in 0..n {
                let dist = m.randomization_distribution(col).unwrap();
                let mut counts = vec![0u64; n];
                for _ in 0..draws {
                    counts[samplers.disguise_record(col, &mut rng).unwrap()] += 1;
                }
                let stat = chi_square(&counts, dist.probs(), draws);
                assert!(
                    stat < critical,
                    "column {col}: chi-square {stat} over critical {critical}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(24))]

        /// Chi-square goodness of fit on random distributions: the alias
        /// table reproduces the frequencies of the distribution it was
        /// built from.
        #[test]
        fn alias_matches_distribution_frequencies(
            raw in proptest::collection::vec(0.05f64..1.0, 3..8),
            seed in 0u64..1_000,
        ) {
            let s: f64 = raw.iter().sum();
            let probs: Vec<f64> = raw.iter().map(|x| x / s).collect();
            let n = probs.len();
            let dist = Categorical::new(probs.clone()).unwrap();
            let table = AliasTable::from_distribution(&dist);
            let draws = 20_000u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts = vec![0u64; n];
            for _ in 0..draws {
                counts[table.sample(&mut rng)] += 1;
            }
            let stat = chi_square(&counts, &probs, draws);
            // 99.99th percentile of chi-square with at most 7 degrees of
            // freedom — loose enough that 24 random cases essentially
            // never trip it, tight enough to catch a mis-built table.
            prop_assert!(stat < 33.0, "chi-square {stat} with {} categories", n);
        }

        /// The alias table never emits a category the distribution gives
        /// zero probability, for any bucket the RNG lands in.
        #[test]
        fn alias_support_is_contained_in_distribution_support(
            raw in proptest::collection::vec(0.0f64..1.0, 3..8),
            seed in 0u64..1_000,
        ) {
            let s: f64 = raw.iter().sum();
            prop_assume!(s > 1e-9);
            let probs: Vec<f64> = raw.iter().map(|x| x / s).collect();
            let table = AliasTable::from_distribution(&Categorical::new(probs.clone()).unwrap());
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..2_000 {
                let y = table.sample(&mut rng);
                prop_assert!(probs[y] > 0.0, "sampled zero-probability category {y}");
            }
        }
    }
}
