//! Error type for the randomized-response substrate.

use std::fmt;

/// Errors produced by randomized-response matrix construction, disguise,
/// estimation, and metric computation.
#[derive(Debug, Clone, PartialEq)]
pub enum RrError {
    /// The supplied matrix is not a valid RR matrix (not square, not column
    /// stochastic, negative entries, or non-finite values).
    InvalidMatrix {
        /// Human-readable explanation.
        reason: &'static str,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// The RR matrix and the data / distribution have mismatched category
    /// counts.
    DimensionMismatch {
        /// Categories in the RR matrix.
        matrix: usize,
        /// Categories in the data or distribution.
        data: usize,
    },
    /// The RR matrix is singular, so the inversion estimator (Theorem 1)
    /// cannot be applied.
    SingularMatrix,
    /// The iterative estimator failed to converge within its iteration
    /// budget.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The data set is empty where records are required.
    EmptyData,
    /// An error bubbled up from the linear-algebra substrate.
    Linalg(linalg::LinalgError),
    /// An error bubbled up from the statistics substrate.
    Stats(stats::StatsError),
}

impl fmt::Display for RrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrError::InvalidMatrix { reason } => write!(f, "invalid RR matrix: {reason}"),
            RrError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "invalid parameter {name}={value}: {constraint}")
            }
            RrError::DimensionMismatch { matrix, data } => write!(
                f,
                "dimension mismatch: RR matrix has {matrix} categories but data has {data}"
            ),
            RrError::SingularMatrix => {
                write!(
                    f,
                    "RR matrix is singular; inversion estimation is impossible"
                )
            }
            RrError::NoConvergence { iterations } => {
                write!(
                    f,
                    "iterative estimator did not converge after {iterations} iterations"
                )
            }
            RrError::EmptyData => write!(f, "empty data set"),
            RrError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            RrError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for RrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RrError::Linalg(e) => Some(e),
            RrError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::LinalgError> for RrError {
    fn from(e: linalg::LinalgError) -> Self {
        match e {
            linalg::LinalgError::Singular { .. } => RrError::SingularMatrix,
            other => RrError::Linalg(other),
        }
    }
}

impl From<stats::StatsError> for RrError {
    fn from(e: stats::StatsError) -> Self {
        RrError::Stats(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RrError::InvalidMatrix {
            reason: "not square"
        }
        .to_string()
        .contains("not square"));
        assert!(RrError::InvalidParameter {
            name: "p",
            value: 2.0,
            constraint: "in [0,1]"
        }
        .to_string()
        .contains("p=2"));
        assert!(RrError::DimensionMismatch { matrix: 3, data: 5 }
            .to_string()
            .contains('5'));
        assert!(RrError::SingularMatrix.to_string().contains("singular"));
        assert!(RrError::NoConvergence { iterations: 10 }
            .to_string()
            .contains("10"));
        assert!(RrError::EmptyData.to_string().contains("empty"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let singular: RrError = linalg::LinalgError::Singular { pivot: 0 }.into();
        assert_eq!(singular, RrError::SingularMatrix);
        let other: RrError = linalg::LinalgError::Empty.into();
        assert!(matches!(other, RrError::Linalg(_)));
        assert!(other.to_string().contains("linear algebra"));
        let stats_err: RrError = stats::StatsError::EmptyData.into();
        assert!(matches!(stats_err, RrError::Stats(_)));
        assert!(stats_err.to_string().contains("statistics"));
    }

    #[test]
    fn source_is_exposed_for_wrapped_errors() {
        use std::error::Error;
        let e: RrError = stats::StatsError::EmptyData.into();
        assert!(e.source().is_some());
        assert!(RrError::EmptyData.source().is_none());
    }
}
