//! # optrr-obs
//!
//! Dependency-light observability primitives for the serving stack:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and log₂
//!   [`Histogram`]s. The write path is lock-free: every handle is a plain
//!   atomic touched with `Ordering::Relaxed`, and quantiles (p50/p90/p99)
//!   are computed from a snapshot of the bucket array without stopping
//!   writers. Registration (name → handle) takes a lock, but hot paths
//!   hold pre-resolved `Arc` handles so they never see it.
//! * [`TraceRing`] — a bounded ring buffer of typed events, each stamped
//!   with a sequence number and a timestamp from an injectable [`Clock`],
//!   so traces are deterministic under test ([`ManualClock`]) and
//!   monotonic in production ([`MonotonicClock`]).
//!
//! The crate is deliberately free of dependencies (not even serde): it
//! exposes plain snapshot structs and a Prometheus-style text rendering;
//! wire formats live with the protocol that speaks them.
//!
//! The cardinal rule for users: instrumentation is *recording only*. No
//! value read from a counter, histogram, or trace may feed back into
//! request handling — that is what keeps observability bitwise-invisible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket
/// `k ≥ 1` holds values in `[2^(k-1), 2^k)`, so bucket 64 holds
/// `[2^63, u64::MAX]` and every `u64` has a home.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically non-decreasing nanosecond clock. Injectable so event
/// traces are deterministic under test.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: nanoseconds since the clock's creation, read
/// from [`Instant`] so it never goes backwards.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// [`ManualClock::advance`] (or `set`) is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at `start` nanoseconds.
    pub fn new(start: u64) -> Self {
        Self {
            now: AtomicU64::new(start),
        }
    }

    /// Moves the clock forward by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute nanosecond value.
    pub fn set(&self, now: u64) {
        self.now.store(now, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing event counter. All operations are single
/// relaxed atomics: the counter guards nothing and orders nothing.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (resident bytes, key count).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log₂ latency histogram with atomic buckets.
///
/// Recording is lock-free — one relaxed `fetch_add` per bucket/count/sum
/// plus a relaxed `fetch_max` — and quantile reads walk a point-in-time
/// copy of the bucket array, so p50/p90/p99 are readable while writers
/// keep recording. A quantile is reported as the *upper bound* of the
/// bucket containing its rank (bucket 0 reports exactly 0), so reported
/// values never understate the true latency by more than one bucket.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket a value lands in: 0 for 0, otherwise `floor(log2 v) + 1`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value bucket `index` can hold.
fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (nanoseconds, but any `u64` works).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: after ~585 years of accumulated nanoseconds the sum
        // pins at MAX rather than wrapping into nonsense.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of counts, quantiles, and extrema.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the q-quantile among `total` ordered observations,
            // clamped into [1, total].
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (index, bucket) in buckets.iter().enumerate() {
                seen += bucket;
                if seen >= rank {
                    return bucket_upper_bound(index);
                }
            }
            bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
        };
        HistogramSnapshot {
            name: name.to_string(),
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// A point-in-time view of one histogram, safe to serialize elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
}

/// A point-in-time view of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// One snapshot per histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

/// The name → handle table. Handles are `Arc`s: resolve once at startup,
/// record lock-free forever after. Names are sorted on readout so
/// renderings are stable.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Get-or-create in one of the registry maps: read-lock fast path, write
/// lock only on first sighting of a name.
fn resolve<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics registry poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut writable = map.write().expect("metrics registry poisoned");
    Arc::clone(
        writable
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        resolve(&self.counters, name)
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        resolve(&self.gauges, name)
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        resolve(&self.histograms, name)
    }

    /// A point-in-time copy of every metric, without stopping writers.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Prometheus-style text exposition: one `# TYPE` line per metric,
    /// `_count`/`_sum`/`_max` plus `quantile`-labelled lines per
    /// histogram.
    pub fn render_prometheus(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for h in &snapshot.histograms {
            let name = &h.name;
            out.push_str(&format!("# TYPE {name} summary\n"));
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_max {}\n", h.max));
            for (label, value) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                out.push_str(&format!("{name}{{quantile=\"{label}\"}} {value}\n"));
            }
        }
        out
    }
}

/// One traced event: a global sequence number, a clock stamp, and the
/// typed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry<E> {
    /// Position in the global event order (0-based, never reused).
    pub seq: u64,
    /// [`Clock::now_ns`] at push time.
    pub at_ns: u64,
    /// The event itself.
    pub event: E,
}

#[derive(Debug)]
struct RingState<E> {
    entries: VecDeque<TraceEntry<E>>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring buffer of typed events. When full, the oldest entry is
/// dropped (and counted) to admit the newest, so the trace always holds
/// the most recent `capacity` events. A capacity of 0 disables recording
/// entirely.
#[derive(Debug)]
pub struct TraceRing<E> {
    capacity: usize,
    clock: Arc<dyn Clock>,
    state: Mutex<RingState<E>>,
}

impl<E: Clone> TraceRing<E> {
    /// A ring holding at most `capacity` events, stamped by `clock`.
    pub fn new(capacity: usize, clock: Arc<dyn Clock>) -> Self {
        Self {
            capacity,
            clock,
            state: Mutex::new(RingState {
                entries: VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one event, evicting the oldest if the ring is full.
    pub fn push(&self, event: E) {
        if self.capacity == 0 {
            return;
        }
        let at_ns = self.clock.now_ns();
        let mut state = self.state.lock().expect("trace ring poisoned");
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.entries.len() == self.capacity {
            state.entries.pop_front();
            state.dropped += 1;
        }
        state.entries.push_back(TraceEntry { seq, at_ns, event });
    }

    /// The most recent `limit` entries in order (all of them if `limit`
    /// is `None`), plus how many older events the ring has discarded.
    pub fn snapshot(&self, limit: Option<usize>) -> (Vec<TraceEntry<E>>, u64) {
        let state = self.state.lock().expect("trace ring poisoned");
        let take = limit
            .unwrap_or(state.entries.len())
            .min(state.entries.len());
        let skip = state.entries.len() - take;
        (
            state.entries.iter().skip(skip).cloned().collect(),
            state.dropped,
        )
    }

    /// Total events ever pushed (including those since discarded).
    pub fn total_pushed(&self) -> u64 {
        self.state.lock().expect("trace ring poisoned").next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_maps_edges_exactly() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        // Powers of two open a new bucket; one less closes the previous.
        for k in 1..64 {
            let boundary = 1u64 << k;
            assert_eq!(
                bucket_index(boundary),
                k + 1,
                "2^{k} opens bucket {}",
                k + 1
            );
            assert_eq!(bucket_index(boundary - 1), k, "2^{k}-1 stays in bucket {k}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(63), (1u64 << 63) - 1);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_handles_zero_and_max_without_losing_counts() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot("edge");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
        // Sum saturates instead of wrapping.
        assert_eq!(snap.sum, u64::MAX);
        assert_eq!(snap.p50, 0);
        assert_eq!(snap.p99, u64::MAX);
    }

    #[test]
    fn histogram_quantiles_track_bucket_upper_bounds() {
        let h = Histogram::new();
        // 90 fast observations in [1,1], 10 slow in [64,127].
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(100);
        }
        let snap = h.snapshot("latency");
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50, 1);
        assert_eq!(snap.p90, 1);
        assert_eq!(snap.p99, 127, "p99 reports the slow bucket's upper bound");
        assert_eq!(snap.max, 100);
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        let snap = Histogram::new().snapshot("empty");
        assert_eq!((snap.count, snap.p50, snap.p90, snap.p99), (0, 0, 0, 0));
    }

    #[test]
    fn registry_resolves_one_handle_per_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests");
        let b = registry.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("requests").get(), 3);
        registry.gauge("resident").set(17);
        registry.histogram("lat").record(5);
        let snap = registry.snapshot();
        assert_eq!(snap.counters, vec![("requests".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("resident".to_string(), 17)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn prometheus_rendering_is_stable_and_complete() {
        let registry = MetricsRegistry::new();
        registry.counter("b_counter").add(2);
        registry.counter("a_counter").inc();
        registry.gauge("g").set(9);
        registry.histogram("h").record(3);
        let text = registry.render_prometheus();
        // Name-sorted, typed, with quantile lines.
        let a = text.find("a_counter 1").expect("a_counter rendered");
        let b = text.find("b_counter 2").expect("b_counter rendered");
        assert!(a < b, "counters render in name order");
        assert!(text.contains("# TYPE g gauge\ng 9\n"));
        assert!(text.contains("h_count 1"));
        assert!(text.contains("h{quantile=\"0.99\"} 3"));
    }

    #[test]
    fn trace_ring_wraps_keeping_newest_and_counting_drops() {
        let clock = Arc::new(ManualClock::new(0));
        let ring: TraceRing<u32> = TraceRing::new(4, clock.clone());
        for i in 0..10u32 {
            clock.advance(5);
            ring.push(i);
        }
        let (entries, dropped) = ring.snapshot(None);
        assert_eq!(dropped, 6);
        assert_eq!(ring.total_pushed(), 10);
        let events: Vec<u32> = entries.iter().map(|e| e.event).collect();
        assert_eq!(events, vec![6, 7, 8, 9]);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(
            seqs,
            vec![6, 7, 8, 9],
            "sequence numbers survive wraparound"
        );
        // Deterministic timestamps from the manual clock.
        let stamps: Vec<u64> = entries.iter().map(|e| e.at_ns).collect();
        assert_eq!(stamps, vec![35, 40, 45, 50]);
        // A limited snapshot returns the newest slice.
        let (tail, _) = ring.snapshot(Some(2));
        assert_eq!(tail.iter().map(|e| e.event).collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let ring: TraceRing<u32> = TraceRing::new(0, Arc::new(ManualClock::new(0)));
        ring.push(1);
        let (entries, dropped) = ring.snapshot(None);
        assert!(entries.is_empty());
        assert_eq!(dropped, 0);
        assert_eq!(ring.total_pushed(), 0);
    }

    #[test]
    fn manual_clock_is_deterministic_and_monotonic_under_advance() {
        let clock = ManualClock::new(100);
        assert_eq!(clock.now_ns(), 100);
        clock.advance(50);
        assert_eq!(clock.now_ns(), 150);
        clock.set(1_000);
        assert_eq!(clock.now_ns(), 1_000);
        let wall = MonotonicClock::new();
        let a = wall.now_ns();
        let b = wall.now_ns();
        assert!(b >= a, "monotonic clock never goes backwards");
    }
}
