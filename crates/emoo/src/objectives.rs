//! Objective vectors for multi-objective minimization.
//!
//! The OptRR search has two objectives — "adversary accuracy" (so that
//! higher privacy = lower objective) and "mean squared error" — but the
//! EMOO substrate is generic over any number of objectives, all treated as
//! *minimization* targets. Callers with maximization objectives negate or
//! complement them before constructing an [`Objectives`] value.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in objective space. All objectives are minimized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    values: Vec<f64>,
}

impl Objectives {
    /// Creates an objective vector. Panics in debug builds if any value is
    /// NaN (comparisons with NaN would silently corrupt dominance ranking),
    /// so callers must sanitize infeasible evaluations into large-but-finite
    /// penalties first.
    pub fn new(values: Vec<f64>) -> Self {
        debug_assert!(
            values.iter().all(|v| !v.is_nan()),
            "objective values must not be NaN"
        );
        Self { values }
    }

    /// Two-objective convenience constructor (the OptRR case).
    pub fn pair(a: f64, b: f64) -> Self {
        Self::new(vec![a, b])
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no objectives (never true for valid problems).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of objective `i`.
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Borrow all objective values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Euclidean distance to another point in objective space (used by the
    /// SPEA2 density estimator and the archive truncation).
    pub fn distance(&self, other: &Objectives) -> f64 {
        debug_assert_eq!(self.len(), other.len(), "objective dimension mismatch");
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Euclidean distance after per-dimension normalization by the supplied
    /// ranges (used so that objectives with very different scales — e.g.
    /// privacy in `[0,1]` vs MSE around `1e-4` — contribute comparably).
    pub fn normalized_distance(&self, other: &Objectives, ranges: &[f64]) -> f64 {
        debug_assert_eq!(self.len(), other.len());
        debug_assert_eq!(self.len(), ranges.len());
        self.values
            .iter()
            .zip(other.values.iter())
            .zip(ranges.iter())
            .map(|((a, b), r)| {
                let scale = if *r > 0.0 { *r } else { 1.0 };
                let d = (a - b) / scale;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// True when every objective is finite.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

impl fmt::Display for Objectives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6e}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let o = Objectives::pair(0.3, 1e-4);
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
        assert_eq!(o.value(0), 0.3);
        assert_eq!(o.values(), &[0.3, 1e-4]);
        assert!(o.is_finite());
        let inf = Objectives::pair(f64::INFINITY, 0.0);
        assert!(!inf.is_finite());
    }

    #[test]
    fn distances() {
        let a = Objectives::pair(0.0, 0.0);
        let b = Objectives::pair(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
        // Normalized distance divides each dimension by its range.
        let d = a.normalized_distance(&b, &[3.0, 4.0]);
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
        // Zero ranges fall back to unnormalized contributions.
        let d2 = a.normalized_distance(&b, &[0.0, 0.0]);
        assert!((d2 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        let o = Objectives::pair(0.25, 0.0001);
        let s = format!("{o}");
        assert!(s.starts_with('('));
        assert!(s.contains("2.5"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must not be NaN")]
    fn nan_is_rejected_in_debug() {
        let _ = Objectives::pair(f64::NAN, 0.0);
    }
}
