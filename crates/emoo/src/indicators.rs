//! Quality indicators for comparing Pareto fronts.
//!
//! The paper compares schemes visually ("if a Pareto front of scheme A is
//! consistently below that of scheme B within a privacy range, A is better
//! in that range"). The experiment harness quantifies that comparison with
//! the standard indicators implemented here:
//!
//! * **hypervolume** (2-D) — area dominated by the front up to a reference
//!   point; larger is better;
//! * **coverage** (C-metric) — fraction of one front dominated by another;
//! * **spread** — extent of the front along each objective;
//! * **dominated-at-matched-x comparison** — the paper's "consistently
//!   below" check made precise for two fronts over a shared first-objective
//!   range.

use crate::dominance::{dominates, pareto_front};
use crate::objectives::Objectives;

/// Computes the 2-D hypervolume (area dominated by the front, bounded by
/// `reference`). Points not dominating the reference point are ignored.
/// Larger is better. Only defined for two objectives.
pub fn hypervolume_2d(front: &[Objectives], reference: &Objectives) -> f64 {
    assert_eq!(reference.len(), 2, "hypervolume_2d needs two objectives");
    // Keep only points that strictly dominate the reference box corner.
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .filter(|o| {
            o.len() == 2 && o.value(0) < reference.value(0) && o.value(1) < reference.value(1)
        })
        .map(|o| (o.value(0), o.value(1)))
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Reduce to the non-dominated subset to avoid double counting.
    let objs: Vec<Objectives> = pts.iter().map(|&(a, b)| Objectives::pair(a, b)).collect();
    let nd = pareto_front(&objs);
    pts = nd.iter().map(|o| (o.value(0), o.value(1))).collect();
    // Sweep in increasing first objective.
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite objectives"));
    let mut area = 0.0;
    let mut prev_x = None::<f64>;
    let mut best_y = reference.value(1);
    for (x, y) in pts {
        if let Some(px) = prev_x {
            area += (x - px) * (reference.value(1) - best_y);
        }
        prev_x = Some(x);
        best_y = best_y.min(y);
    }
    if let Some(px) = prev_x {
        area += (reference.value(0) - px) * (reference.value(1) - best_y);
    }
    area
}

/// The coverage (C) metric of Zitzler: the fraction of points in `b` that
/// are dominated by at least one point of `a`. Returns a value in `[0, 1]`;
/// `C(a, b) = 1` means every point of `b` is dominated by `a`.
pub fn coverage(a: &[Objectives], b: &[Objectives]) -> f64 {
    if b.is_empty() {
        return 0.0;
    }
    let covered = b
        .iter()
        .filter(|y| a.iter().any(|x| dominates(x, y)))
        .count();
    covered as f64 / b.len() as f64
}

/// The extent of the front along objective `m`: `(min, max)`.
pub fn objective_extent(front: &[Objectives], m: usize) -> Option<(f64, f64)> {
    if front.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for o in front {
        lo = lo.min(o.value(m));
        hi = hi.max(o.value(m));
    }
    Some((lo, hi))
}

/// For a two-objective front, returns the best (smallest) second-objective
/// value achieved at or below the given first-objective level — i.e. the
/// height of the staircase front at `x`. Returns `None` when no point
/// qualifies.
pub fn best_second_objective_at(front: &[Objectives], x: f64) -> Option<f64> {
    front
        .iter()
        .filter(|o| o.value(0) <= x)
        .map(|o| o.value(1))
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// The paper's "consistently below" comparison made numeric: samples
/// `samples` evenly spaced first-objective levels across the overlap of the
/// two fronts and returns the fraction of levels at which front `a`
/// achieves a strictly better (smaller) second objective than front `b`.
pub fn fraction_better_at_matched_levels(
    a: &[Objectives],
    b: &[Objectives],
    samples: usize,
) -> f64 {
    if a.is_empty() || b.is_empty() || samples == 0 {
        return 0.0;
    }
    let (a_lo, a_hi) = objective_extent(a, 0).expect("non-empty");
    let (b_lo, b_hi) = objective_extent(b, 0).expect("non-empty");
    let lo = a_lo.max(b_lo);
    let hi = a_hi.min(b_hi);
    // Deliberate negated comparison: also bails out when either bound is NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(lo <= hi) {
        return 0.0;
    }
    let mut better = 0usize;
    let mut counted = 0usize;
    for k in 0..samples {
        let x = if samples == 1 {
            lo
        } else {
            lo + (hi - lo) * k as f64 / (samples - 1) as f64
        };
        match (
            best_second_objective_at(a, x),
            best_second_objective_at(b, x),
        ) {
            (Some(ya), Some(yb)) => {
                counted += 1;
                if ya < yb {
                    better += 1;
                }
            }
            _ => continue,
        }
    }
    if counted == 0 {
        0.0
    } else {
        better as f64 / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(a: f64, b: f64) -> Objectives {
        Objectives::pair(a, b)
    }

    #[test]
    fn hypervolume_of_single_point() {
        let front = vec![o(1.0, 1.0)];
        let hv = hypervolume_2d(&front, &o(3.0, 3.0));
        assert!((hv - 4.0).abs() < 1e-12);
        // A point outside the reference box contributes nothing.
        assert_eq!(hypervolume_2d(&[o(4.0, 4.0)], &o(3.0, 3.0)), 0.0);
        assert_eq!(hypervolume_2d(&[], &o(3.0, 3.0)), 0.0);
    }

    #[test]
    fn hypervolume_of_staircase_front() {
        // Two points forming a staircase: (1,2) and (2,1) with ref (3,3).
        // Area = (2-1)*(3-2) + (3-2)*(3-1)... computed by sweep:
        // segment [1,2): height 3-2 = 1 -> 1; segment [2,3): height 3-1=2 -> 2. Total 3.
        let front = vec![o(1.0, 2.0), o(2.0, 1.0)];
        let hv = hypervolume_2d(&front, &o(3.0, 3.0));
        assert!((hv - 3.0).abs() < 1e-12);
        // Adding a dominated point must not change the hypervolume.
        let with_dominated = vec![o(1.0, 2.0), o(2.0, 1.0), o(2.5, 2.5)];
        assert!((hypervolume_2d(&with_dominated, &o(3.0, 3.0)) - hv).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_grows_when_the_front_improves() {
        let worse = vec![o(2.0, 2.0)];
        let better = vec![o(1.0, 1.0)];
        let r = o(4.0, 4.0);
        assert!(hypervolume_2d(&better, &r) > hypervolume_2d(&worse, &r));
    }

    #[test]
    fn coverage_metric() {
        let a = vec![o(1.0, 1.0)];
        let b = vec![o(2.0, 2.0), o(0.5, 3.0), o(3.0, 0.5)];
        // a dominates only the first member of b.
        assert!((coverage(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(coverage(&b, &a), 0.0);
        assert_eq!(coverage(&a, &[]), 0.0);
    }

    #[test]
    fn extent_and_staircase_queries() {
        let front = vec![o(0.2, 5.0), o(0.5, 2.0), o(0.8, 1.0)];
        assert_eq!(objective_extent(&front, 0), Some((0.2, 0.8)));
        assert_eq!(objective_extent(&front, 1), Some((1.0, 5.0)));
        assert_eq!(objective_extent(&[], 0), None);
        assert_eq!(best_second_objective_at(&front, 0.1), None);
        assert_eq!(best_second_objective_at(&front, 0.3), Some(5.0));
        assert_eq!(best_second_objective_at(&front, 0.6), Some(2.0));
        assert_eq!(best_second_objective_at(&front, 1.0), Some(1.0));
    }

    #[test]
    fn matched_level_comparison_detects_a_dominating_front() {
        // Front A sits strictly below front B at every privacy level.
        let a = vec![o(0.2, 1.0), o(0.5, 0.5), o(0.8, 0.2)];
        let b = vec![o(0.2, 2.0), o(0.5, 1.5), o(0.8, 1.0)];
        let frac = fraction_better_at_matched_levels(&a, &b, 50);
        assert!(frac > 0.95, "fraction {frac}");
        let rev = fraction_better_at_matched_levels(&b, &a, 50);
        assert_eq!(rev, 0.0);
        // Degenerate inputs.
        assert_eq!(fraction_better_at_matched_levels(&[], &b, 50), 0.0);
        assert_eq!(fraction_better_at_matched_levels(&a, &b, 0), 0.0);
        // Disjoint ranges give zero overlap.
        let far = vec![o(5.0, 0.1)];
        assert_eq!(fraction_better_at_matched_levels(&a, &far, 10), 0.0);
    }
}
