//! SPEA2 density estimation.
//!
//! When two solutions have the same raw fitness, SPEA2 breaks the tie with
//! a density value derived from the distance to the k-th nearest neighbour
//! in objective space:
//!
//! ```text
//! d(i) = 1 / (σ_i^k + 2)
//! ```
//!
//! The `+2` keeps the denominator positive and keeps the density strictly
//! below 1, so it can never overturn a raw-fitness difference (which is
//! always an integer ≥ 1). The paper (Section V.B) uses `k = 1` in
//! practice, which is the default here.

use crate::objectives::Objectives;
use std::cmp::Ordering;

/// Default neighbour index used by the density estimator (the paper's
/// practical choice).
pub const DEFAULT_K: usize = 1;

/// The k-th smallest value of `values` (1-based `k`, clamped to the slice
/// length), found by partial selection instead of a full sort: `k = 1` is a
/// single min scan, larger `k` uses `select_nth_unstable`. The slice is
/// reordered in place. Equal values make the result identical (bitwise) to
/// indexing a fully sorted copy.
pub(crate) fn kth_of(values: &mut [f64], k: usize) -> f64 {
    debug_assert!(!values.is_empty());
    let idx = k.saturating_sub(1).min(values.len() - 1);
    if idx == 0 {
        let mut best = values[0];
        for &v in &values[1..] {
            if v.partial_cmp(&best).expect("finite distances") == Ordering::Less {
                best = v;
            }
        }
        best
    } else {
        *values
            .select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("finite distances"))
            .1
    }
}

/// Computes the distance from each point to its k-th nearest *other* point.
///
/// Points with no neighbours (singleton input) get `f64::INFINITY`. One
/// reusable row buffer and partial selection replace the per-point `Vec`
/// and full sort of the naive formulation.
pub fn kth_nearest_distances(points: &[Objectives], k: usize) -> Vec<f64> {
    let n = points.len();
    let mut out = Vec::with_capacity(n);
    let mut dists: Vec<f64> = Vec::with_capacity(n.saturating_sub(1));
    for i in 0..n {
        dists.clear();
        dists.extend(
            (0..n)
                .filter(|&j| j != i)
                .map(|j| points[i].distance(&points[j])),
        );
        if dists.is_empty() {
            out.push(f64::INFINITY);
            continue;
        }
        out.push(kth_of(&mut dists, k));
    }
    out
}

/// Computes the SPEA2 density `d(i) = 1 / (σ_i^k + 2)` for every point.
pub fn densities(points: &[Objectives], k: usize) -> Vec<f64> {
    kth_nearest_distances(points, k)
        .into_iter()
        .map(|sigma| {
            if sigma.is_infinite() {
                0.0
            } else {
                1.0 / (sigma + 2.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(a: f64, b: f64) -> Objectives {
        Objectives::pair(a, b)
    }

    #[test]
    fn kth_nearest_distances_simple_layout() {
        // Three collinear points at x = 0, 1, 10.
        let pts = vec![o(0.0, 0.0), o(1.0, 0.0), o(10.0, 0.0)];
        let d1 = kth_nearest_distances(&pts, 1);
        assert_eq!(d1, vec![1.0, 1.0, 9.0]);
        let d2 = kth_nearest_distances(&pts, 2);
        assert_eq!(d2, vec![10.0, 9.0, 10.0]);
        // k beyond the number of neighbours clamps to the farthest one.
        let d9 = kth_nearest_distances(&pts, 9);
        assert_eq!(d9, vec![10.0, 9.0, 10.0]);
    }

    #[test]
    fn singleton_and_empty_inputs() {
        assert!(kth_nearest_distances(&[], 1).is_empty());
        let single = vec![o(1.0, 1.0)];
        assert_eq!(kth_nearest_distances(&single, 1), vec![f64::INFINITY]);
        assert_eq!(densities(&single, 1), vec![0.0]);
    }

    #[test]
    fn densities_are_below_one_and_ordered_by_crowding() {
        // The paper's Figure 2 situation: a point with a close neighbour has
        // a *higher* density (worse) than isolated points.
        let pts = vec![
            o(0.0, 0.0),
            o(0.1, 0.0), // crowded pair
            o(5.0, 5.0), // isolated
        ];
        let d = densities(&pts, DEFAULT_K);
        assert!(d.iter().all(|&x| x < 1.0));
        assert!(d.iter().all(|&x| x > 0.0));
        assert!(d[0] > d[2], "crowded point should have higher density");
        assert!(d[1] > d[2]);
    }

    #[test]
    fn partial_selection_matches_full_sort() {
        let raw = [5.0, 1.0, 4.0, 1.0, 3.0, 2.0, 2.0];
        let mut sorted = raw.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for k in 1..=raw.len() + 2 {
            let mut scratch = raw.to_vec();
            let expected = sorted[k.saturating_sub(1).min(raw.len() - 1)];
            assert_eq!(kth_of(&mut scratch, k).to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn density_formula_matches_definition() {
        let pts = vec![o(0.0, 0.0), o(3.0, 4.0)];
        let d = densities(&pts, 1);
        // sigma = 5 for both, so density = 1 / 7.
        assert!((d[0] - 1.0 / 7.0).abs() < 1e-12);
        assert!((d[1] - 1.0 / 7.0).abs() < 1e-12);
    }
}
