//! Individuals: a genome paired with its evaluated objectives and fitness.

use crate::objectives::Objectives;
use serde::{Deserialize, Serialize};

/// One member of a population or archive: the genome (generic payload) plus
/// its objective values and, once assigned, its SPEA2 fitness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Individual<G> {
    /// The genome (for OptRR, an RR matrix).
    pub genome: G,
    /// The evaluated objective vector (all objectives minimized).
    pub objectives: Objectives,
    /// SPEA2 fitness (raw fitness + density); lower is better. `None` until
    /// fitness assignment has run.
    pub fitness: Option<f64>,
}

impl<G> Individual<G> {
    /// Creates an individual with its objectives, fitness unassigned.
    pub fn new(genome: G, objectives: Objectives) -> Self {
        Self {
            genome,
            objectives,
            fitness: None,
        }
    }

    /// The assigned fitness, or `f64::INFINITY` when not yet assigned (so
    /// unassigned individuals never win selections by accident).
    pub fn fitness_or_worst(&self) -> f64 {
        self.fitness.unwrap_or(f64::INFINITY)
    }

    /// Whether SPEA2 considers this individual non-dominated (fitness < 1).
    pub fn is_nondominated(&self) -> bool {
        self.fitness.map(|f| f < 1.0).unwrap_or(false)
    }

    /// Maps the genome type while keeping objectives and fitness.
    pub fn map_genome<H>(self, f: impl FnOnce(G) -> H) -> Individual<H> {
        Individual {
            genome: f(self.genome),
            objectives: self.objectives,
            fitness: self.fitness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_defaults() {
        let ind = Individual::new("genome", Objectives::pair(1.0, 2.0));
        assert_eq!(ind.genome, "genome");
        assert_eq!(ind.fitness, None);
        assert_eq!(ind.fitness_or_worst(), f64::INFINITY);
        assert!(!ind.is_nondominated());
    }

    #[test]
    fn fitness_thresholds() {
        let mut ind = Individual::new(1u32, Objectives::pair(0.0, 0.0));
        ind.fitness = Some(0.4);
        assert!(ind.is_nondominated());
        assert_eq!(ind.fitness_or_worst(), 0.4);
        ind.fitness = Some(1.7);
        assert!(!ind.is_nondominated());
    }

    #[test]
    fn map_genome_preserves_metadata() {
        let mut ind = Individual::new(5u32, Objectives::pair(0.1, 0.2));
        ind.fitness = Some(0.9);
        let mapped = ind.map_genome(|g| g.to_string());
        assert_eq!(mapped.genome, "5");
        assert_eq!(mapped.fitness, Some(0.9));
        assert_eq!(mapped.objectives.value(1), 0.2);
    }
}
