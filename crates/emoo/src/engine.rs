//! The shared EMOO engine abstraction.
//!
//! The paper builds OptRR on SPEA2 but argues the choice of evolutionary
//! multi-objective engine is interchangeable (Section V). This module makes
//! that claim concrete: a [`Problem`] describes genome creation, variation,
//! repair, and (batched) evaluation; an [`Engine`] runs the evolutionary
//! loop and reports each generation through a [`GenerationSnapshot`] whose
//! individuals carry their already-computed objective vectors, so observers
//! (like the optimal-set Ω maintenance in `optrr-core`, which also
//! forwards each snapshot to the serve stack's event trace during refresh
//! runs) never need to re-evaluate anything. Beyond its continue/stop
//! return value, an observer is a read-only tap: it can report a
//! generation anywhere (counters, traces) without perturbing the engine's
//! RNG stream or the evolved front. [`Spea2`](crate::Spea2) and
//! [`Nsga2`](crate::nsga2::Nsga2) both implement [`Engine`] over one shared
//! [`EngineConfig`], and [`run_engine`] dispatches on [`EngineKind`] so
//! callers select the backend purely by configuration.

use crate::individual::Individual;
use crate::objectives::Objectives;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which EMOO backend to run. Selected purely by configuration; both
/// backends share [`EngineConfig`] and produce an [`EngineOutcome`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// Strength Pareto Evolutionary Algorithm 2 (the paper's choice).
    #[default]
    Spea2,
    /// NSGA-II, the independent cross-check engine.
    Nsga2,
}

impl EngineKind {
    /// Human-readable engine name.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Spea2 => "SPEA2",
            EngineKind::Nsga2 => "NSGA-II",
        }
    }
}

/// Run parameters shared by every EMOO backend.
///
/// SPEA2 reads every field; NSGA-II has no separate archive, so it uses
/// `archive_size` only to bound the reported final front and ignores
/// `density_k` (crowding distance plays the density role).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Population size `N_Q`.
    pub population_size: usize,
    /// Archive size `N_V` (SPEA2 archive; NSGA-II front-size bound).
    pub archive_size: usize,
    /// Number of generations to run.
    pub generations: usize,
    /// Per-child mutation probability.
    pub mutation_rate: f64,
    /// Neighbour index `k` for the SPEA2 density estimator.
    pub density_k: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            population_size: 80,
            archive_size: 40,
            generations: 100,
            mutation_rate: 0.3,
            density_k: crate::density::DEFAULT_K,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.population_size == 0 {
            return Err("population_size must be positive".into());
        }
        if self.archive_size == 0 {
            return Err("archive_size must be positive".into());
        }
        if self.generations == 0 {
            return Err("generations must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err("mutation_rate must be in [0, 1]".into());
        }
        if self.density_k == 0 {
            return Err("density_k must be positive".into());
        }
        Ok(())
    }
}

/// A multi-objective problem definition: how to create, evaluate, vary, and
/// repair genomes.
pub trait Problem {
    /// The genome type being evolved.
    type Genome: Clone;

    /// Number of objectives (all minimized).
    fn num_objectives(&self) -> usize;

    /// Creates one random genome.
    fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Genome;

    /// Evaluates a genome into an objective vector. Infeasible genomes must
    /// be mapped to large finite penalty values rather than NaN.
    fn evaluate(&self, genome: &Self::Genome) -> Objectives;

    /// Evaluates a whole batch of genomes.
    ///
    /// Engines route *all* evaluation through this hook, so overriding it
    /// is the single place to add caching or parallelism — see
    /// [`parallel_evaluate`] for a ready-made data-parallel body. The
    /// default delegates to [`Problem::evaluate`] serially. Implementations
    /// must be order-preserving and produce exactly the values `evaluate`
    /// would, or engine runs stop being reproducible.
    fn evaluate_batch(&self, genomes: &[Self::Genome]) -> Vec<Objectives> {
        genomes.iter().map(|genome| self.evaluate(genome)).collect()
    }

    /// Produces two children from two parents (crossover).
    fn crossover<R: Rng + ?Sized>(
        &self,
        a: &Self::Genome,
        b: &Self::Genome,
        rng: &mut R,
    ) -> (Self::Genome, Self::Genome);

    /// Mutates a genome in place.
    fn mutate<R: Rng + ?Sized>(&self, genome: &mut Self::Genome, rng: &mut R);

    /// Repairs a genome so it satisfies the problem's constraints
    /// (the OptRR "meeting the bound" step). The default is a no-op.
    fn repair<R: Rng + ?Sized>(&self, _genome: &mut Self::Genome, _rng: &mut R) {}
}

/// Evaluates a batch of genomes in parallel across all cores, preserving
/// input order.
///
/// Because objective evaluation is pure (no RNG involvement), the result is
/// bit-identical to the serial default of [`Problem::evaluate_batch`]; the
/// integration tests assert this. Intended as the body of an
/// `evaluate_batch` override for `Sync` problems:
///
/// ```
/// use emoo::{parallel_evaluate, Objectives, Problem};
/// # struct P;
/// # impl Problem for P {
/// #     type Genome = f64;
/// #     fn num_objectives(&self) -> usize { 1 }
/// #     fn random_genome<R: rand::Rng + ?Sized>(&self, _r: &mut R) -> f64 { 0.0 }
/// #     fn evaluate(&self, g: &f64) -> Objectives { Objectives::new(vec![*g]) }
/// fn evaluate_batch(&self, genomes: &[f64]) -> Vec<Objectives> {
///     parallel_evaluate(self, genomes)
/// }
/// #     fn crossover<R: rand::Rng + ?Sized>(&self, a: &f64, _b: &f64, _r: &mut R) -> (f64, f64) { (*a, *a) }
/// #     fn mutate<R: rand::Rng + ?Sized>(&self, _g: &mut f64, _r: &mut R) {}
/// # }
/// ```
pub fn parallel_evaluate<P>(problem: &P, genomes: &[P::Genome]) -> Vec<Objectives>
where
    P: Problem + Sync,
    P::Genome: Sync,
{
    use rayon::prelude::*;
    genomes
        .par_iter()
        .map(|genome| problem.evaluate(genome))
        .collect()
}

/// A snapshot of the state at the end of a generation, passed to the
/// observer callback (used by `optrr-core` to maintain the optimal set Ω).
///
/// Every [`Individual`] carries the objective vector computed when it was
/// evaluated, so observers consume evaluations instead of recomputing them.
pub struct GenerationSnapshot<'a, G> {
    /// Generation index (0-based).
    pub generation: usize,
    /// The current elite set: the SPEA2 archive after environmental
    /// selection, or the NSGA-II rank-0 individuals.
    pub archive: &'a [Individual<G>],
    /// The rest of this generation's individuals: the newly evaluated
    /// SPEA2 population, or the non-elite remainder of the NSGA-II
    /// population. Disjoint from `archive`, so chaining the two slices
    /// visits every live individual exactly once.
    pub population: &'a [Individual<G>],
    /// Objective evaluations performed so far (cumulative).
    pub evaluations: usize,
}

/// The result of an engine run.
#[derive(Debug, Clone)]
pub struct EngineOutcome<G> {
    /// The final elite set, fitness-assigned and bounded by
    /// `archive_size`.
    pub archive: Vec<Individual<G>>,
    /// Number of generations actually executed.
    pub generations_run: usize,
    /// Total number of objective evaluations performed.
    pub evaluations: usize,
    /// Pairwise dominance/distance entries the
    /// [`FitnessKernel`](crate::FitnessKernel) reused from previous
    /// generations instead of recomputing.
    pub fitness_pairs_reused: u64,
    /// Pairwise entries the kernel computed fresh over the whole run.
    pub fitness_pairs_computed: u64,
}

impl<G: Clone> EngineOutcome<G> {
    /// The archive genomes, cloned in archive order — the natural seed set
    /// for a warm-started follow-up run via [`Engine::run_seeded`].
    ///
    /// A long-lived serving layer keeps these between refreshes of the same
    /// problem so each re-run resumes from the previous elite set instead
    /// of rediscovering it from random matrices.
    pub fn seed_genomes(&self) -> Vec<G> {
        self.archive.iter().map(|ind| ind.genome.clone()).collect()
    }
}

/// An evolutionary multi-objective engine over a [`Problem`].
pub trait Engine<P: Problem> {
    /// Which backend this engine is.
    fn kind(&self) -> EngineKind;

    /// Borrow the configuration.
    fn config(&self) -> &EngineConfig;

    /// Runs the algorithm with an explicitly seeded initial population,
    /// invoking `observer` at the end of each generation. The observer
    /// returns `true` to keep going and `false` to stop early.
    ///
    /// The supplied seed genomes (repaired before evaluation) fill the
    /// first slots of generation 0; the remainder of the population is
    /// filled with random genomes. Seeds beyond `population_size` are
    /// ignored.
    fn run_seeded<R, F>(
        &self,
        rng: &mut R,
        seeds: Vec<P::Genome>,
        observer: F,
    ) -> EngineOutcome<P::Genome>
    where
        R: Rng + ?Sized,
        F: FnMut(&GenerationSnapshot<'_, P::Genome>) -> bool;

    /// Runs the algorithm with an observer but no seeds.
    fn run_with_observer<R, F>(&self, rng: &mut R, observer: F) -> EngineOutcome<P::Genome>
    where
        R: Rng + ?Sized,
        F: FnMut(&GenerationSnapshot<'_, P::Genome>) -> bool,
    {
        self.run_seeded(rng, Vec::new(), observer)
    }

    /// Runs the algorithm without seeds or an observer.
    fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> EngineOutcome<P::Genome> {
        self.run_with_observer(rng, |_| true)
    }
}

/// Constructs and runs the configured backend in one call — the single
/// code path `optrr-core`, the ablation binaries, and the benches use to
/// stay backend-agnostic.
pub fn run_engine<P, R, F>(
    kind: EngineKind,
    problem: &P,
    config: EngineConfig,
    rng: &mut R,
    seeds: Vec<P::Genome>,
    observer: F,
) -> Result<EngineOutcome<P::Genome>, String>
where
    P: Problem,
    R: Rng + ?Sized,
    F: FnMut(&GenerationSnapshot<'_, P::Genome>) -> bool,
{
    match kind {
        EngineKind::Spea2 => {
            crate::Spea2::new(problem, config).map(|e| e.run_seeded(rng, seeds, observer))
        }
        EngineKind::Nsga2 => {
            crate::nsga2::Nsga2::new(problem, config).map(|e| e.run_seeded(rng, seeds, observer))
        }
    }
}

/// Batch-evaluates genomes and pairs each with its objectives, counting
/// the evaluations. Shared by every engine.
pub(crate) fn evaluate_into_individuals<P: Problem>(
    problem: &P,
    genomes: Vec<P::Genome>,
    evaluations: &mut usize,
) -> Vec<Individual<P::Genome>> {
    let objectives = problem.evaluate_batch(&genomes);
    debug_assert_eq!(
        objectives.len(),
        genomes.len(),
        "evaluate_batch must be 1:1"
    );
    *evaluations += genomes.len();
    genomes
        .into_iter()
        .zip(objectives)
        .map(|(genome, objectives)| Individual::new(genome, objectives))
        .collect()
}

/// Builds and evaluates generation 0 the way every engine does: seeds
/// first (truncated to the population size), random genomes for the rest,
/// everything repaired and then evaluated as one batch.
pub(crate) fn seeded_initial_population<P, R>(
    problem: &P,
    population_size: usize,
    seeds: Vec<P::Genome>,
    rng: &mut R,
    evaluations: &mut usize,
) -> Vec<Individual<P::Genome>>
where
    P: Problem,
    R: Rng + ?Sized,
{
    let mut genomes: Vec<P::Genome> = seeds;
    genomes.truncate(population_size);
    while genomes.len() < population_size {
        genomes.push(problem.random_genome(rng));
    }
    for genome in &mut genomes {
        problem.repair(genome, rng);
    }
    evaluate_into_individuals(problem, genomes, evaluations)
}

/// Crosses two parents, mutates each child with `mutation_rate`, repairs
/// both, and pushes them into the brood (dropping the second child when
/// the brood is full). The shared variation step of every engine —
/// evaluation is deferred so the whole brood can go through
/// [`Problem::evaluate_batch`] at once.
pub(crate) fn push_offspring_pair<P, R>(
    problem: &P,
    mutation_rate: f64,
    parent_a: &P::Genome,
    parent_b: &P::Genome,
    rng: &mut R,
    brood: &mut Vec<P::Genome>,
    population_size: usize,
) where
    P: Problem,
    R: Rng + ?Sized,
{
    let (mut child_a, mut child_b) = problem.crossover(parent_a, parent_b, rng);
    for child in [&mut child_a, &mut child_b] {
        if rng.gen::<f64>() < mutation_rate {
            problem.mutate(child, rng);
        }
        problem.repair(child, rng);
    }
    brood.push(child_a);
    if brood.len() < population_size {
        brood.push(child_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_defaults_to_spea2_and_labels() {
        assert_eq!(EngineKind::default(), EngineKind::Spea2);
        assert_eq!(EngineKind::Spea2.label(), "SPEA2");
        assert_eq!(EngineKind::Nsga2.label(), "NSGA-II");
    }

    #[test]
    fn config_validation() {
        assert!(EngineConfig::default().validate().is_ok());
        assert!(EngineConfig {
            population_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EngineConfig {
            archive_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EngineConfig {
            generations: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EngineConfig {
            mutation_rate: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EngineConfig {
            density_k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    struct Sphere;

    impl Problem for Sphere {
        type Genome = f64;

        fn num_objectives(&self) -> usize {
            2
        }

        fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.gen_range(-4.0..4.0)
        }

        fn evaluate(&self, x: &f64) -> Objectives {
            Objectives::pair(x * x, (x - 1.0) * (x - 1.0))
        }

        fn crossover<R: Rng + ?Sized>(&self, a: &f64, b: &f64, _rng: &mut R) -> (f64, f64) {
            ((a + b) / 2.0, (a + b) / 2.0)
        }

        fn mutate<R: Rng + ?Sized>(&self, x: &mut f64, rng: &mut R) {
            *x += rng.gen_range(-0.1..0.1);
        }
    }

    #[test]
    fn default_batch_evaluation_matches_pointwise() {
        let genomes = vec![0.0, 0.5, 1.0, -2.0];
        let batch = Sphere.evaluate_batch(&genomes);
        for (g, o) in genomes.iter().zip(&batch) {
            assert_eq!(o, &Sphere.evaluate(g));
        }
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        let genomes: Vec<f64> = (0..997).map(|i| i as f64 * 0.37 - 150.0).collect();
        let serial = Sphere.evaluate_batch(&genomes);
        let parallel = parallel_evaluate(&Sphere, &genomes);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            let bits = |o: &Objectives| o.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn seed_genomes_clone_the_archive_in_order() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let config = EngineConfig {
            population_size: 16,
            archive_size: 8,
            generations: 5,
            mutation_rate: 0.4,
            density_k: 1,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = run_engine(
            EngineKind::Spea2,
            &Sphere,
            config,
            &mut rng,
            Vec::new(),
            |_| true,
        )
        .unwrap();
        let seeds = outcome.seed_genomes();
        assert_eq!(seeds.len(), outcome.archive.len());
        for (seed, ind) in seeds.iter().zip(&outcome.archive) {
            assert_eq!(seed.to_bits(), ind.genome.to_bits());
        }
    }

    #[test]
    fn run_engine_dispatches_both_backends() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let config = EngineConfig {
            population_size: 20,
            archive_size: 10,
            generations: 10,
            mutation_rate: 0.4,
            density_k: 1,
        };
        for kind in [EngineKind::Spea2, EngineKind::Nsga2] {
            let mut rng = StdRng::seed_from_u64(5);
            let outcome =
                run_engine(kind, &Sphere, config, &mut rng, Vec::new(), |_| true).unwrap();
            assert_eq!(outcome.generations_run, 10);
            assert!(!outcome.archive.is_empty());
            assert!(outcome.archive.len() <= 10);
            assert!(outcome.evaluations >= 20);
        }
        let bad = EngineConfig {
            population_size: 0,
            ..config
        };
        let mut rng = StdRng::seed_from_u64(5);
        assert!(run_engine(
            EngineKind::Nsga2,
            &Sphere,
            bad,
            &mut rng,
            Vec::new(),
            |_| true
        )
        .is_err());
    }
}
