//! The SPEA2 (Strength Pareto Evolutionary Algorithm 2) backend of the
//! [`Engine`] abstraction.
//!
//! This module implements the algorithm skeleton the paper customizes
//! (Section V): fitness assignment (strength → raw fitness → density),
//! environmental selection into a bounded archive, binary-tournament mating
//! selection, and user-supplied variation (crossover + mutation) and repair
//! operators. Each generation produces all child genomes first and then
//! evaluates them through [`Problem::evaluate_batch`], so problems can
//! batch, cache, or parallelize evaluation — the hottest path of the whole
//! system. The OptRR-specific genome, operators, and the optimal-set Ω
//! extension live in `optrr-core`; this crate stays problem-agnostic.

use crate::density::densities;
use crate::dominance::raw_fitness;
use crate::engine::{
    evaluate_into_individuals, push_offspring_pair, seeded_initial_population, Engine, EngineKind,
    EngineOutcome,
};
use crate::individual::Individual;
use crate::kernel::FitnessKernel;
use crate::objectives::Objectives;
use crate::selection::{environmental_selection_with, fill_mating_pool};
use rand::Rng;

pub use crate::engine::{EngineConfig, GenerationSnapshot, Problem};

/// SPEA2 run parameters — an alias of the shared [`EngineConfig`] kept for
/// source compatibility with pre-`Engine` call sites.
pub type Spea2Config = EngineConfig;

/// The result of a SPEA2 run — an alias of the shared [`EngineOutcome`]
/// kept for source compatibility with pre-`Engine` call sites.
pub type Spea2Outcome<G> = EngineOutcome<G>;

/// Assigns SPEA2 fitness (raw fitness + density) to every member of the
/// combined population, in place, from scratch.
///
/// This is the reference implementation: O(n²) comparisons and distances
/// every call. The engines run the incremental
/// [`FitnessKernel`](crate::FitnessKernel) instead, which produces bitwise
/// identical fitness values while reusing pairwise state across
/// generations; the crate's property tests pin the two together.
pub fn assign_fitness<G>(combined: &mut [Individual<G>], density_k: usize) {
    let points: Vec<Objectives> = combined.iter().map(|i| i.objectives.clone()).collect();
    let raw = raw_fitness(&points);
    let dens = densities(&points, density_k);
    for (ind, (r, d)) in combined.iter_mut().zip(raw.into_iter().zip(dens)) {
        ind.fitness = Some(r + d);
    }
}

/// The SPEA2 engine, generic over the problem definition.
pub struct Spea2<'a, P: Problem> {
    problem: &'a P,
    config: EngineConfig,
}

impl<'a, P: Problem> Spea2<'a, P> {
    /// Creates an engine after validating the configuration.
    pub fn new(problem: &'a P, config: EngineConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { problem, config })
    }
}

impl<'a, P: Problem> Engine<P> for Spea2<'a, P> {
    fn kind(&self) -> EngineKind {
        EngineKind::Spea2
    }

    fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn run_seeded<R, F>(
        &self,
        rng: &mut R,
        seeds: Vec<P::Genome>,
        mut observer: F,
    ) -> EngineOutcome<P::Genome>
    where
        R: Rng + ?Sized,
        F: FnMut(&GenerationSnapshot<'_, P::Genome>) -> bool,
    {
        let mut evaluations = 0usize;

        // The incremental fitness kernel: pairwise dominance and distance
        // state persists across generations, so each fitness assignment
        // only computes the pairs involving this generation's offspring.
        let mut kernel = FitnessKernel::new();

        // Initial population Q_0: seeds first, then random genomes, all
        // repaired and evaluated as one batch.
        let mut population = seeded_initial_population(
            self.problem,
            self.config.population_size,
            seeds,
            rng,
            &mut evaluations,
        );
        let mut population_ids = kernel.alloc_ids(population.len());
        let mut archive: Vec<Individual<P::Genome>> = Vec::new();
        let mut archive_ids: Vec<u64> = Vec::new();
        let mut generations_run = 0usize;

        for generation in 0..self.config.generations {
            generations_run = generation + 1;

            // 1. Fitness assignment over the union of population and
            // archive. Archive-vs-archive pairs are reused from the
            // previous generation through the kernel.
            let mut combined: Vec<Individual<P::Genome>> =
                Vec::with_capacity(population.len() + archive.len());
            combined.append(&mut population);
            combined.append(&mut archive);
            let mut combined_ids: Vec<u64> =
                Vec::with_capacity(population_ids.len() + archive_ids.len());
            combined_ids.append(&mut population_ids);
            combined_ids.append(&mut archive_ids);
            kernel.assign_fitness(&mut combined, &combined_ids, self.config.density_k);

            // 2. Environmental selection into the next archive; truncation
            // reads distances straight from the kernel's triangle.
            let selected =
                environmental_selection_with(&combined, self.config.archive_size, |a, b| {
                    kernel.distance(a, b)
                });
            let mut next_archive: Vec<Individual<P::Genome>> = Vec::with_capacity(selected.len());
            let mut next_archive_ids: Vec<u64> = Vec::with_capacity(selected.len());
            // Extract in index order without cloning genomes more than once.
            let mut keep = vec![false; combined.len()];
            for &i in &selected {
                keep[i] = true;
            }
            for (i, ind) in combined.into_iter().enumerate() {
                if keep[i] {
                    next_archive.push(ind);
                    next_archive_ids.push(combined_ids[i]);
                }
            }
            archive = next_archive;
            archive_ids = next_archive_ids;

            // 3. Mating selection from the archive.
            let mating_pool = fill_mating_pool(&archive, self.config.population_size, rng);

            // 4. Crossover, mutation, and repair to build the next
            // generation's genomes. Evaluation is deferred so the whole
            // brood goes through `evaluate_batch` at once.
            let mut child_genomes: Vec<P::Genome> =
                Vec::with_capacity(self.config.population_size + 1);
            let mut pair_iter = mating_pool.chunks(2);
            while child_genomes.len() < self.config.population_size {
                let pair = pair_iter.next().unwrap_or(&[]);
                let (pa, pb) = match pair {
                    [a, b] => (*a, *b),
                    [a] => (*a, *a),
                    _ => {
                        // Mating pool exhausted (odd sizes): start a fresh pass.
                        pair_iter = mating_pool.chunks(2);
                        continue;
                    }
                };
                // Steps 4–5 continued: crossover, mutation, and the
                // "meeting the bound" repair, shared with NSGA-II.
                push_offspring_pair(
                    self.problem,
                    self.config.mutation_rate,
                    &archive[pa].genome,
                    &archive[pb].genome,
                    rng,
                    &mut child_genomes,
                    self.config.population_size,
                );
            }
            population = evaluate_into_individuals(self.problem, child_genomes, &mut evaluations);
            population_ids = kernel.alloc_ids(population.len());

            // 6. Observer hook (Ω update, logging, convergence checks).
            let snapshot = GenerationSnapshot {
                generation,
                archive: &archive,
                population: &population,
                evaluations,
            };
            if !observer(&snapshot) {
                break;
            }
        }

        // Final fitness assignment so the returned archive is ranked. The
        // archive is a subset of the last combined set, so every pair is a
        // kernel cache hit.
        kernel.assign_fitness(&mut archive, &archive_ids, self.config.density_k);
        let kernel_stats = kernel.stats();
        EngineOutcome {
            archive,
            generations_run,
            evaluations,
            fitness_pairs_reused: kernel_stats.pairs_reused,
            fitness_pairs_computed: kernel_stats.pairs_computed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::{dominates, pareto_front};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The classical Schaffer N.1 problem: minimize (x², (x−2)²) over x.
    /// Its Pareto set is x ∈ [0, 2] and the front satisfies
    /// f2 = (sqrt(f1) − 2)².
    struct Schaffer;

    impl Problem for Schaffer {
        type Genome = f64;

        fn num_objectives(&self) -> usize {
            2
        }

        fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.gen_range(-10.0..10.0)
        }

        fn evaluate(&self, x: &f64) -> Objectives {
            Objectives::pair(x * x, (x - 2.0) * (x - 2.0))
        }

        fn crossover<R: Rng + ?Sized>(&self, a: &f64, b: &f64, rng: &mut R) -> (f64, f64) {
            let w: f64 = rng.gen();
            (w * a + (1.0 - w) * b, (1.0 - w) * a + w * b)
        }

        fn mutate<R: Rng + ?Sized>(&self, x: &mut f64, rng: &mut R) {
            *x += rng.gen_range(-0.5..0.5);
        }

        fn repair<R: Rng + ?Sized>(&self, x: &mut f64, _rng: &mut R) {
            *x = x.clamp(-10.0, 10.0);
        }
    }

    #[test]
    fn config_validation() {
        assert!(Spea2Config::default().validate().is_ok());
        assert!(Spea2Config {
            population_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Spea2Config {
            archive_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Spea2Config {
            generations: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Spea2Config {
            mutation_rate: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Spea2Config {
            density_k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Spea2::new(
            &Schaffer,
            Spea2Config {
                generations: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn fitness_assignment_marks_nondominated_below_one() {
        let mut combined = vec![
            Individual::new(0u32, Objectives::pair(1.0, 5.0)),
            Individual::new(1u32, Objectives::pair(2.0, 3.0)),
            Individual::new(2u32, Objectives::pair(3.0, 4.0)), // dominated
        ];
        assign_fitness(&mut combined, 1);
        assert!(combined[0].is_nondominated());
        assert!(combined[1].is_nondominated());
        assert!(!combined[2].is_nondominated());
        assert!(combined[2].fitness_or_worst() >= 1.0);
    }

    #[test]
    fn schaffer_front_is_found() {
        let problem = Schaffer;
        let config = Spea2Config {
            population_size: 60,
            archive_size: 30,
            generations: 60,
            mutation_rate: 0.4,
            density_k: 1,
        };
        let engine = Spea2::new(&problem, config).unwrap();
        assert_eq!(engine.kind(), EngineKind::Spea2);
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = engine.run(&mut rng);

        assert_eq!(outcome.generations_run, 60);
        assert!(outcome.evaluations >= 60 * 60);
        assert!(!outcome.archive.is_empty());
        assert!(outcome.archive.len() <= 30);

        // All archive genomes close to the Pareto set [0, 2].
        for ind in &outcome.archive {
            assert!(
                (-0.3..=2.3).contains(&ind.genome),
                "genome {} not near the Pareto set",
                ind.genome
            );
        }
        // The archive points are mutually non-dominated.
        let objs: Vec<Objectives> = outcome
            .archive
            .iter()
            .map(|i| i.objectives.clone())
            .collect();
        for a in &objs {
            assert!(!objs.iter().any(|b| dominates(b, a)));
        }
        // Front values satisfy the analytic relation approximately.
        for o in &objs {
            let f1 = o.value(0);
            let f2 = o.value(1);
            let expected = (f1.sqrt() - 2.0).powi(2);
            assert!((f2 - expected).abs() < 0.35, "f1={f1}, f2={f2}");
        }
        // The front spreads across a reasonable range rather than collapsing.
        let front = pareto_front(&objs);
        let min_f1 = front
            .iter()
            .map(|o| o.value(0))
            .fold(f64::INFINITY, f64::min);
        let max_f1 = front.iter().map(|o| o.value(0)).fold(0.0_f64, f64::max);
        assert!(
            max_f1 - min_f1 > 1.0,
            "front range [{min_f1}, {max_f1}] too narrow"
        );
    }

    #[test]
    fn observer_can_stop_early_and_sees_growing_generations() {
        let problem = Schaffer;
        let engine = Spea2::new(
            &problem,
            Spea2Config {
                generations: 50,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = Vec::new();
        let mut last_evaluations = 0usize;
        let outcome = engine.run_with_observer(&mut rng, |snap| {
            seen.push(snap.generation);
            assert!(!snap.archive.is_empty());
            assert_eq!(snap.population.len(), engine.config().population_size);
            assert!(snap.evaluations > last_evaluations);
            last_evaluations = snap.evaluations;
            snap.generation < 4 // stop after generation index 4
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(outcome.generations_run, 5);
        assert_eq!(outcome.evaluations, last_evaluations);
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let problem = Schaffer;
        let config = Spea2Config {
            generations: 10,
            ..Default::default()
        };
        let engine = Spea2::new(&problem, config).unwrap();
        let a = engine.run(&mut StdRng::seed_from_u64(33));
        let b = engine.run(&mut StdRng::seed_from_u64(33));
        let genomes =
            |o: &Spea2Outcome<f64>| o.archive.iter().map(|i| i.genome).collect::<Vec<_>>();
        assert_eq!(genomes(&a), genomes(&b));
        let c = engine.run(&mut StdRng::seed_from_u64(34));
        assert_ne!(genomes(&a), genomes(&c));
    }
}
