//! A generic SPEA2 (Strength Pareto Evolutionary Algorithm 2) engine.
//!
//! This module implements the algorithm skeleton the paper customizes
//! (Section V): fitness assignment (strength → raw fitness → density),
//! environmental selection into a bounded archive, binary-tournament mating
//! selection, and user-supplied variation (crossover + mutation) and repair
//! operators. The OptRR-specific genome, operators, and the optimal-set Ω
//! extension live in `optrr-core`; this crate stays problem-agnostic so it
//! can be reused (and is also exercised on standard test problems in the
//! tests below).

use crate::density::{densities, DEFAULT_K};
use crate::dominance::raw_fitness;
use crate::individual::Individual;
use crate::objectives::Objectives;
use crate::selection::{environmental_selection, fill_mating_pool};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A multi-objective problem definition: how to create, evaluate, vary, and
/// repair genomes.
pub trait Problem {
    /// The genome type being evolved.
    type Genome: Clone;

    /// Number of objectives (all minimized).
    fn num_objectives(&self) -> usize;

    /// Creates one random genome.
    fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Genome;

    /// Evaluates a genome into an objective vector. Infeasible genomes must
    /// be mapped to large finite penalty values rather than NaN.
    fn evaluate(&self, genome: &Self::Genome) -> Objectives;

    /// Produces two children from two parents (crossover).
    fn crossover<R: Rng + ?Sized>(
        &self,
        a: &Self::Genome,
        b: &Self::Genome,
        rng: &mut R,
    ) -> (Self::Genome, Self::Genome);

    /// Mutates a genome in place.
    fn mutate<R: Rng + ?Sized>(&self, genome: &mut Self::Genome, rng: &mut R);

    /// Repairs a genome so it satisfies the problem's constraints
    /// (the OptRR "meeting the bound" step). The default is a no-op.
    fn repair<R: Rng + ?Sized>(&self, _genome: &mut Self::Genome, _rng: &mut R) {}
}

/// SPEA2 run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spea2Config {
    /// Population size `N_Q`.
    pub population_size: usize,
    /// Archive size `N_V`.
    pub archive_size: usize,
    /// Number of generations to run.
    pub generations: usize,
    /// Per-child mutation probability.
    pub mutation_rate: f64,
    /// Neighbour index `k` for the density estimator.
    pub density_k: usize,
}

impl Default for Spea2Config {
    fn default() -> Self {
        Self {
            population_size: 80,
            archive_size: 40,
            generations: 100,
            mutation_rate: 0.3,
            density_k: DEFAULT_K,
        }
    }
}

impl Spea2Config {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.population_size == 0 {
            return Err("population_size must be positive".into());
        }
        if self.archive_size == 0 {
            return Err("archive_size must be positive".into());
        }
        if self.generations == 0 {
            return Err("generations must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err("mutation_rate must be in [0, 1]".into());
        }
        if self.density_k == 0 {
            return Err("density_k must be positive".into());
        }
        Ok(())
    }
}

/// A snapshot of the state at the end of a generation, passed to the
/// observer callback (used by `optrr-core` to maintain the optimal set Ω).
pub struct GenerationSnapshot<'a, G> {
    /// Generation index (0-based).
    pub generation: usize,
    /// The archive after environmental selection.
    pub archive: &'a [Individual<G>],
    /// The newly produced population (after crossover / mutation / repair
    /// and evaluation).
    pub population: &'a [Individual<G>],
}

/// The result of a SPEA2 run.
#[derive(Debug, Clone)]
pub struct Spea2Outcome<G> {
    /// The final archive (fitness-assigned, bounded by `archive_size`).
    pub archive: Vec<Individual<G>>,
    /// Number of generations actually executed.
    pub generations_run: usize,
    /// Total number of objective evaluations performed.
    pub evaluations: usize,
}

/// Assigns SPEA2 fitness (raw fitness + density) to every member of the
/// combined population, in place.
pub fn assign_fitness<G>(combined: &mut [Individual<G>], density_k: usize) {
    let points: Vec<Objectives> = combined.iter().map(|i| i.objectives.clone()).collect();
    let raw = raw_fitness(&points);
    let dens = densities(&points, density_k);
    for (ind, (r, d)) in combined.iter_mut().zip(raw.into_iter().zip(dens)) {
        ind.fitness = Some(r + d);
    }
}

/// The SPEA2 engine, generic over the problem definition.
pub struct Spea2<'a, P: Problem> {
    problem: &'a P,
    config: Spea2Config,
}

impl<'a, P: Problem> Spea2<'a, P> {
    /// Creates an engine after validating the configuration.
    pub fn new(problem: &'a P, config: Spea2Config) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { problem, config })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &Spea2Config {
        &self.config
    }

    /// Runs the algorithm, invoking `observer` at the end of each
    /// generation (the hook `optrr-core` uses for the optimal set Ω and for
    /// early-termination bookkeeping). The observer returns `true` to keep
    /// going and `false` to stop early.
    pub fn run_with_observer<R, F>(
        &self,
        rng: &mut R,
        observer: F,
    ) -> Spea2Outcome<P::Genome>
    where
        R: Rng + ?Sized,
        F: FnMut(&GenerationSnapshot<'_, P::Genome>) -> bool,
    {
        self.run_seeded(rng, Vec::new(), observer)
    }

    /// Runs the algorithm with an explicitly seeded initial population.
    ///
    /// The supplied genomes (repaired before evaluation) fill the first
    /// slots of generation 0; the remainder of the population is filled
    /// with random genomes as usual. Seeds beyond `population_size` are
    /// ignored. Seeding with known-good solutions (e.g. the classical
    /// baseline matrices in OptRR) accelerates convergence without changing
    /// the algorithm's steady-state behaviour.
    pub fn run_seeded<R, F>(
        &self,
        rng: &mut R,
        seeds: Vec<P::Genome>,
        mut observer: F,
    ) -> Spea2Outcome<P::Genome>
    where
        R: Rng + ?Sized,
        F: FnMut(&GenerationSnapshot<'_, P::Genome>) -> bool,
    {
        let mut evaluations = 0usize;

        // Initial population Q_0: seeds first, then random genomes.
        let mut initial_genomes: Vec<P::Genome> = seeds;
        initial_genomes.truncate(self.config.population_size);
        while initial_genomes.len() < self.config.population_size {
            initial_genomes.push(self.problem.random_genome(rng));
        }
        let mut population: Vec<Individual<P::Genome>> = initial_genomes
            .into_iter()
            .map(|mut genome| {
                self.problem.repair(&mut genome, rng);
                let objectives = self.problem.evaluate(&genome);
                evaluations += 1;
                Individual::new(genome, objectives)
            })
            .collect();
        let mut archive: Vec<Individual<P::Genome>> = Vec::new();
        let mut generations_run = 0usize;

        for generation in 0..self.config.generations {
            generations_run = generation + 1;

            // 1. Fitness assignment over the union of population and archive.
            let mut combined: Vec<Individual<P::Genome>> = Vec::with_capacity(
                population.len() + archive.len(),
            );
            combined.append(&mut population);
            combined.append(&mut archive);
            assign_fitness(&mut combined, self.config.density_k);

            // 2. Environmental selection into the next archive.
            let selected = environmental_selection(&combined, self.config.archive_size);
            let mut next_archive: Vec<Individual<P::Genome>> = Vec::with_capacity(selected.len());
            // Extract in index order without cloning genomes more than once.
            let mut keep = vec![false; combined.len()];
            for &i in &selected {
                keep[i] = true;
            }
            for (i, ind) in combined.into_iter().enumerate() {
                if keep[i] {
                    next_archive.push(ind);
                }
            }
            archive = next_archive;

            // 3. Mating selection from the archive.
            let mating_pool = fill_mating_pool(&archive, self.config.population_size, rng);

            // 4. Crossover, mutation, and repair to build the next population.
            let mut next_population: Vec<Individual<P::Genome>> =
                Vec::with_capacity(self.config.population_size);
            let mut pair_iter = mating_pool.chunks(2);
            while next_population.len() < self.config.population_size {
                let pair = pair_iter.next().unwrap_or(&[]);
                let (pa, pb) = match pair {
                    [a, b] => (*a, *b),
                    [a] => (*a, *a),
                    _ => {
                        // Mating pool exhausted (odd sizes): start a fresh pass.
                        pair_iter = mating_pool.chunks(2);
                        continue;
                    }
                };
                let (mut child_a, mut child_b) = self.problem.crossover(
                    &archive[pa].genome,
                    &archive[pb].genome,
                    rng,
                );
                for child in [&mut child_a, &mut child_b] {
                    if rng.gen::<f64>() < self.config.mutation_rate {
                        self.problem.mutate(child, rng);
                    }
                    // 5. Meeting the bound (constraint repair).
                    self.problem.repair(child, rng);
                }
                for child in [child_a, child_b] {
                    if next_population.len() >= self.config.population_size {
                        break;
                    }
                    let objectives = self.problem.evaluate(&child);
                    evaluations += 1;
                    next_population.push(Individual::new(child, objectives));
                }
            }
            population = next_population;

            // 6. Observer hook (Ω update, logging, convergence checks).
            let snapshot = GenerationSnapshot { generation, archive: &archive, population: &population };
            if !observer(&snapshot) {
                break;
            }
        }

        // Final fitness assignment so the returned archive is ranked.
        assign_fitness(&mut archive, self.config.density_k);
        Spea2Outcome { archive, generations_run, evaluations }
    }

    /// Runs the algorithm without an observer.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> Spea2Outcome<P::Genome> {
        self.run_with_observer(rng, |_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::{dominates, pareto_front};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The classical Schaffer N.1 problem: minimize (x², (x−2)²) over x.
    /// Its Pareto set is x ∈ [0, 2] and the front satisfies
    /// f2 = (sqrt(f1) − 2)².
    struct Schaffer;

    impl Problem for Schaffer {
        type Genome = f64;

        fn num_objectives(&self) -> usize {
            2
        }

        fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.gen_range(-10.0..10.0)
        }

        fn evaluate(&self, x: &f64) -> Objectives {
            Objectives::pair(x * x, (x - 2.0) * (x - 2.0))
        }

        fn crossover<R: Rng + ?Sized>(&self, a: &f64, b: &f64, rng: &mut R) -> (f64, f64) {
            let w: f64 = rng.gen();
            (w * a + (1.0 - w) * b, (1.0 - w) * a + w * b)
        }

        fn mutate<R: Rng + ?Sized>(&self, x: &mut f64, rng: &mut R) {
            *x += rng.gen_range(-0.5..0.5);
        }

        fn repair<R: Rng + ?Sized>(&self, x: &mut f64, _rng: &mut R) {
            *x = x.clamp(-10.0, 10.0);
        }
    }

    #[test]
    fn config_validation() {
        assert!(Spea2Config::default().validate().is_ok());
        assert!(Spea2Config { population_size: 0, ..Default::default() }.validate().is_err());
        assert!(Spea2Config { archive_size: 0, ..Default::default() }.validate().is_err());
        assert!(Spea2Config { generations: 0, ..Default::default() }.validate().is_err());
        assert!(Spea2Config { mutation_rate: 1.5, ..Default::default() }.validate().is_err());
        assert!(Spea2Config { density_k: 0, ..Default::default() }.validate().is_err());
        assert!(Spea2::new(&Schaffer, Spea2Config { generations: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn fitness_assignment_marks_nondominated_below_one() {
        let mut combined = vec![
            Individual::new(0u32, Objectives::pair(1.0, 5.0)),
            Individual::new(1u32, Objectives::pair(2.0, 3.0)),
            Individual::new(2u32, Objectives::pair(3.0, 4.0)), // dominated
        ];
        assign_fitness(&mut combined, 1);
        assert!(combined[0].is_nondominated());
        assert!(combined[1].is_nondominated());
        assert!(!combined[2].is_nondominated());
        assert!(combined[2].fitness_or_worst() >= 1.0);
    }

    #[test]
    fn schaffer_front_is_found() {
        let problem = Schaffer;
        let config = Spea2Config {
            population_size: 60,
            archive_size: 30,
            generations: 60,
            mutation_rate: 0.4,
            density_k: 1,
        };
        let engine = Spea2::new(&problem, config).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = engine.run(&mut rng);

        assert_eq!(outcome.generations_run, 60);
        assert!(outcome.evaluations >= 60 * 60);
        assert!(!outcome.archive.is_empty());
        assert!(outcome.archive.len() <= 30);

        // All archive genomes close to the Pareto set [0, 2].
        for ind in &outcome.archive {
            assert!(
                (-0.3..=2.3).contains(&ind.genome),
                "genome {} not near the Pareto set",
                ind.genome
            );
        }
        // The archive points are mutually non-dominated.
        let objs: Vec<Objectives> = outcome.archive.iter().map(|i| i.objectives.clone()).collect();
        for a in &objs {
            assert!(!objs.iter().any(|b| dominates(b, a)));
        }
        // Front values satisfy the analytic relation approximately.
        for o in &objs {
            let f1 = o.value(0);
            let f2 = o.value(1);
            let expected = (f1.sqrt() - 2.0).powi(2);
            assert!((f2 - expected).abs() < 0.35, "f1={f1}, f2={f2}");
        }
        // The front spreads across a reasonable range rather than collapsing.
        let front = pareto_front(&objs);
        let min_f1 = front.iter().map(|o| o.value(0)).fold(f64::INFINITY, f64::min);
        let max_f1 = front.iter().map(|o| o.value(0)).fold(0.0_f64, f64::max);
        assert!(max_f1 - min_f1 > 1.0, "front range [{min_f1}, {max_f1}] too narrow");
    }

    #[test]
    fn observer_can_stop_early_and_sees_growing_generations() {
        let problem = Schaffer;
        let engine = Spea2::new(
            &problem,
            Spea2Config { generations: 50, ..Default::default() },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = Vec::new();
        let outcome = engine.run_with_observer(&mut rng, |snap| {
            seen.push(snap.generation);
            assert!(!snap.archive.is_empty());
            assert_eq!(snap.population.len(), engine.config().population_size);
            snap.generation < 4 // stop after generation index 4
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(outcome.generations_run, 5);
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let problem = Schaffer;
        let config = Spea2Config { generations: 10, ..Default::default() };
        let engine = Spea2::new(&problem, config).unwrap();
        let a = engine.run(&mut StdRng::seed_from_u64(33));
        let b = engine.run(&mut StdRng::seed_from_u64(33));
        let genomes = |o: &Spea2Outcome<f64>| o.archive.iter().map(|i| i.genome).collect::<Vec<_>>();
        assert_eq!(genomes(&a), genomes(&b));
        let c = engine.run(&mut StdRng::seed_from_u64(34));
        assert_ne!(genomes(&a), genomes(&c));
    }
}
