//! Mating selection (binary tournament) and environmental selection
//! (archive update with truncation), following SPEA2 as described in
//! Section V.C / V.D of the paper.

use crate::individual::Individual;
use crate::objectives::Objectives;
use rand::Rng;

/// Binary tournament selection: picks two members uniformly at random and
/// returns the index of the one with the better (lower) fitness. Ties go to
/// the first pick.
pub fn binary_tournament<G, R: Rng + ?Sized>(pool: &[Individual<G>], rng: &mut R) -> usize {
    assert!(!pool.is_empty(), "cannot select from an empty pool");
    let a = rng.gen_range(0..pool.len());
    let b = rng.gen_range(0..pool.len());
    if pool[a].fitness_or_worst() <= pool[b].fitness_or_worst() {
        a
    } else {
        b
    }
}

/// Fills a mating pool of `pool_size` indices by repeated binary
/// tournaments over `candidates`.
pub fn fill_mating_pool<G, R: Rng + ?Sized>(
    candidates: &[Individual<G>],
    pool_size: usize,
    rng: &mut R,
) -> Vec<usize> {
    (0..pool_size)
        .map(|_| binary_tournament(candidates, rng))
        .collect()
}

/// SPEA2 environmental selection over an already fitness-assigned combined
/// population. Returns the indices selected for the next archive:
///
/// 1. all non-dominated members (fitness < 1);
/// 2. if fewer than `archive_size`, topped up with the best dominated
///    members by fitness;
/// 3. if more than `archive_size`, iteratively truncated by removing the
///    member with the smallest distance to its nearest neighbour
///    (ties broken by the next-nearest distances).
pub fn environmental_selection<G>(combined: &[Individual<G>], archive_size: usize) -> Vec<usize> {
    assert!(archive_size > 0, "archive size must be positive");
    let mut selected: Vec<usize> = combined
        .iter()
        .enumerate()
        .filter(|(_, ind)| ind.is_nondominated())
        .map(|(i, _)| i)
        .collect();

    if selected.len() < archive_size {
        // Top up with the best dominated individuals.
        let mut dominated: Vec<usize> = combined
            .iter()
            .enumerate()
            .filter(|(_, ind)| !ind.is_nondominated())
            .map(|(i, _)| i)
            .collect();
        dominated.sort_by(|&a, &b| {
            combined[a]
                .fitness_or_worst()
                .partial_cmp(&combined[b].fitness_or_worst())
                .expect("finite fitness")
        });
        for idx in dominated {
            if selected.len() >= archive_size {
                break;
            }
            selected.push(idx);
        }
        return selected;
    }

    // Truncate by nearest-neighbour distance until the size fits.
    while selected.len() > archive_size {
        let points: Vec<&Objectives> = selected.iter().map(|&i| &combined[i].objectives).collect();
        let remove_pos = most_crowded(&points);
        selected.remove(remove_pos);
    }
    selected
}

/// Finds the index (into `points`) of the member with the lexicographically
/// smallest sorted distance vector to the others — the SPEA2 truncation
/// victim.
fn most_crowded(points: &[&Objectives]) -> usize {
    let n = points.len();
    debug_assert!(n > 1);
    // Pre-compute each member's sorted distance list.
    let mut sorted_dists: Vec<Vec<f64>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut d: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| points[i].distance(points[j]))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        sorted_dists.push(d);
    }
    let mut best = 0usize;
    for i in 1..n {
        if lexicographically_smaller(&sorted_dists[i], &sorted_dists[best]) {
            best = i;
        }
    }
    best
}

/// True when `a` is lexicographically smaller than `b` (first differing
/// distance decides).
fn lexicographically_smaller(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        if x < y {
            return true;
        }
        if x > y {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ind(a: f64, b: f64, fitness: f64) -> Individual<u32> {
        let mut i = Individual::new(0u32, Objectives::pair(a, b));
        i.fitness = Some(fitness);
        i
    }

    #[test]
    fn binary_tournament_prefers_lower_fitness() {
        let pool = vec![ind(1.0, 1.0, 5.0), ind(2.0, 2.0, 0.1)];
        let mut rng = StdRng::seed_from_u64(1);
        let mut wins = [0usize; 2];
        for _ in 0..2000 {
            wins[binary_tournament(&pool, &mut rng)] += 1;
        }
        // The low-fitness member should win clearly more often (it wins every
        // mixed tournament, which is half of them, plus half of the rest).
        assert!(wins[1] > wins[0], "wins: {wins:?}");
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn binary_tournament_rejects_empty_pool() {
        let pool: Vec<Individual<u32>> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let _ = binary_tournament(&pool, &mut rng);
    }

    #[test]
    fn mating_pool_has_requested_size() {
        let pool = vec![ind(1.0, 1.0, 0.2), ind(2.0, 2.0, 0.3), ind(3.0, 3.0, 2.0)];
        let mut rng = StdRng::seed_from_u64(2);
        let mates = fill_mating_pool(&pool, 10, &mut rng);
        assert_eq!(mates.len(), 10);
        assert!(mates.iter().all(|&i| i < 3));
    }

    #[test]
    fn environmental_selection_keeps_all_nondominated_when_they_fit() {
        let combined = vec![
            ind(1.0, 5.0, 0.1),
            ind(2.0, 3.0, 0.2),
            ind(4.0, 1.0, 0.3),
            ind(5.0, 5.0, 3.0), // dominated
        ];
        let selected = environmental_selection(&combined, 3);
        assert_eq!(selected, vec![0, 1, 2]);
    }

    #[test]
    fn environmental_selection_tops_up_with_best_dominated() {
        let combined = vec![
            ind(1.0, 5.0, 0.1),
            ind(5.0, 5.0, 3.0), // dominated, fitness 3
            ind(6.0, 6.0, 7.0), // dominated, fitness 7
        ];
        let selected = environmental_selection(&combined, 2);
        assert_eq!(selected, vec![0, 1]);
        // Asking for more than exists returns everything.
        let all = environmental_selection(&combined, 10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn environmental_selection_truncates_the_most_crowded() {
        // Four non-dominated points; two nearly coincident. Truncation to 3
        // must remove one of the crowded pair, keeping the extremes.
        let combined = vec![
            ind(0.0, 10.0, 0.1),
            ind(5.0, 5.0, 0.1),
            ind(5.05, 4.95, 0.1),
            ind(10.0, 0.0, 0.1),
        ];
        let selected = environmental_selection(&combined, 3);
        assert_eq!(selected.len(), 3);
        assert!(selected.contains(&0));
        assert!(selected.contains(&3));
        // Exactly one of the crowded pair survives.
        assert_eq!(
            selected.contains(&1) as usize + selected.contains(&2) as usize,
            1
        );
    }

    #[test]
    #[should_panic(expected = "archive size must be positive")]
    fn zero_archive_size_panics() {
        let combined = vec![ind(1.0, 1.0, 0.1)];
        let _ = environmental_selection(&combined, 0);
    }

    #[test]
    fn lexicographic_comparison() {
        assert!(lexicographically_smaller(&[1.0, 5.0], &[2.0, 1.0]));
        assert!(!lexicographically_smaller(&[2.0, 1.0], &[1.0, 5.0]));
        assert!(lexicographically_smaller(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!lexicographically_smaller(&[1.0, 3.0], &[1.0, 3.0]));
    }
}
