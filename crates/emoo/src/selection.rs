//! Mating selection (binary tournament) and environmental selection
//! (archive update with truncation), following SPEA2 as described in
//! Section V.C / V.D of the paper.

use crate::individual::Individual;
use rand::Rng;

/// Binary tournament selection: picks two members uniformly at random and
/// returns the index of the one with the better (lower) fitness. Ties go to
/// the first pick.
pub fn binary_tournament<G, R: Rng + ?Sized>(pool: &[Individual<G>], rng: &mut R) -> usize {
    assert!(!pool.is_empty(), "cannot select from an empty pool");
    let a = rng.gen_range(0..pool.len());
    let b = rng.gen_range(0..pool.len());
    if pool[a].fitness_or_worst() <= pool[b].fitness_or_worst() {
        a
    } else {
        b
    }
}

/// Fills a mating pool of `pool_size` indices by repeated binary
/// tournaments over `candidates`.
pub fn fill_mating_pool<G, R: Rng + ?Sized>(
    candidates: &[Individual<G>],
    pool_size: usize,
    rng: &mut R,
) -> Vec<usize> {
    (0..pool_size)
        .map(|_| binary_tournament(candidates, rng))
        .collect()
}

/// SPEA2 environmental selection over an already fitness-assigned combined
/// population, computing objective distances on the fly. Engines that have
/// a [`FitnessKernel`](crate::FitnessKernel) holding the distance triangle
/// for `combined` should call [`environmental_selection_with`] with
/// [`FitnessKernel::distance`](crate::FitnessKernel::distance) instead, so
/// truncation reuses the cached distances.
pub fn environmental_selection<G>(combined: &[Individual<G>], archive_size: usize) -> Vec<usize> {
    environmental_selection_with(combined, archive_size, |a, b| {
        combined[a].objectives.distance(&combined[b].objectives)
    })
}

/// SPEA2 environmental selection with a caller-supplied distance source
/// (`distance(a, b)` over indices into `combined`). Returns the indices
/// selected for the next archive:
///
/// 1. all non-dominated members (fitness < 1);
/// 2. if fewer than `archive_size`, topped up with the best dominated
///    members by fitness;
/// 3. if more than `archive_size`, iteratively truncated by removing the
///    member with the smallest distance to its nearest neighbour
///    (ties broken by the next-nearest distances).
pub fn environmental_selection_with<G>(
    combined: &[Individual<G>],
    archive_size: usize,
    distance: impl Fn(usize, usize) -> f64,
) -> Vec<usize> {
    assert!(archive_size > 0, "archive size must be positive");
    let mut selected: Vec<usize> = combined
        .iter()
        .enumerate()
        .filter(|(_, ind)| ind.is_nondominated())
        .map(|(i, _)| i)
        .collect();

    if selected.len() < archive_size {
        // Top up with the best dominated individuals.
        let mut dominated: Vec<usize> = combined
            .iter()
            .enumerate()
            .filter(|(_, ind)| !ind.is_nondominated())
            .map(|(i, _)| i)
            .collect();
        dominated.sort_by(|&a, &b| {
            combined[a]
                .fitness_or_worst()
                .partial_cmp(&combined[b].fitness_or_worst())
                .expect("finite fitness")
        });
        for idx in dominated {
            if selected.len() >= archive_size {
                break;
            }
            selected.push(idx);
        }
        return selected;
    }

    truncate_most_crowded(&mut selected, archive_size, &distance);
    selected
}

/// Iteratively removes the member with the lexicographically smallest
/// sorted distance vector until `selected` fits `archive_size`.
///
/// The lexicographic winner's first element is necessarily the globally
/// smallest nearest-neighbour distance, so each round needs only a min
/// scan per member (partial selection); full sorted distance vectors are
/// built — into two reusable buffers — solely for the members tied on that
/// minimum (typically just the two endpoints of the closest pair). Ties on
/// the whole vector resolve to the earliest member, exactly like a full
/// lexicographic argmin.
fn truncate_most_crowded(
    selected: &mut Vec<usize>,
    archive_size: usize,
    distance: &impl Fn(usize, usize) -> f64,
) {
    let mut mins: Vec<f64> = Vec::new();
    let mut best_row: Vec<f64> = Vec::new();
    let mut row: Vec<f64> = Vec::new();
    while selected.len() > archive_size {
        let n = selected.len();
        debug_assert!(n > 1);
        // Nearest-neighbour distance of every member: a min scan, no sort.
        mins.clear();
        for (p, &i) in selected.iter().enumerate() {
            let mut best = f64::INFINITY;
            for (q, &j) in selected.iter().enumerate() {
                if p == q {
                    continue;
                }
                let d = distance(i, j);
                if d.partial_cmp(&best).expect("finite distances") == std::cmp::Ordering::Less {
                    best = d;
                }
            }
            mins.push(best);
        }
        let global_min = mins
            .iter()
            .copied()
            .reduce(|a, b| if b < a { b } else { a })
            .expect("non-empty selection");

        // Tie-break the candidates (members whose nearest distance equals
        // the global minimum) on their full sorted distance vectors.
        let mut victim = usize::MAX;
        for (p, &m) in mins.iter().enumerate() {
            if m != global_min {
                continue;
            }
            if victim == usize::MAX {
                victim = p;
                fill_sorted_row(&mut best_row, selected, p, distance);
                continue;
            }
            fill_sorted_row(&mut row, selected, p, distance);
            if lexicographically_smaller(&row, &best_row) {
                victim = p;
                std::mem::swap(&mut best_row, &mut row);
            }
        }
        selected.remove(victim);
    }
}

/// Fills `row` with member `p`'s sorted distances to every other selected
/// member.
fn fill_sorted_row(
    row: &mut Vec<f64>,
    selected: &[usize],
    p: usize,
    distance: &impl Fn(usize, usize) -> f64,
) {
    row.clear();
    let i = selected[p];
    for (q, &j) in selected.iter().enumerate() {
        if q != p {
            row.push(distance(i, j));
        }
    }
    row.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
}

/// True when `a` is lexicographically smaller than `b` (first differing
/// distance decides).
fn lexicographically_smaller(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        if x < y {
            return true;
        }
        if x > y {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::Objectives;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ind(a: f64, b: f64, fitness: f64) -> Individual<u32> {
        let mut i = Individual::new(0u32, Objectives::pair(a, b));
        i.fitness = Some(fitness);
        i
    }

    #[test]
    fn binary_tournament_prefers_lower_fitness() {
        let pool = vec![ind(1.0, 1.0, 5.0), ind(2.0, 2.0, 0.1)];
        let mut rng = StdRng::seed_from_u64(1);
        let mut wins = [0usize; 2];
        for _ in 0..2000 {
            wins[binary_tournament(&pool, &mut rng)] += 1;
        }
        // The low-fitness member should win clearly more often (it wins every
        // mixed tournament, which is half of them, plus half of the rest).
        assert!(wins[1] > wins[0], "wins: {wins:?}");
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn binary_tournament_rejects_empty_pool() {
        let pool: Vec<Individual<u32>> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let _ = binary_tournament(&pool, &mut rng);
    }

    #[test]
    fn mating_pool_has_requested_size() {
        let pool = vec![ind(1.0, 1.0, 0.2), ind(2.0, 2.0, 0.3), ind(3.0, 3.0, 2.0)];
        let mut rng = StdRng::seed_from_u64(2);
        let mates = fill_mating_pool(&pool, 10, &mut rng);
        assert_eq!(mates.len(), 10);
        assert!(mates.iter().all(|&i| i < 3));
    }

    #[test]
    fn environmental_selection_keeps_all_nondominated_when_they_fit() {
        let combined = vec![
            ind(1.0, 5.0, 0.1),
            ind(2.0, 3.0, 0.2),
            ind(4.0, 1.0, 0.3),
            ind(5.0, 5.0, 3.0), // dominated
        ];
        let selected = environmental_selection(&combined, 3);
        assert_eq!(selected, vec![0, 1, 2]);
    }

    #[test]
    fn environmental_selection_tops_up_with_best_dominated() {
        let combined = vec![
            ind(1.0, 5.0, 0.1),
            ind(5.0, 5.0, 3.0), // dominated, fitness 3
            ind(6.0, 6.0, 7.0), // dominated, fitness 7
        ];
        let selected = environmental_selection(&combined, 2);
        assert_eq!(selected, vec![0, 1]);
        // Asking for more than exists returns everything.
        let all = environmental_selection(&combined, 10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn environmental_selection_truncates_the_most_crowded() {
        // Four non-dominated points; two nearly coincident. Truncation to 3
        // must remove one of the crowded pair, keeping the extremes.
        let combined = vec![
            ind(0.0, 10.0, 0.1),
            ind(5.0, 5.0, 0.1),
            ind(5.05, 4.95, 0.1),
            ind(10.0, 0.0, 0.1),
        ];
        let selected = environmental_selection(&combined, 3);
        assert_eq!(selected.len(), 3);
        assert!(selected.contains(&0));
        assert!(selected.contains(&3));
        // Exactly one of the crowded pair survives.
        assert_eq!(
            selected.contains(&1) as usize + selected.contains(&2) as usize,
            1
        );
    }

    #[test]
    #[should_panic(expected = "archive size must be positive")]
    fn zero_archive_size_panics() {
        let combined = vec![ind(1.0, 1.0, 0.1)];
        let _ = environmental_selection(&combined, 0);
    }

    #[test]
    fn lexicographic_comparison() {
        assert!(lexicographically_smaller(&[1.0, 5.0], &[2.0, 1.0]));
        assert!(!lexicographically_smaller(&[2.0, 1.0], &[1.0, 5.0]));
        assert!(lexicographically_smaller(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!lexicographically_smaller(&[1.0, 3.0], &[1.0, 3.0]));
    }
}
