//! The incremental fitness kernel: generation-persistent pairwise state.
//!
//! SPEA2 fitness assignment (strength → raw fitness → density, paper
//! Section V) and NSGA-II non-dominated sorting are both functions of the
//! pairwise dominance relations — and, for SPEA2, the pairwise objective
//! distances — over the combined population. Recomputing all of them every
//! generation costs O(n²) comparisons even though most of the combined set
//! (the surviving archive) is unchanged between generations.
//!
//! [`FitnessKernel`] owns that pairwise state across generations: a flat
//! antisymmetric dominance matrix and a flat symmetric distance matrix,
//! keyed by *stable individual ids*. When the membership changes by `m`
//! new individuals out of `n` total, only the pairs involving a new
//! individual are computed — roughly `m·n` comparisons instead of
//! `n·(n−1)/2` — while the surviving block is copied row-wise (branchless,
//! cache-friendly) from the previous matrices. Results are bitwise
//! identical to the from-scratch path
//! ([`assign_fitness`](crate::spea2::assign_fitness),
//! [`non_dominated_sort`](crate::nsga2::non_dominated_sort)); the crate's
//! property tests assert this over random insertion/removal sequences.
//!
//! ## Invariants
//!
//! * **Id stability** — an id names one genome with one fixed objective
//!   vector, forever. Engines allocate ids through
//!   [`FitnessKernel::alloc_ids`] when offspring are evaluated and never
//!   reuse them. Passing the same id with different objectives silently
//!   corrupts the cache.
//! * **Membership replacement** — each [`FitnessKernel::assign_fitness`] /
//!   [`FitnessKernel::ranks`] call replaces the tracked membership with the
//!   set it was handed; reuse happens against the *immediately previous*
//!   call. Engines alternate between subsets and supersets of one
//!   generation's individuals (population ⊂ union, archive ⊂ combined), so
//!   the running intersection stays large.
//! * **Distance invalidation** — [`FitnessKernel::ranks`] does not need
//!   distances and skips filling them, which invalidates the distance
//!   matrix; the next [`FitnessKernel::assign_fitness`] recomputes all
//!   distances (dominance entries are still reused).
//!
//! Large fills go data-parallel: when the number of fresh pairs reaches
//! [`FitnessKernel::with_parallel_threshold`]'s bound, the rows of the new
//! members are filled across cores. Each pair's value is deterministic, so
//! the parallel path is bitwise identical to the serial one.

use crate::dominance::{relation_from_flags, strict_better_flags, DominanceRelation};
use crate::individual::Individual;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// `dom[i·n + j]`: member `i` dominates member `j`.
const DOMINATES: i8 = 1;
/// `dom[i·n + j]`: member `j` dominates member `i`.
const DOMINATED_BY: i8 = -1;
/// `dom[i·n + j]`: neither dominates the other.
const NO_DOMINANCE: i8 = 0;

/// Baked-in minimum number of *fresh* pairs before a fill goes
/// rayon-parallel. Below this, spawn overhead exceeds the comparison work
/// (one pair is a handful of float compares). This is only the fallback:
/// the process-wide default that [`FitnessKernel::new`] actually reads is
/// settable via [`set_default_parallel_min_pairs`], which `optrr-core`'s
/// startup calibration (`core::tune`) installs after probing the machine.
pub const DEFAULT_PARALLEL_MIN_PAIRS: usize = 1 << 15;

/// Process-wide default for [`FitnessKernel::new`]'s parallel threshold.
static DEFAULT_MIN_PAIRS: AtomicUsize = AtomicUsize::new(DEFAULT_PARALLEL_MIN_PAIRS);

/// Installs a new process-wide default parallel-fill threshold, returned by
/// [`default_parallel_min_pairs`] and read by every subsequent
/// [`FitnessKernel::new`]. The threshold only moves the serial/parallel
/// crossover — both paths are bitwise identical — so installing a measured
/// value never changes results, only wall-clock time.
pub fn set_default_parallel_min_pairs(min_fresh_pairs: usize) {
    DEFAULT_MIN_PAIRS.store(min_fresh_pairs, Ordering::Relaxed);
}

/// The current process-wide default parallel-fill threshold.
pub fn default_parallel_min_pairs() -> usize {
    DEFAULT_MIN_PAIRS.load(Ordering::Relaxed)
}

/// Cumulative counters of the kernel's work, exposed through
/// [`EngineOutcome`](crate::EngineOutcome) and `core::RunStatistics` so
/// serving-layer refresh telemetry can report cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Unordered pairs whose dominance relation (and distance, when the
    /// caller needed distances) was copied from the previous generation.
    pub pairs_reused: u64,
    /// Unordered pairs that required a fresh comparison (and, for fitness
    /// assignment, a fresh distance).
    pub pairs_computed: u64,
    /// Number of membership updates performed (fitness assignments plus
    /// rank computations).
    pub updates: u64,
}

/// Generation-persistent pairwise dominance/distance state. See the module
/// docs for the contract; see [`Spea2`](crate::Spea2) and
/// [`Nsga2`](crate::Nsga2) for the engine integration.
#[derive(Debug)]
pub struct FitnessKernel {
    next_id: u64,
    ids: Vec<u64>,
    /// Flat n×n antisymmetric dominance matrix (`dom[i·n+j] = −dom[j·n+i]`,
    /// zero diagonal).
    dom: Vec<i8>,
    /// Flat n×n symmetric distance matrix; the diagonal holds `+∞` so a
    /// row min is directly the nearest-neighbour distance.
    dist: Vec<f64>,
    dist_valid: bool,
    /// Retired matrices, kept as scratch so steady-state updates allocate
    /// nothing.
    spare_dom: Vec<i8>,
    spare_dist: Vec<f64>,
    prev_index: HashMap<u64, usize>,
    strength_buf: Vec<usize>,
    raw_buf: Vec<f64>,
    scratch: Vec<f64>,
    /// Flattened objective store: member `i`'s objective vector is the
    /// contiguous slice `obj_flat[i·obj_dim .. (i+1)·obj_dim]`. Rebuilt per
    /// update (O(n·m)) so the O(m·n) fresh-pair fills read straight-line
    /// memory instead of chasing one heap `Vec` per individual.
    obj_flat: Vec<f64>,
    obj_dim: usize,
    parallel_min_pairs: usize,
    stats: KernelStats,
}

impl Default for FitnessKernel {
    fn default() -> Self {
        Self::new()
    }
}

/// Encodes a comparison outcome into a `dom` entry.
#[inline]
fn encode(relation: DominanceRelation) -> i8 {
    match relation {
        DominanceRelation::Dominates => DOMINATES,
        DominanceRelation::DominatedBy => DOMINATED_BY,
        DominanceRelation::NonDominated => NO_DOMINANCE,
    }
}

impl FitnessKernel {
    /// Creates an empty kernel with the process-wide default parallel-fill
    /// threshold (see [`set_default_parallel_min_pairs`]).
    pub fn new() -> Self {
        Self::with_parallel_threshold(default_parallel_min_pairs())
    }

    /// Creates an empty kernel that fills its matrices in parallel once a
    /// single update has at least `min_fresh_pairs` pairs to compute.
    /// `0` forces the parallel path; `usize::MAX` forces the serial one.
    pub fn with_parallel_threshold(min_fresh_pairs: usize) -> Self {
        Self {
            next_id: 0,
            ids: Vec::new(),
            dom: Vec::new(),
            dist: Vec::new(),
            dist_valid: false,
            spare_dom: Vec::new(),
            spare_dist: Vec::new(),
            prev_index: HashMap::new(),
            strength_buf: Vec::new(),
            raw_buf: Vec::new(),
            scratch: Vec::new(),
            obj_flat: Vec::new(),
            obj_dim: 0,
            parallel_min_pairs: min_fresh_pairs,
            stats: KernelStats::default(),
        }
    }

    /// Allocates one fresh individual id.
    pub fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Allocates `count` fresh individual ids.
    pub fn alloc_ids(&mut self, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.alloc_id()).collect()
    }

    /// The cumulative work counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Number of members in the currently tracked set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the kernel currently tracks no members.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Forgets all cached pairwise state (id allocation continues). The
    /// next update computes everything fresh.
    pub fn invalidate(&mut self) {
        self.ids.clear();
        self.dom.clear();
        self.dist.clear();
        self.dist_valid = false;
    }

    /// Distance between members `i` and `j` of the *current* membership
    /// (positions in the slice passed to the last
    /// [`FitnessKernel::assign_fitness`] call). Only valid while the
    /// distance matrix is — i.e. after a fitness assignment, before any
    /// [`FitnessKernel::ranks`] call.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        debug_assert!(self.dist_valid, "distance matrix is not filled");
        debug_assert!(i != j, "no self-distance");
        self.dist[i * self.ids.len() + j]
    }

    /// SPEA2 fitness assignment (raw fitness + density) over `combined`,
    /// reusing every pairwise relation whose two ids were both present in
    /// the previous update. Bitwise identical to
    /// [`assign_fitness`](crate::spea2::assign_fitness).
    pub fn assign_fitness<G>(
        &mut self,
        combined: &mut [Individual<G>],
        ids: &[u64],
        density_k: usize,
    ) {
        self.update_pairs(combined, ids, true);
        let n = combined.len();
        if n == 0 {
            return;
        }

        // Strength S(i): how many members i dominates; one pass over the
        // upper half of the dominance matrix.
        let mut strength = std::mem::take(&mut self.strength_buf);
        strength.clear();
        strength.resize(n, 0);
        let mut raw = std::mem::take(&mut self.raw_buf);
        raw.clear();
        raw.resize(n, 0.0);
        for i in 0..n {
            let row = &self.dom[i * n..(i + 1) * n];
            for (j, &rel) in row.iter().enumerate().skip(i + 1) {
                match rel {
                    DOMINATES => strength[i] += 1,
                    DOMINATED_BY => strength[j] += 1,
                    _ => {}
                }
            }
        }
        // Raw fitness R(i): sum of the strengths of i's dominators. The
        // strengths are integers, so the f64 sum is exact and
        // order-independent — bitwise equal to the from-scratch loop.
        for i in 0..n {
            let row = &self.dom[i * n..(i + 1) * n];
            for (j, &rel) in row.iter().enumerate().skip(i + 1) {
                match rel {
                    DOMINATES => raw[j] += strength[i] as f64,
                    DOMINATED_BY => raw[i] += strength[j] as f64,
                    _ => {}
                }
            }
        }

        // Density d(i) = 1/(σ_i^k + 2) straight off the distance rows. The
        // diagonal is +∞, so k = 1 (the paper's default) is a plain row
        // min; larger k partially selects in a reusable scratch row —
        // never a full sort.
        let mut scratch = std::mem::take(&mut self.scratch);
        for (i, individual) in combined.iter_mut().enumerate() {
            let row = &self.dist[i * n..(i + 1) * n];
            let sigma = if n == 1 {
                f64::INFINITY
            } else if density_k <= 1 {
                let mut best = f64::INFINITY;
                for &d in row {
                    if d < best {
                        best = d;
                    }
                }
                best
            } else {
                scratch.clear();
                scratch.extend_from_slice(row);
                // The diagonal ∞ sorts last among the n entries, so
                // clamping the order statistic to n−2 reproduces "the
                // farthest *other* point" for out-of-range k.
                let idx = (density_k - 1).min(n - 2);
                *scratch
                    .select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("finite distances"))
                    .1
            };
            let density = if sigma.is_infinite() {
                0.0
            } else {
                1.0 / (sigma + 2.0)
            };
            individual.fitness = Some(raw[i] + density);
        }
        self.scratch = scratch;
        self.strength_buf = strength;
        self.raw_buf = raw;
    }

    /// NSGA-II non-dominated-sort ranks over `members`, reusing cached
    /// dominance relations. Does not touch distances (and invalidates the
    /// distance matrix). Identical output to
    /// [`non_dominated_sort`](crate::nsga2::non_dominated_sort).
    pub fn ranks<G>(&mut self, members: &[Individual<G>], ids: &[u64]) -> Vec<usize> {
        self.update_pairs(members, ids, false);
        let n = members.len();
        let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut domination_count = vec![0usize; n];
        for i in 0..n {
            let row = &self.dom[i * n..(i + 1) * n];
            for (j, &rel) in row.iter().enumerate().skip(i + 1) {
                match rel {
                    DOMINATES => {
                        dominates_list[i].push(j);
                        domination_count[j] += 1;
                    }
                    DOMINATED_BY => {
                        dominates_list[j].push(i);
                        domination_count[i] += 1;
                    }
                    _ => {}
                }
            }
        }
        let mut rank = vec![0usize; n];
        let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
        let mut front_index = 0usize;
        while !current.is_empty() {
            let mut next = Vec::new();
            for &i in &current {
                rank[i] = front_index;
                for &j in &dominates_list[i] {
                    domination_count[j] -= 1;
                    if domination_count[j] == 0 {
                        next.push(j);
                    }
                }
            }
            front_index += 1;
            current = next;
        }
        rank
    }

    /// Replaces the tracked membership: the surviving block is copied
    /// row-wise from the previous matrices, fresh pairs are computed (in
    /// parallel when their count crosses the threshold).
    fn update_pairs<G>(&mut self, members: &[Individual<G>], ids: &[u64], need_dist: bool) {
        let n = members.len();
        assert_eq!(ids.len(), n, "one id per member");
        debug_assert_eq!(
            ids.iter().collect::<std::collections::HashSet<_>>().len(),
            n,
            "ids must be unique"
        );

        let old_n = self.ids.len();
        self.prev_index.clear();
        for (position, &id) in self.ids.iter().enumerate() {
            self.prev_index.insert(id, position);
        }
        // Current index → previous index for survivors; fresh members on
        // the other list.
        let mut survivors: Vec<(usize, usize)> = Vec::new();
        let mut fresh_members: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            match self.prev_index.get(id) {
                Some(&pi) => survivors.push((i, pi)),
                None => fresh_members.push(i),
            }
        }
        let s = survivors.len();
        let pairs = n * n.saturating_sub(1) / 2;
        let dist_reusable = self.dist_valid;
        // A surviving pair is fully reusable unless the caller needs
        // distances and the distance matrix is stale.
        let reused = if !need_dist || dist_reusable {
            (s * s.saturating_sub(1) / 2) as u64
        } else {
            0
        };
        let fresh_pairs = pairs as u64 - reused;

        // Retire the current matrices and fill fresh ones into the spare
        // buffers, so steady-state generations allocate nothing.
        let old_dom = std::mem::replace(&mut self.dom, std::mem::take(&mut self.spare_dom));
        let old_dist = std::mem::replace(&mut self.dist, std::mem::take(&mut self.spare_dist));
        let mut dom = std::mem::take(&mut self.dom);
        let mut dist = std::mem::take(&mut self.dist);
        dom.clear();
        dom.resize(n * n, NO_DOMINANCE);
        dist.clear();
        if need_dist {
            dist.resize(n * n, 0.0);
            for i in 0..n {
                dist[i * n + i] = f64::INFINITY;
            }
        }

        // Refresh the flattened objective store (SoA view of the member
        // set): one contiguous buffer the pair fills below index into.
        self.obj_dim = members.first().map_or(0, |m| m.objectives.len());
        self.obj_flat.clear();
        self.obj_flat.reserve(n * self.obj_dim);
        for m in members {
            debug_assert_eq!(m.objectives.len(), self.obj_dim, "mixed objective dims");
            self.obj_flat.extend_from_slice(m.objectives.values());
        }
        let obj = &self.obj_flat;
        let dim = self.obj_dim;

        // 1. Branchless copy of the surviving block, row by row.
        for &(i, pi) in &survivors {
            let old_dom_row = &old_dom[pi * old_n..(pi + 1) * old_n];
            let dom_row = &mut dom[i * n..(i + 1) * n];
            for &(j, pj) in &survivors {
                dom_row[j] = old_dom_row[pj];
            }
            if need_dist && dist_reusable {
                let old_dist_row = &old_dist[pi * old_n..(pi + 1) * old_n];
                let dist_row = &mut dist[i * n..(i + 1) * n];
                for &(j, pj) in &survivors {
                    dist_row[j] = old_dist_row[pj];
                }
            }
        }
        // Surviving pairs whose distances went stale (a rank pass skipped
        // them): dominance was copied above, distances are recomputed.
        if need_dist && !dist_reusable {
            for (a, &(i, _)) in survivors.iter().enumerate() {
                for &(j, _) in &survivors[a + 1..] {
                    let d = euclidean(obj, dim, i, j);
                    dist[i * n + j] = d;
                    dist[j * n + i] = d;
                }
            }
        }

        // 2. Fresh pairs: every pair touching a fresh member, computed
        // once (fresh-vs-survivor unconditionally, fresh-vs-fresh for the
        // lower current index) and written to both orientations.
        if fresh_pairs as usize >= self.parallel_min_pairs && !fresh_members.is_empty() {
            // Row-parallel: each fresh member computes its pair list; the
            // results are spliced in serially. Every value is
            // deterministic, so this is bitwise equal to the serial path.
            use rayon::prelude::*;
            let computed: Vec<Vec<(usize, i8, f64)>> = fresh_members
                .par_iter()
                .map(|&b| {
                    let mut row = Vec::with_capacity(s + fresh_members.len());
                    for &(a, _) in &survivors {
                        row.push(pair_entry(obj, dim, a, b, need_dist));
                    }
                    for &a in &fresh_members {
                        if a < b {
                            row.push(pair_entry(obj, dim, a, b, need_dist));
                        }
                    }
                    row
                })
                .collect();
            for (&b, row) in fresh_members.iter().zip(&computed) {
                for &(a, rel, d) in row {
                    dom[a * n + b] = rel;
                    dom[b * n + a] = -rel;
                    if need_dist {
                        dist[a * n + b] = d;
                        dist[b * n + a] = d;
                    }
                }
            }
        } else {
            for &b in &fresh_members {
                for &(a, _) in &survivors {
                    let (a, rel, d) = pair_entry(obj, dim, a, b, need_dist);
                    dom[a * n + b] = rel;
                    dom[b * n + a] = -rel;
                    if need_dist {
                        dist[a * n + b] = d;
                        dist[b * n + a] = d;
                    }
                }
                for &a in &fresh_members {
                    if a < b {
                        let (a, rel, d) = pair_entry(obj, dim, a, b, need_dist);
                        dom[a * n + b] = rel;
                        dom[b * n + a] = -rel;
                        if need_dist {
                            dist[a * n + b] = d;
                            dist[b * n + a] = d;
                        }
                    }
                }
            }
        }

        self.dom = dom;
        self.dist = dist;
        self.spare_dom = old_dom;
        self.spare_dist = old_dist;
        self.dist_valid = need_dist;
        self.ids.clear();
        self.ids.extend_from_slice(ids);
        self.stats.pairs_reused += reused;
        self.stats.pairs_computed += fresh_pairs;
        self.stats.updates += 1;
    }
}

/// Euclidean distance between the flattened objective rows `a` and `b`,
/// with the exact summation order of [`Objectives::distance`]
/// (ascending dimension, then sqrt) so the fill stays bitwise equal to the
/// from-scratch path.
///
/// [`Objectives::distance`]: crate::objectives::Objectives::distance
#[inline]
fn euclidean(obj: &[f64], dim: usize, a: usize, b: usize) -> f64 {
    let ra = &obj[a * dim..(a + 1) * dim];
    let rb = &obj[b * dim..(b + 1) * dim];
    ra.iter()
        .zip(rb.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Computes one fresh pair `(a, b)` off the flattened objective store: the
/// dominance relation seen from `a` (via the branch-free flag accumulation
/// in [`crate::dominance`]) and the distance when requested.
#[inline]
fn pair_entry(obj: &[f64], dim: usize, a: usize, b: usize, need_dist: bool) -> (usize, i8, f64) {
    let ra = &obj[a * dim..(a + 1) * dim];
    let rb = &obj[b * dim..(b + 1) * dim];
    let rel = encode(relation_from_flags(strict_better_flags(ra, rb)));
    let d = if need_dist {
        euclidean(obj, dim, a, b)
    } else {
        0.0
    };
    (a, rel, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsga2::non_dominated_sort;
    use crate::objectives::Objectives;
    use crate::spea2::assign_fitness;

    fn ind(a: f64, b: f64) -> Individual<u32> {
        Individual::new(0u32, Objectives::pair(a, b))
    }

    fn fitness_bits<G>(members: &[Individual<G>]) -> Vec<u64> {
        members
            .iter()
            .map(|m| m.fitness.expect("assigned").to_bits())
            .collect()
    }

    #[test]
    fn first_assignment_matches_scratch_and_counts_all_pairs() {
        let mut members = vec![ind(1.0, 5.0), ind(2.0, 3.0), ind(3.0, 4.0), ind(0.5, 6.0)];
        let mut reference = members.clone();
        assign_fitness(&mut reference, 1);

        let mut kernel = FitnessKernel::new();
        let ids = kernel.alloc_ids(members.len());
        kernel.assign_fitness(&mut members, &ids, 1);
        assert_eq!(fitness_bits(&members), fitness_bits(&reference));
        assert_eq!(kernel.stats().pairs_computed, 6);
        assert_eq!(kernel.stats().pairs_reused, 0);
    }

    #[test]
    fn surviving_pairs_are_reused_and_stay_bitwise_equal() {
        let mut kernel = FitnessKernel::new();
        let mut members = vec![ind(1.0, 5.0), ind(2.0, 3.0), ind(4.0, 1.0), ind(3.0, 3.5)];
        let mut ids = kernel.alloc_ids(members.len());
        kernel.assign_fitness(&mut members, &ids, 1);

        // Drop one member, add two new ones.
        members.remove(1);
        ids.remove(1);
        members.push(ind(0.2, 7.0));
        members.push(ind(5.0, 0.5));
        ids.extend(kernel.alloc_ids(2));

        let before = kernel.stats();
        kernel.assign_fitness(&mut members, &ids, 1);
        let after = kernel.stats();
        // 3 survivors → C(3,2) = 3 reused pairs; C(5,2) − 3 = 7 fresh.
        assert_eq!(after.pairs_reused - before.pairs_reused, 3);
        assert_eq!(after.pairs_computed - before.pairs_computed, 7);

        let mut reference = members.clone();
        assign_fitness(&mut reference, 1);
        assert_eq!(fitness_bits(&members), fitness_bits(&reference));
    }

    #[test]
    fn reordered_survivors_reuse_with_the_right_orientation() {
        let mut kernel = FitnessKernel::new();
        let mut members = vec![ind(1.0, 5.0), ind(2.0, 3.0), ind(4.0, 1.0)];
        let ids = kernel.alloc_ids(3);
        kernel.assign_fitness(&mut members, &ids, 1);

        // Same set, reversed order: everything reused, nothing computed.
        members.reverse();
        let reversed_ids: Vec<u64> = ids.iter().rev().copied().collect();
        let before = kernel.stats();
        kernel.assign_fitness(&mut members, &reversed_ids, 1);
        let after = kernel.stats();
        assert_eq!(after.pairs_reused - before.pairs_reused, 3);
        assert_eq!(after.pairs_computed - before.pairs_computed, 0);

        let mut reference = members.clone();
        assign_fitness(&mut reference, 1);
        assert_eq!(fitness_bits(&members), fitness_bits(&reference));
    }

    #[test]
    fn ranks_match_non_dominated_sort_and_invalidate_distances() {
        let mut kernel = FitnessKernel::new();
        let mut members = vec![ind(1.0, 1.0), ind(2.0, 2.0), ind(3.0, 3.0), ind(0.5, 3.5)];
        let ids = kernel.alloc_ids(members.len());
        kernel.assign_fitness(&mut members, &ids, 1);
        assert!((kernel.distance(0, 1) - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((kernel.distance(1, 0) - 2.0f64.sqrt()).abs() < 1e-12);

        let ranks = kernel.ranks(&members, &ids);
        let points: Vec<Objectives> = members.iter().map(|m| m.objectives.clone()).collect();
        assert_eq!(ranks, non_dominated_sort(&points));

        // Distances were invalidated by the rank pass: the next fitness
        // assignment recomputes them (pairs count as fresh) yet still
        // matches the from-scratch values.
        let before = kernel.stats();
        kernel.assign_fitness(&mut members, &ids, 1);
        let after = kernel.stats();
        assert_eq!(after.pairs_reused - before.pairs_reused, 0);
        assert_eq!(after.pairs_computed - before.pairs_computed, 6);
        let mut reference = members.clone();
        assign_fitness(&mut reference, 1);
        assert_eq!(fitness_bits(&members), fitness_bits(&reference));
    }

    #[test]
    fn parallel_fill_is_bitwise_equal_to_serial() {
        let point = |seed: u64| {
            let a = (seed.wrapping_mul(2654435761) % 1000) as f64 / 100.0;
            let b = (seed.wrapping_mul(40503) % 1000) as f64 / 100.0;
            ind(a, b)
        };
        let mut serial = FitnessKernel::with_parallel_threshold(usize::MAX);
        let mut parallel = FitnessKernel::with_parallel_threshold(0);
        let mut members: Vec<Individual<u32>> = (0..40).map(point).collect();
        let mut members_p = members.clone();
        let mut ids = serial.alloc_ids(members.len());
        let _ = parallel.alloc_ids(members.len());

        for step in 0..4 {
            serial.assign_fitness(&mut members, &ids, 2);
            parallel.assign_fitness(&mut members_p, &ids, 2);
            assert_eq!(fitness_bits(&members), fitness_bits(&members_p));
            // Keep the odd positions, add fresh points.
            let survivors: Vec<usize> = (0..members.len()).filter(|i| i % 2 == 1).collect();
            members = survivors.iter().map(|&i| members[i].clone()).collect();
            ids = survivors.iter().map(|&i| ids[i]).collect();
            for s in 0..12 {
                members.push(point(1000 + step * 100 + s));
                ids.push(serial.alloc_id());
                let _ = parallel.alloc_id();
            }
            members_p = members.clone();
        }
    }

    #[test]
    fn invalidate_forgets_cached_state() {
        let mut kernel = FitnessKernel::new();
        let mut members = vec![ind(1.0, 2.0), ind(2.0, 1.0)];
        let ids = kernel.alloc_ids(2);
        kernel.assign_fitness(&mut members, &ids, 1);
        assert_eq!(kernel.len(), 2);
        kernel.invalidate();
        assert!(kernel.is_empty());
        let before = kernel.stats();
        kernel.assign_fitness(&mut members, &ids, 1);
        let after = kernel.stats();
        assert_eq!(after.pairs_reused - before.pairs_reused, 0);
        assert_eq!(after.pairs_computed - before.pairs_computed, 1);
    }

    #[test]
    fn empty_and_singleton_memberships() {
        let mut kernel = FitnessKernel::new();
        let mut empty: Vec<Individual<u32>> = Vec::new();
        kernel.assign_fitness(&mut empty, &[], 1);
        assert!(kernel.is_empty());

        let mut single = vec![ind(1.0, 1.0)];
        let ids = kernel.alloc_ids(1);
        kernel.assign_fitness(&mut single, &ids, 1);
        // A singleton has no neighbours: raw fitness 0, density 0.
        assert_eq!(single[0].fitness, Some(0.0));
    }
}
