//! Pareto dominance and non-dominated set extraction.
//!
//! Definition 5.1 of the paper: a solution dominates another when it is no
//! worse on every objective and strictly better on at least one. All
//! objectives here are minimized.

use crate::objectives::Objectives;
use serde::{Deserialize, Serialize};

/// The outcome of comparing two objective vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DominanceRelation {
    /// The left solution dominates the right one.
    Dominates,
    /// The right solution dominates the left one.
    DominatedBy,
    /// Neither dominates the other (incomparable or equal).
    NonDominated,
}

/// Branch-free accumulation of the strictly-better flags over two raw
/// objective slices: `(a strictly better somewhere, b strictly better
/// somewhere)`.
///
/// The loop ORs the comparison masks instead of branching per dimension —
/// there is no early exit, so the compiler can unroll and vectorize it,
/// and the O(m·n) kernel fills that funnel through here stay branch-free.
/// NaN compares false on both sides, which leaves both flags unset — the
/// same "incomparable" outcome the branchy seed loop produced.
#[inline]
pub(crate) fn strict_better_flags(a: &[f64], b: &[f64]) -> (bool, bool) {
    debug_assert_eq!(a.len(), b.len(), "objective dimension mismatch");
    let mut a_better = 0u8;
    let mut b_better = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        a_better |= u8::from(x < y);
        b_better |= u8::from(y < x);
    }
    (a_better != 0, b_better != 0)
}

/// Maps the strictly-better flag pair to the dominance relation.
#[inline]
pub(crate) fn relation_from_flags(flags: (bool, bool)) -> DominanceRelation {
    match flags {
        (true, false) => DominanceRelation::Dominates,
        (false, true) => DominanceRelation::DominatedBy,
        _ => DominanceRelation::NonDominated,
    }
}

/// Compares two objective vectors under minimization.
pub fn compare(a: &Objectives, b: &Objectives) -> DominanceRelation {
    relation_from_flags(strict_better_flags(a.values(), b.values()))
}

/// True when `a` dominates `b`.
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    compare(a, b) == DominanceRelation::Dominates
}

/// Visits every dominating ordered pair of `points` exactly once, as
/// `visit(winner, loser)`.
///
/// This is the single pairwise call site behind [`non_dominated_indices`],
/// [`strength_values`], and [`raw_fitness`]: one branch-free [`compare`]
/// per unordered pair (half the compares of the textbook `i != j` double
/// loops it replaced), dispatching both orientations through the callback.
pub fn for_each_dominating_pair(points: &[Objectives], mut visit: impl FnMut(usize, usize)) {
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            match compare(&points[i], &points[j]) {
                DominanceRelation::Dominates => visit(i, j),
                DominanceRelation::DominatedBy => visit(j, i),
                DominanceRelation::NonDominated => {}
            }
        }
    }
}

/// Returns the indices of the non-dominated members of `points`
/// (the Pareto front of the set). Duplicate objective vectors are all kept.
pub fn non_dominated_indices(points: &[Objectives]) -> Vec<usize> {
    let mut dominated = vec![false; points.len()];
    for_each_dominating_pair(points, |_, loser| dominated[loser] = true);
    dominated
        .into_iter()
        .enumerate()
        .filter_map(|(i, d)| (!d).then_some(i))
        .collect()
}

/// Extracts the non-dominated objective vectors themselves.
pub fn pareto_front(points: &[Objectives]) -> Vec<Objectives> {
    non_dominated_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Counts, for each point, how many other points it dominates — the SPEA2
/// "strength" value `S(i)`.
pub fn strength_values(points: &[Objectives]) -> Vec<usize> {
    let mut strength = vec![0usize; points.len()];
    for_each_dominating_pair(points, |winner, _| strength[winner] += 1);
    strength
}

/// SPEA2 raw fitness `R(i)`: the sum of the strengths of every point that
/// dominates point `i`. Non-dominated points have raw fitness 0.
///
/// One pairwise pass records the dominating pairs; the strengths and the
/// strength sums are then both read off that record, instead of running the
/// O(n²) comparisons twice. The summation order per point is unchanged
/// (ascending winner index), so the result is bitwise equal to the seed's
/// double loop.
pub fn raw_fitness(points: &[Objectives]) -> Vec<f64> {
    let n = points.len();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut strength = vec![0usize; n];
    for_each_dominating_pair(points, |winner, loser| {
        strength[winner] += 1;
        pairs.push((winner, loser));
    });
    // `raw[i]` must accumulate the strengths of its dominators in ascending
    // winner order (the seed loop's `j` order); pairs arrive ordered by the
    // unordered-pair sweep, so sort by (loser, winner) before summing.
    pairs.sort_unstable_by_key(|&(winner, loser)| (loser, winner));
    let mut raw = vec![0.0; n];
    for (winner, loser) in pairs {
        raw[loser] += strength[winner] as f64;
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(a: f64, b: f64) -> Objectives {
        Objectives::pair(a, b)
    }

    #[test]
    fn basic_relations() {
        assert_eq!(
            compare(&o(1.0, 1.0), &o(2.0, 2.0)),
            DominanceRelation::Dominates
        );
        assert_eq!(
            compare(&o(2.0, 2.0), &o(1.0, 1.0)),
            DominanceRelation::DominatedBy
        );
        assert_eq!(
            compare(&o(1.0, 2.0), &o(2.0, 1.0)),
            DominanceRelation::NonDominated
        );
        assert_eq!(
            compare(&o(1.0, 1.0), &o(1.0, 1.0)),
            DominanceRelation::NonDominated
        );
        // Weak domination on one coordinate, strict on the other.
        assert_eq!(
            compare(&o(1.0, 1.0), &o(1.0, 2.0)),
            DominanceRelation::Dominates
        );
        assert!(dominates(&o(0.5, 0.5), &o(0.5, 0.6)));
        assert!(!dominates(&o(0.5, 0.5), &o(0.5, 0.5)));
    }

    #[test]
    fn dominance_is_a_strict_partial_order() {
        let pts = [
            o(1.0, 3.0),
            o(2.0, 2.0),
            o(3.0, 1.0),
            o(2.5, 2.5),
            o(1.5, 2.8),
        ];
        // Irreflexive.
        for p in &pts {
            assert!(!dominates(p, p));
        }
        // Antisymmetric.
        for a in &pts {
            for b in &pts {
                if dominates(a, b) {
                    assert!(!dominates(b, a));
                }
            }
        }
        // Transitive.
        for a in &pts {
            for b in &pts {
                for c in &pts {
                    if dominates(a, b) && dominates(b, c) {
                        assert!(dominates(a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn pareto_front_extraction() {
        let pts = vec![
            o(1.0, 5.0), // front
            o(2.0, 3.0), // front
            o(4.0, 1.0), // front
            o(3.0, 3.5), // dominated by (2, 3)
            o(5.0, 5.0), // dominated by many
        ];
        let idx = non_dominated_indices(&pts);
        assert_eq!(idx, vec![0, 1, 2]);
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 3);
        // Every member of the front is non-dominated within the front.
        for a in &front {
            assert!(!front.iter().any(|b| dominates(b, a)));
        }
    }

    #[test]
    fn identical_points_are_all_kept() {
        let pts = vec![o(1.0, 1.0), o(1.0, 1.0), o(2.0, 0.5)];
        let idx = non_dominated_indices(&pts);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(non_dominated_indices(&[]).is_empty());
        let single = vec![o(1.0, 1.0)];
        assert_eq!(non_dominated_indices(&single), vec![0]);
        assert_eq!(strength_values(&[]).len(), 0);
        assert_eq!(raw_fitness(&[]).len(), 0);
    }

    #[test]
    fn strength_and_raw_fitness_match_spea2_definitions() {
        // Point layout: a dominates c and d; b dominates c (equal first
        // objective, better second) and d; c dominates d; d dominates nothing.
        let pts = vec![
            o(1.0, 1.0), // a
            o(2.0, 0.5), // b (non-dominated against a)
            o(2.0, 2.0), // c (dominated by a and b)
            o(3.0, 3.0), // d (dominated by a, b, c)
        ];
        let s = strength_values(&pts);
        assert_eq!(s, vec![2, 2, 1, 0]);
        let r = raw_fitness(&pts);
        assert_eq!(r[0], 0.0);
        assert_eq!(r[1], 0.0);
        assert_eq!(r[2], 4.0); // dominated by a (strength 2) + b (strength 2)
        assert_eq!(r[3], 5.0); // dominated by a (2) + b (2) + c (1)
    }

    #[test]
    fn non_dominated_points_have_zero_raw_fitness() {
        let pts: Vec<Objectives> = (0..10).map(|i| o(i as f64, 10.0 - i as f64)).collect();
        // All points lie on an anti-diagonal: mutually non-dominated.
        let r = raw_fitness(&pts);
        assert!(r.iter().all(|&x| x == 0.0));
        assert_eq!(non_dominated_indices(&pts).len(), 10);
    }
}
