//! # optrr-emoo
//!
//! Generic Evolutionary Multi-Objective Optimization (EMOO) substrate for
//! the OptRR reproduction (Huang & Du, ICDE 2008).
//!
//! Section V of the paper builds its optimizer on SPEA2. This crate
//! provides the problem-agnostic machinery:
//!
//! * [`Objectives`] and [`dominance`] — objective vectors, Pareto
//!   dominance (Definition 5.1), non-dominated set extraction, and the
//!   SPEA2 strength / raw-fitness values;
//! * [`density`] — the k-th-nearest-neighbour density estimator that
//!   breaks raw-fitness ties;
//! * [`selection`] — binary-tournament mating selection and the
//!   environmental selection with nearest-neighbour truncation;
//! * [`kernel`] — the incremental [`FitnessKernel`]: generation-persistent
//!   flat triangular dominance/distance matrices keyed by stable
//!   individual ids, so per-generation fitness assignment costs O(m·n)
//!   for m new offspring instead of O(n²), bitwise-equal to the
//!   from-scratch path;
//! * [`engine`] — the shared [`Engine`] abstraction: one [`EngineConfig`],
//!   per-generation [`GenerationSnapshot`]s that carry the already-computed
//!   objective evaluations, an [`EngineOutcome`], and the [`EngineKind`]
//!   selector with the [`run_engine`] dispatcher. The [`Problem`] trait's
//!   [`Problem::evaluate_batch`] hook lets problems batch, cache, or
//!   parallelize evaluation ([`parallel_evaluate`] provides the
//!   data-parallel body);
//! * [`Spea2`] — the paper's engine, implementing [`Engine`];
//! * [`nsga2`] — an independent NSGA-II [`Engine`] used to cross-check
//!   results;
//! * [`indicators`] — hypervolume, coverage, and matched-level front
//!   comparison used by the experiment harness.
//!
//! The OptRR-specific genome (RR matrices), its custom crossover/mutation,
//! the δ-bound repair, and the optimal-set Ω extension live in `optrr-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod dominance;
pub mod engine;
pub mod indicators;
pub mod individual;
pub mod kernel;
pub mod nsga2;
pub mod objectives;
pub mod selection;
pub mod spea2;

pub use dominance::{compare, dominates, non_dominated_indices, pareto_front, DominanceRelation};
pub use engine::{
    parallel_evaluate, run_engine, Engine, EngineConfig, EngineKind, EngineOutcome,
    GenerationSnapshot, Problem,
};
pub use individual::Individual;
pub use kernel::{FitnessKernel, KernelStats};
pub use nsga2::Nsga2;
pub use objectives::Objectives;
pub use spea2::{assign_fitness, Spea2, Spea2Config, Spea2Outcome};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<Objectives>> {
        proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..max_len).prop_map(|raw| {
            raw.into_iter()
                .map(|(a, b)| Objectives::pair(a, b))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn pareto_front_members_are_mutually_nondominated(points in arb_points(40)) {
            let front = pareto_front(&points);
            prop_assert!(!front.is_empty());
            for a in &front {
                prop_assert!(!front.iter().any(|b| dominates(b, a)));
            }
            // Every excluded point is dominated by some front member.
            for p in &points {
                let in_front = front.iter().any(|f| f == p);
                if !in_front {
                    prop_assert!(front.iter().any(|f| dominates(f, p)) ||
                        // duplicates of front members are also "excluded" only
                        // if the front kept another identical copy
                        front.iter().any(|f| f.values() == p.values()));
                }
            }
        }

        #[test]
        fn dominance_is_antisymmetric_and_irreflexive(points in arb_points(20)) {
            for a in &points {
                prop_assert!(!dominates(a, a));
                for b in &points {
                    if dominates(a, b) {
                        prop_assert!(!dominates(b, a));
                    }
                }
            }
        }

        #[test]
        fn raw_fitness_zero_iff_nondominated(points in arb_points(30)) {
            let raw = dominance::raw_fitness(&points);
            let nd = non_dominated_indices(&points);
            for (i, r) in raw.iter().enumerate() {
                let is_nd = nd.contains(&i);
                prop_assert_eq!(is_nd, *r == 0.0, "index {} raw {}", i, r);
            }
        }

        #[test]
        fn hypervolume_is_monotone_under_front_extension(points in arb_points(20), extra in (0.0f64..10.0, 0.0f64..10.0)) {
            let reference = Objectives::pair(11.0, 11.0);
            let hv_before = indicators::hypervolume_2d(&points, &reference);
            let mut extended = points.clone();
            extended.push(Objectives::pair(extra.0, extra.1));
            let hv_after = indicators::hypervolume_2d(&extended, &reference);
            prop_assert!(hv_after >= hv_before - 1e-9);
        }

        #[test]
        fn environmental_selection_respects_the_size_bound(points in arb_points(30), size in 1usize..20) {
            let mut combined: Vec<Individual<u32>> = points
                .iter()
                .map(|o| Individual::new(0u32, o.clone()))
                .collect();
            assign_fitness(&mut combined, 1);
            let selected = selection::environmental_selection(&combined, size);
            prop_assert!(selected.len() <= size.max(1));
            prop_assert!(selected.len() <= combined.len());
            if combined.len() >= size {
                prop_assert_eq!(selected.len(), size);
            }
            // Selected indices are unique and valid.
            let mut sorted = selected.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), selected.len());
            prop_assert!(selected.iter().all(|&i| i < combined.len()));
        }

        /// The tentpole guarantee of the incremental kernel: across a
        /// random sequence of generations — each keeping a random subset
        /// of the previous members (removals) and adding fresh points
        /// (insertions) — the kernel's fitness assignment is **bitwise**
        /// equal to the from-scratch SPEA2 path, its ranks equal NSGA-II's
        /// from-scratch non-dominated sort, and the forced-parallel fill
        /// matches the serial one. This pins both engines' kernel paths to
        /// their reference implementations.
        #[test]
        fn kernel_is_bitwise_equal_to_scratch_across_generations(
            initial in arb_points(20),
            steps in proptest::collection::vec(
                (arb_points(10), proptest::collection::vec(0u8..2, 30..31)),
                1..5,
            ),
            k in 1usize..4,
        ) {
            let mut kernel = FitnessKernel::new();
            let mut forced_parallel = kernel::FitnessKernel::with_parallel_threshold(0);
            let mut next_id = 0u64;
            let mut members: Vec<Individual<u64>> = Vec::new();
            let mut ids: Vec<u64> = Vec::new();
            let mut push = |points: &[Objectives],
                            members: &mut Vec<Individual<u64>>,
                            ids: &mut Vec<u64>| {
                for p in points {
                    members.push(Individual::new(next_id, p.clone()));
                    ids.push(next_id);
                    next_id += 1;
                }
            };
            push(&initial, &mut members, &mut ids);

            for (new_points, keep_mask) in &steps {
                // Removals: drop members whose mask bit is false (the mask
                // repeats if shorter than the membership).
                let survivors: Vec<usize> = (0..members.len())
                    .filter(|&i| keep_mask[i % keep_mask.len()] == 1)
                    .collect();
                members = survivors.iter().map(|&i| members[i].clone()).collect();
                ids = survivors.iter().map(|&i| ids[i]).collect();
                // Insertions.
                push(new_points, &mut members, &mut ids);

                let mut scratch = members.clone();
                assign_fitness(&mut scratch, k);
                let mut parallel_members = members.clone();
                kernel.assign_fitness(&mut members, &ids, k);
                forced_parallel.assign_fitness(&mut parallel_members, &ids, k);
                let bits = |m: &[Individual<u64>]| {
                    m.iter()
                        .map(|i| i.fitness.expect("assigned").to_bits())
                        .collect::<Vec<_>>()
                };
                prop_assert_eq!(bits(&members), bits(&scratch));
                prop_assert_eq!(bits(&members), bits(&parallel_members));

                // The NSGA-II rank path over the same membership.
                let points: Vec<Objectives> =
                    members.iter().map(|m| m.objectives.clone()).collect();
                prop_assert_eq!(
                    kernel.ranks(&members, &ids),
                    nsga2::non_dominated_sort(&points)
                );
            }
        }

        /// Environmental selection with a cached distance source must pick
        /// exactly the members the on-the-fly version picks.
        #[test]
        fn environmental_selection_with_cached_distances_matches(
            points in arb_points(25),
            size in 1usize..12,
        ) {
            let mut combined: Vec<Individual<u32>> = points
                .iter()
                .map(|o| Individual::new(0u32, o.clone()))
                .collect();
            assign_fitness(&mut combined, 1);
            let baseline = selection::environmental_selection(&combined, size);
            // Pre-computed distance matrix standing in for the kernel.
            let n = combined.len();
            let mut matrix = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    matrix[i * n + j] = combined[i].objectives.distance(&combined[j].objectives);
                }
            }
            let cached = selection::environmental_selection_with(&combined, size, |a, b| {
                matrix[a * n + b]
            });
            prop_assert_eq!(baseline, cached);
        }

        #[test]
        fn nsga2_ranks_are_consistent_with_dominance(points in arb_points(25)) {
            let ranks = nsga2::non_dominated_sort(&points);
            for (i, a) in points.iter().enumerate() {
                for (j, b) in points.iter().enumerate() {
                    if dominates(a, b) {
                        prop_assert!(ranks[i] < ranks[j],
                            "dominating point must have a strictly better rank");
                    }
                }
            }
        }
    }
}
