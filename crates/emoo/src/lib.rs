//! # optrr-emoo
//!
//! Generic Evolutionary Multi-Objective Optimization (EMOO) substrate for
//! the OptRR reproduction (Huang & Du, ICDE 2008).
//!
//! Section V of the paper builds its optimizer on SPEA2. This crate
//! provides the problem-agnostic machinery:
//!
//! * [`Objectives`] and [`dominance`] — objective vectors, Pareto
//!   dominance (Definition 5.1), non-dominated set extraction, and the
//!   SPEA2 strength / raw-fitness values;
//! * [`density`] — the k-th-nearest-neighbour density estimator that
//!   breaks raw-fitness ties;
//! * [`selection`] — binary-tournament mating selection and the
//!   environmental selection with nearest-neighbour truncation;
//! * [`engine`] — the shared [`Engine`] abstraction: one [`EngineConfig`],
//!   per-generation [`GenerationSnapshot`]s that carry the already-computed
//!   objective evaluations, an [`EngineOutcome`], and the [`EngineKind`]
//!   selector with the [`run_engine`] dispatcher. The [`Problem`] trait's
//!   [`Problem::evaluate_batch`] hook lets problems batch, cache, or
//!   parallelize evaluation ([`parallel_evaluate`] provides the
//!   data-parallel body);
//! * [`Spea2`] — the paper's engine, implementing [`Engine`];
//! * [`nsga2`] — an independent NSGA-II [`Engine`] used to cross-check
//!   results;
//! * [`indicators`] — hypervolume, coverage, and matched-level front
//!   comparison used by the experiment harness.
//!
//! The OptRR-specific genome (RR matrices), its custom crossover/mutation,
//! the δ-bound repair, and the optimal-set Ω extension live in `optrr-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod dominance;
pub mod engine;
pub mod indicators;
pub mod individual;
pub mod nsga2;
pub mod objectives;
pub mod selection;
pub mod spea2;

pub use dominance::{compare, dominates, non_dominated_indices, pareto_front, DominanceRelation};
pub use engine::{
    parallel_evaluate, run_engine, Engine, EngineConfig, EngineKind, EngineOutcome,
    GenerationSnapshot, Problem,
};
pub use individual::Individual;
pub use nsga2::Nsga2;
pub use objectives::Objectives;
pub use spea2::{assign_fitness, Spea2, Spea2Config, Spea2Outcome};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<Objectives>> {
        proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..max_len).prop_map(|raw| {
            raw.into_iter()
                .map(|(a, b)| Objectives::pair(a, b))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn pareto_front_members_are_mutually_nondominated(points in arb_points(40)) {
            let front = pareto_front(&points);
            prop_assert!(!front.is_empty());
            for a in &front {
                prop_assert!(!front.iter().any(|b| dominates(b, a)));
            }
            // Every excluded point is dominated by some front member.
            for p in &points {
                let in_front = front.iter().any(|f| f == p);
                if !in_front {
                    prop_assert!(front.iter().any(|f| dominates(f, p)) ||
                        // duplicates of front members are also "excluded" only
                        // if the front kept another identical copy
                        front.iter().any(|f| f.values() == p.values()));
                }
            }
        }

        #[test]
        fn dominance_is_antisymmetric_and_irreflexive(points in arb_points(20)) {
            for a in &points {
                prop_assert!(!dominates(a, a));
                for b in &points {
                    if dominates(a, b) {
                        prop_assert!(!dominates(b, a));
                    }
                }
            }
        }

        #[test]
        fn raw_fitness_zero_iff_nondominated(points in arb_points(30)) {
            let raw = dominance::raw_fitness(&points);
            let nd = non_dominated_indices(&points);
            for (i, r) in raw.iter().enumerate() {
                let is_nd = nd.contains(&i);
                prop_assert_eq!(is_nd, *r == 0.0, "index {} raw {}", i, r);
            }
        }

        #[test]
        fn hypervolume_is_monotone_under_front_extension(points in arb_points(20), extra in (0.0f64..10.0, 0.0f64..10.0)) {
            let reference = Objectives::pair(11.0, 11.0);
            let hv_before = indicators::hypervolume_2d(&points, &reference);
            let mut extended = points.clone();
            extended.push(Objectives::pair(extra.0, extra.1));
            let hv_after = indicators::hypervolume_2d(&extended, &reference);
            prop_assert!(hv_after >= hv_before - 1e-9);
        }

        #[test]
        fn environmental_selection_respects_the_size_bound(points in arb_points(30), size in 1usize..20) {
            let mut combined: Vec<Individual<u32>> = points
                .iter()
                .map(|o| Individual::new(0u32, o.clone()))
                .collect();
            assign_fitness(&mut combined, 1);
            let selected = selection::environmental_selection(&combined, size);
            prop_assert!(selected.len() <= size.max(1));
            prop_assert!(selected.len() <= combined.len());
            if combined.len() >= size {
                prop_assert_eq!(selected.len(), size);
            }
            // Selected indices are unique and valid.
            let mut sorted = selected.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), selected.len());
            prop_assert!(selected.iter().all(|&i| i < combined.len()));
        }

        #[test]
        fn nsga2_ranks_are_consistent_with_dominance(points in arb_points(25)) {
            let ranks = nsga2::non_dominated_sort(&points);
            for (i, a) in points.iter().enumerate() {
                for (j, b) in points.iter().enumerate() {
                    if dominates(a, b) {
                        prop_assert!(ranks[i] < ranks[j],
                            "dominating point must have a strictly better rank");
                    }
                }
            }
        }
    }
}
