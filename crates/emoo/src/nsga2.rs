//! A compact NSGA-II implementation used as a cross-check for the SPEA2
//! engine.
//!
//! The paper chooses SPEA2 (citing its comparative performance); providing
//! a second, independent multi-objective optimizer lets the ablation
//! experiments confirm that the OptRR results are not an artifact of the
//! particular engine. NSGA-II ranks individuals by non-dominated sorting
//! and breaks ties with crowding distance.

use crate::dominance::dominates;
use crate::individual::Individual;
use crate::objectives::Objectives;
use crate::spea2::{Problem, Spea2Config};
use rand::Rng;

/// Performs fast non-dominated sorting; returns the front index (0 = best)
/// of every point.
pub fn non_dominated_sort(points: &[Objectives]) -> Vec<usize> {
    let n = points.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // who i dominates
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&points[i], &points[j]) {
                dominated_by[i].push(j);
            } else if dominates(&points[j], &points[i]) {
                domination_count[i] += 1;
            }
        }
    }
    let mut rank = vec![0usize; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    let mut front_index = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            rank[i] = front_index;
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        front_index += 1;
        current = next;
    }
    rank
}

/// Computes the crowding distance of each point within its own front.
pub fn crowding_distances(points: &[Objectives], ranks: &[usize]) -> Vec<f64> {
    let n = points.len();
    let mut distance = vec![0.0_f64; n];
    if n == 0 {
        return distance;
    }
    let num_objectives = points[0].len();
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for front in 0..=max_rank {
        let members: Vec<usize> = (0..n).filter(|&i| ranks[i] == front).collect();
        if members.is_empty() {
            continue;
        }
        for m in 0..num_objectives {
            let mut sorted = members.clone();
            sorted.sort_by(|&a, &b| {
                points[a]
                    .value(m)
                    .partial_cmp(&points[b].value(m))
                    .expect("finite objectives")
            });
            let lo = points[*sorted.first().expect("non-empty front")].value(m);
            let hi = points[*sorted.last().expect("non-empty front")].value(m);
            distance[sorted[0]] = f64::INFINITY;
            distance[sorted[sorted.len() - 1]] = f64::INFINITY;
            let span = hi - lo;
            if span <= 0.0 {
                continue;
            }
            for w in 1..sorted.len().saturating_sub(1) {
                let prev = points[sorted[w - 1]].value(m);
                let next = points[sorted[w + 1]].value(m);
                distance[sorted[w]] += (next - prev) / span;
            }
        }
    }
    distance
}

/// The result of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2Outcome<G> {
    /// The final first front (rank-0 individuals).
    pub front: Vec<Individual<G>>,
    /// Number of generations executed.
    pub generations_run: usize,
}

/// Runs NSGA-II on the given problem with (reusing) the SPEA2 configuration
/// shape: `population_size`, `generations`, and `mutation_rate` are used;
/// `archive_size` and `density_k` are ignored.
pub fn run_nsga2<P: Problem, R: Rng + ?Sized>(
    problem: &P,
    config: &Spea2Config,
    rng: &mut R,
) -> Result<Nsga2Outcome<P::Genome>, String> {
    config.validate()?;
    let pop_size = config.population_size;

    let mut population: Vec<Individual<P::Genome>> = (0..pop_size)
        .map(|_| {
            let mut g = problem.random_genome(rng);
            problem.repair(&mut g, rng);
            let o = problem.evaluate(&g);
            Individual::new(g, o)
        })
        .collect();

    let mut generations_run = 0usize;
    for _generation in 0..config.generations {
        generations_run += 1;
        // Rank the current population.
        let points: Vec<Objectives> = population.iter().map(|i| i.objectives.clone()).collect();
        let ranks = non_dominated_sort(&points);
        let crowd = crowding_distances(&points, &ranks);

        // Binary-tournament selection on (rank, -crowding).
        let better = |a: usize, b: usize| -> usize {
            if ranks[a] < ranks[b] {
                a
            } else if ranks[b] < ranks[a] {
                b
            } else if crowd[a] >= crowd[b] {
                a
            } else {
                b
            }
        };

        // Produce offspring.
        let mut offspring: Vec<Individual<P::Genome>> = Vec::with_capacity(pop_size);
        while offspring.len() < pop_size {
            let p1 = better(rng.gen_range(0..pop_size), rng.gen_range(0..pop_size));
            let p2 = better(rng.gen_range(0..pop_size), rng.gen_range(0..pop_size));
            let (mut c1, mut c2) =
                problem.crossover(&population[p1].genome, &population[p2].genome, rng);
            for c in [&mut c1, &mut c2] {
                if rng.gen::<f64>() < config.mutation_rate {
                    problem.mutate(c, rng);
                }
                problem.repair(c, rng);
            }
            for c in [c1, c2] {
                if offspring.len() >= pop_size {
                    break;
                }
                let o = problem.evaluate(&c);
                offspring.push(Individual::new(c, o));
            }
        }

        // Environmental selection over the union, by (rank, crowding).
        let mut union = population;
        union.append(&mut offspring);
        let union_points: Vec<Objectives> = union.iter().map(|i| i.objectives.clone()).collect();
        let union_ranks = non_dominated_sort(&union_points);
        let union_crowd = crowding_distances(&union_points, &union_ranks);
        let mut order: Vec<usize> = (0..union.len()).collect();
        order.sort_by(|&a, &b| {
            union_ranks[a]
                .cmp(&union_ranks[b])
                .then_with(|| {
                    union_crowd[b]
                        .partial_cmp(&union_crowd[a])
                        .expect("finite or infinite crowding")
                })
        });
        let survivors: Vec<usize> = order.into_iter().take(pop_size).collect();
        let mut keep = vec![false; union.len()];
        for &i in &survivors {
            keep[i] = true;
        }
        let mut next = Vec::with_capacity(pop_size);
        for (i, ind) in union.into_iter().enumerate() {
            if keep[i] {
                next.push(ind);
            }
        }
        population = next;
    }

    // Extract the final first front.
    let points: Vec<Objectives> = population.iter().map(|i| i.objectives.clone()).collect();
    let ranks = non_dominated_sort(&points);
    let front: Vec<Individual<P::Genome>> = population
        .into_iter()
        .zip(ranks)
        .filter_map(|(ind, r)| if r == 0 { Some(ind) } else { None })
        .collect();
    Ok(Nsga2Outcome { front, generations_run })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn o(a: f64, b: f64) -> Objectives {
        Objectives::pair(a, b)
    }

    #[test]
    fn non_dominated_sort_ranks_layers() {
        let pts = vec![
            o(1.0, 1.0), // rank 0
            o(2.0, 2.0), // rank 1 (dominated by the first only)
            o(3.0, 3.0), // rank 2
            o(0.5, 3.5), // rank 0 (incomparable with the first)
        ];
        let ranks = non_dominated_sort(&pts);
        assert_eq!(ranks, vec![0, 1, 2, 0]);
    }

    #[test]
    fn non_dominated_sort_handles_empty_and_single() {
        assert!(non_dominated_sort(&[]).is_empty());
        assert_eq!(non_dominated_sort(&[o(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn crowding_distance_marks_extremes_infinite() {
        let pts = vec![o(0.0, 4.0), o(1.0, 3.0), o(2.0, 2.0), o(4.0, 0.0)];
        let ranks = vec![0, 0, 0, 0];
        let d = crowding_distances(&pts, &ranks);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_distance_identical_points_do_not_divide_by_zero() {
        let pts = vec![o(1.0, 1.0), o(1.0, 1.0), o(1.0, 1.0)];
        let ranks = vec![0, 0, 0];
        let d = crowding_distances(&pts, &ranks);
        assert!(d.iter().all(|x| !x.is_nan()));
    }

    /// Reuse the Schaffer problem shape locally for an end-to-end check.
    struct Schaffer;
    impl Problem for Schaffer {
        type Genome = f64;
        fn num_objectives(&self) -> usize {
            2
        }
        fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.gen_range(-10.0..10.0)
        }
        fn evaluate(&self, x: &f64) -> Objectives {
            Objectives::pair(x * x, (x - 2.0) * (x - 2.0))
        }
        fn crossover<R: Rng + ?Sized>(&self, a: &f64, b: &f64, rng: &mut R) -> (f64, f64) {
            let w: f64 = rng.gen();
            (w * a + (1.0 - w) * b, (1.0 - w) * a + w * b)
        }
        fn mutate<R: Rng + ?Sized>(&self, x: &mut f64, rng: &mut R) {
            *x += rng.gen_range(-0.5..0.5);
        }
    }

    #[test]
    fn nsga2_finds_the_schaffer_front() {
        let config = Spea2Config {
            population_size: 60,
            archive_size: 30,
            generations: 60,
            mutation_rate: 0.4,
            density_k: 1,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = run_nsga2(&Schaffer, &config, &mut rng).unwrap();
        assert_eq!(outcome.generations_run, 60);
        assert!(!outcome.front.is_empty());
        for ind in &outcome.front {
            assert!((-0.3..=2.3).contains(&ind.genome), "genome {}", ind.genome);
        }
    }

    #[test]
    fn nsga2_rejects_invalid_config() {
        let mut rng = StdRng::seed_from_u64(1);
        let bad = Spea2Config { population_size: 0, ..Default::default() };
        assert!(run_nsga2(&Schaffer, &bad, &mut rng).is_err());
    }
}
