//! The NSGA-II backend of the [`Engine`] abstraction, used as an
//! independent cross-check for SPEA2.
//!
//! The paper chooses SPEA2 (citing its comparative performance); providing
//! a second engine behind the same [`Engine`] interface lets the ablation
//! experiments confirm that the OptRR results are not an artifact of the
//! particular engine — callers switch backends purely through
//! [`EngineKind`](crate::EngineKind). NSGA-II ranks individuals by
//! non-dominated sorting and breaks ties with crowding distance; it has no
//! separate archive, so the shared `archive_size` bounds only the reported
//! final front and `density_k` is unused.

use crate::dominance::dominates;
use crate::engine::{evaluate_into_individuals, push_offspring_pair, seeded_initial_population};
use crate::engine::{Engine, EngineConfig, EngineKind, EngineOutcome, GenerationSnapshot, Problem};
use crate::individual::Individual;
use crate::kernel::FitnessKernel;
use crate::objectives::Objectives;
use rand::Rng;

/// Performs fast non-dominated sorting; returns the front index (0 = best)
/// of every point.
pub fn non_dominated_sort(points: &[Objectives]) -> Vec<usize> {
    let n = points.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // who i dominates
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&points[i], &points[j]) {
                dominated_by[i].push(j);
            } else if dominates(&points[j], &points[i]) {
                domination_count[i] += 1;
            }
        }
    }
    let mut rank = vec![0usize; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    let mut front_index = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            rank[i] = front_index;
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        front_index += 1;
        current = next;
    }
    rank
}

/// Computes the crowding distance of each point within its own front.
pub fn crowding_distances(points: &[Objectives], ranks: &[usize]) -> Vec<f64> {
    let n = points.len();
    let mut distance = vec![0.0_f64; n];
    if n == 0 {
        return distance;
    }
    let num_objectives = points[0].len();
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for front in 0..=max_rank {
        let members: Vec<usize> = (0..n).filter(|&i| ranks[i] == front).collect();
        if members.is_empty() {
            continue;
        }
        for m in 0..num_objectives {
            let mut sorted = members.clone();
            sorted.sort_by(|&a, &b| {
                points[a]
                    .value(m)
                    .partial_cmp(&points[b].value(m))
                    .expect("finite objectives")
            });
            let lo = points[*sorted.first().expect("non-empty front")].value(m);
            let hi = points[*sorted.last().expect("non-empty front")].value(m);
            distance[sorted[0]] = f64::INFINITY;
            distance[sorted[sorted.len() - 1]] = f64::INFINITY;
            let span = hi - lo;
            if span <= 0.0 {
                continue;
            }
            for w in 1..sorted.len().saturating_sub(1) {
                let prev = points[sorted[w - 1]].value(m);
                let next = points[sorted[w + 1]].value(m);
                distance[sorted[w]] += (next - prev) / span;
            }
        }
    }
    distance
}

/// The NSGA-II engine, generic over the problem definition.
pub struct Nsga2<'a, P: Problem> {
    problem: &'a P,
    config: EngineConfig,
}

impl<'a, P: Problem> Nsga2<'a, P> {
    /// Creates an engine after validating the configuration.
    pub fn new(problem: &'a P, config: EngineConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { problem, config })
    }
}

impl<'a, P: Problem> Engine<P> for Nsga2<'a, P> {
    fn kind(&self) -> EngineKind {
        EngineKind::Nsga2
    }

    fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn run_seeded<R, F>(
        &self,
        rng: &mut R,
        seeds: Vec<P::Genome>,
        mut observer: F,
    ) -> EngineOutcome<P::Genome>
    where
        R: Rng + ?Sized,
        F: FnMut(&GenerationSnapshot<'_, P::Genome>) -> bool,
    {
        let pop_size = self.config.population_size;
        let mut evaluations = 0usize;

        // The incremental fitness kernel caches pairwise dominance across
        // generations; the survivors of each environmental selection keep
        // their ids, so both rank computations below mostly reuse pairs.
        let mut kernel = FitnessKernel::new();

        // Initial population: seeds first, then random genomes, all
        // repaired and evaluated as one batch (shared with SPEA2).
        let mut population =
            seeded_initial_population(self.problem, pop_size, seeds, rng, &mut evaluations);
        let mut population_ids = kernel.alloc_ids(population.len());

        let mut generations_run = 0usize;
        let mut front_len = 0usize;
        for generation in 0..self.config.generations {
            generations_run = generation + 1;

            // Rank the current population for mating selection; every pair
            // was already compared in the previous generation's union.
            let points: Vec<Objectives> = population.iter().map(|i| i.objectives.clone()).collect();
            let ranks = kernel.ranks(&population, &population_ids);
            let crowd = crowding_distances(&points, &ranks);

            // Binary-tournament selection on (rank, -crowding).
            let better = |a: usize, b: usize| -> usize {
                if ranks[a] < ranks[b] {
                    a
                } else if ranks[b] < ranks[a] {
                    b
                } else if crowd[a] >= crowd[b] {
                    a
                } else {
                    b
                }
            };

            // Produce offspring genomes; evaluation is deferred so the
            // whole brood goes through `evaluate_batch` at once.
            let mut child_genomes: Vec<P::Genome> = Vec::with_capacity(pop_size);
            while child_genomes.len() < pop_size {
                let p1 = better(rng.gen_range(0..pop_size), rng.gen_range(0..pop_size));
                let p2 = better(rng.gen_range(0..pop_size), rng.gen_range(0..pop_size));
                push_offspring_pair(
                    self.problem,
                    self.config.mutation_rate,
                    &population[p1].genome,
                    &population[p2].genome,
                    rng,
                    &mut child_genomes,
                    pop_size,
                );
            }
            let mut offspring =
                evaluate_into_individuals(self.problem, child_genomes, &mut evaluations);
            let mut offspring_ids = kernel.alloc_ids(offspring.len());

            // Environmental selection over the union, by (rank, crowding).
            // Only offspring-involving pairs are fresh comparisons.
            let mut union = population;
            union.append(&mut offspring);
            let mut union_ids = population_ids;
            union_ids.append(&mut offspring_ids);
            let union_points: Vec<Objectives> =
                union.iter().map(|i| i.objectives.clone()).collect();
            let union_ranks = kernel.ranks(&union, &union_ids);
            let union_crowd = crowding_distances(&union_points, &union_ranks);
            let mut order: Vec<usize> = (0..union.len()).collect();
            order.sort_by(|&a, &b| {
                union_ranks[a].cmp(&union_ranks[b]).then_with(|| {
                    union_crowd[b]
                        .partial_cmp(&union_crowd[a])
                        .expect("finite or infinite crowding")
                })
            });
            order.truncate(pop_size);
            front_len = order.iter().filter(|&&i| union_ranks[i] == 0).count();

            // Rebuild the population in (rank, crowding) order so the
            // rank-0 individuals form a prefix — the snapshot's "archive".
            let mut slots: Vec<Option<Individual<P::Genome>>> =
                union.into_iter().map(Some).collect();
            population = order
                .iter()
                .map(|&i| slots[i].take().expect("selection indices are unique"))
                .collect();
            population_ids = order.iter().map(|&i| union_ids[i]).collect();

            // The snapshot slices are disjoint (elite prefix vs the
            // rest), so observers chaining them visit each individual
            // exactly once — same contract as SPEA2's archive/population.
            let snapshot = GenerationSnapshot {
                generation,
                archive: &population[..front_len],
                population: &population[front_len..],
                evaluations,
            };
            if !observer(&snapshot) {
                break;
            }
        }

        // The final first front (already a prefix of the sorted
        // population), bounded by the shared archive size and
        // fitness-assigned like the SPEA2 archive so downstream reporting
        // is uniform. The kernel reuses the dominance pairs; distances are
        // computed here for the first time (rank passes skip them), for
        // the bounded front only.
        population.truncate(front_len.min(self.config.archive_size).max(1));
        population_ids.truncate(population.len());
        kernel.assign_fitness(&mut population, &population_ids, self.config.density_k);
        let kernel_stats = kernel.stats();
        EngineOutcome {
            archive: population,
            generations_run,
            evaluations,
            fitness_pairs_reused: kernel_stats.pairs_reused,
            fitness_pairs_computed: kernel_stats.pairs_computed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn o(a: f64, b: f64) -> Objectives {
        Objectives::pair(a, b)
    }

    #[test]
    fn non_dominated_sort_ranks_layers() {
        let pts = vec![
            o(1.0, 1.0), // rank 0
            o(2.0, 2.0), // rank 1 (dominated by the first only)
            o(3.0, 3.0), // rank 2
            o(0.5, 3.5), // rank 0 (incomparable with the first)
        ];
        let ranks = non_dominated_sort(&pts);
        assert_eq!(ranks, vec![0, 1, 2, 0]);
    }

    #[test]
    fn non_dominated_sort_handles_empty_and_single() {
        assert!(non_dominated_sort(&[]).is_empty());
        assert_eq!(non_dominated_sort(&[o(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn crowding_distance_marks_extremes_infinite() {
        let pts = vec![o(0.0, 4.0), o(1.0, 3.0), o(2.0, 2.0), o(4.0, 0.0)];
        let ranks = vec![0, 0, 0, 0];
        let d = crowding_distances(&pts, &ranks);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_distance_identical_points_do_not_divide_by_zero() {
        let pts = vec![o(1.0, 1.0), o(1.0, 1.0), o(1.0, 1.0)];
        let ranks = vec![0, 0, 0];
        let d = crowding_distances(&pts, &ranks);
        assert!(d.iter().all(|x| !x.is_nan()));
    }

    /// Reuse the Schaffer problem shape locally for an end-to-end check.
    struct Schaffer;
    impl Problem for Schaffer {
        type Genome = f64;
        fn num_objectives(&self) -> usize {
            2
        }
        fn random_genome<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.gen_range(-10.0..10.0)
        }
        fn evaluate(&self, x: &f64) -> Objectives {
            Objectives::pair(x * x, (x - 2.0) * (x - 2.0))
        }
        fn crossover<R: Rng + ?Sized>(&self, a: &f64, b: &f64, rng: &mut R) -> (f64, f64) {
            let w: f64 = rng.gen();
            (w * a + (1.0 - w) * b, (1.0 - w) * a + w * b)
        }
        fn mutate<R: Rng + ?Sized>(&self, x: &mut f64, rng: &mut R) {
            *x += rng.gen_range(-0.5..0.5);
        }
    }

    #[test]
    fn nsga2_finds_the_schaffer_front() {
        let config = EngineConfig {
            population_size: 60,
            archive_size: 30,
            generations: 60,
            mutation_rate: 0.4,
            density_k: 1,
        };
        let engine = Nsga2::new(&Schaffer, config).unwrap();
        assert_eq!(engine.kind(), EngineKind::Nsga2);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = engine.run(&mut rng);
        assert_eq!(outcome.generations_run, 60);
        assert!(!outcome.archive.is_empty());
        assert!(outcome.archive.len() <= 30);
        for ind in &outcome.archive {
            assert!((-0.3..=2.3).contains(&ind.genome), "genome {}", ind.genome);
        }
    }

    #[test]
    fn nsga2_observer_sees_rank0_prefix_and_can_stop_early() {
        let config = EngineConfig {
            population_size: 24,
            archive_size: 12,
            generations: 40,
            mutation_rate: 0.4,
            density_k: 1,
        };
        let engine = Nsga2::new(&Schaffer, config).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = 0usize;
        let outcome = engine.run_with_observer(&mut rng, |snap| {
            seen += 1;
            assert!(!snap.archive.is_empty());
            // Elite and remainder are disjoint and partition the
            // generation's individuals.
            assert_eq!(snap.archive.len() + snap.population.len(), 24);
            // The archive holds rank 0: nothing in the remainder
            // dominates an archive member.
            for elite in snap.archive {
                assert!(!snap
                    .population
                    .iter()
                    .any(|p| crate::dominance::dominates(&p.objectives, &elite.objectives)));
            }
            snap.generation < 2
        });
        assert_eq!(seen, 3);
        assert_eq!(outcome.generations_run, 3);
    }

    #[test]
    fn nsga2_supports_seeded_runs_and_determinism() {
        let config = EngineConfig {
            population_size: 20,
            archive_size: 10,
            generations: 15,
            mutation_rate: 0.4,
            density_k: 1,
        };
        let engine = Nsga2::new(&Schaffer, config).unwrap();
        let genomes =
            |o: &EngineOutcome<f64>| o.archive.iter().map(|i| i.genome).collect::<Vec<_>>();
        let a = engine.run_seeded(&mut StdRng::seed_from_u64(3), vec![1.0, 1.5], |_| true);
        let b = engine.run_seeded(&mut StdRng::seed_from_u64(3), vec![1.0, 1.5], |_| true);
        assert_eq!(genomes(&a), genomes(&b));
        let c = engine.run_seeded(&mut StdRng::seed_from_u64(4), vec![1.0, 1.5], |_| true);
        assert_ne!(genomes(&a), genomes(&c));
    }

    #[test]
    fn nsga2_rejects_invalid_config() {
        let bad = EngineConfig {
            population_size: 0,
            ..Default::default()
        };
        assert!(Nsga2::new(&Schaffer, bad).is_err());
    }
}
