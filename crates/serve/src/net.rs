//! The network front door: TCP + Unix-domain socket sessions over one
//! shared [`Service`].
//!
//! [`NetServer::start`] binds a listener ([`ListenAddr::Tcp`] or
//! [`ListenAddr::Unix`]) and runs an accept loop feeding a bounded
//! connection pool (`max_conns`; excess connections wait in the OS
//! backlog). Each accepted connection gets a session thread that reuses
//! the [`Service::run_loop`] semantics — decode one request, handle,
//! respond in order — plus a writer thread behind a bounded queue
//! (`conn_queue`), so:
//!
//! * **Pipelining** — a client may send many requests without reading;
//!   responses are written strictly in request order per connection
//!   (one FIFO queue per session).
//! * **Backpressure** — a client that stops reading fills the kernel
//!   buffer, then the bounded write queue, then blocks the session's
//!   reader: the server never buffers unboundedly for a slow consumer.
//! * **Codec negotiation** — the connection's first byte selects the
//!   codec ([`wire::PREAMBLE`] → `OPTRR-WIRE v1` binary frames;
//!   anything else begins the first framed-JSON line). Both codecs
//!   deliver bitwise-identical requests to the service, so a binary
//!   session produces byte-identical warm stores and estimates to the
//!   same session over JSON.
//! * **Graceful drain** — any session's `Shutdown` request (after its
//!   `Bye` is queued) puts the whole server into drain: the accept loop
//!   stops, idle sessions close after flushing their write queues, and
//!   [`NetServer::wait`] force-closes stragglers only after
//!   `drain_ms`.
//!
//! A torn frame — truncated length prefix, half-written JSON line,
//! checksum mismatch, abrupt disconnect — closes *that* session with a
//! typed [`ServeError::Transport`] (counted in
//! `serve_net_conn_errors_total`, answered best-effort with a
//! `code: "transport"` error response) and leaves the shared service
//! fully usable: sessions hold no service locks across requests, so
//! there is nothing to poison and no `Warming` state to leak. The
//! deterministic `conn_drop` fault site ([`crate::faults`]) drops a
//! session mid-frame on purpose to keep that path covered.

use crate::protocol::{self, Request, Response};
use crate::service::{ServeError, Service};
use crate::telemetry::ServeObs;
use crate::wire::{self, Codec};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked reads wake up to poll the drain flag. Sessions
/// and the accept loop observe a drain within roughly this interval.
const POLL_MS: u64 = 25;

/// Stack size for session and writer threads: sessions are I/O loops
/// with small frames on the stack, so the default 8 MiB per thread
/// would waste address space across hundreds of connections.
const SESSION_STACK: usize = 512 * 1024;

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP socket address (`127.0.0.1:7171`, `[::1]:7171`, ...).
    Tcp(SocketAddr),
    /// A Unix-domain socket path. A stale file at the path is removed
    /// at bind time and the file is unlinked after drain.
    Unix(PathBuf),
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "{addr}"),
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Configuration of the network front door (see `serve::env` for the
/// `OPTRR_SERVE_LISTEN` / `MAX_CONNS` / `CONN_QUEUE` / `DRAIN_MS`
/// environment knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// The listen address.
    pub listen: ListenAddr,
    /// Bound on concurrently served connections; excess connections
    /// wait in the OS accept backlog until a slot frees.
    pub max_conns: usize,
    /// Bound on each connection's queued-but-unwritten responses (the
    /// backpressure depth, in responses).
    pub conn_queue: usize,
    /// How long [`NetServer::wait`] lets in-flight sessions flush after
    /// drain is requested before force-closing their sockets.
    pub drain_ms: u64,
}

impl NetConfig {
    /// A configuration with the default pool bounds: 1024 connections,
    /// 64 queued responses per connection, 5-second drain grace.
    pub fn new(listen: ListenAddr) -> Self {
        Self {
            listen,
            max_conns: 1024,
            conn_queue: 64,
            drain_ms: 5_000,
        }
    }
}

/// The transports a session can run on, behind one object-safe
/// surface. Both [`TcpStream`] and [`UnixStream`] provide exactly
/// these operations; the session code is transport-agnostic.
trait SessionStream: Read + Write + Send {
    /// An independently owned handle to the same socket (for the
    /// writer thread and the force-close registry).
    fn try_clone_stream(&self) -> io::Result<Box<dyn SessionStream>>;
    /// Bounds blocking reads so sessions can poll the drain flag.
    fn set_read_timeout_stream(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Closes both directions, unblocking any reader or writer.
    fn shutdown_stream(&self) -> io::Result<()>;
}

impl SessionStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn SessionStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout_stream(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn shutdown_stream(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

impl SessionStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn SessionStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout_stream(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn shutdown_stream(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn bind(listen: &ListenAddr) -> io::Result<Self> {
        match listen {
            ListenAddr::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            ListenAddr::Unix(path) => {
                // A stale socket file from a previous process would fail
                // the bind; remove it first (binding a *live* path still
                // fails on most systems once the file is gone mid-run,
                // and two live servers on one path is an operator error
                // this module does not try to detect).
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<Box<dyn SessionStream>> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                // Accepted sockets inherit the listener's non-blocking
                // flag on some platforms; sessions want blocking reads
                // bounded by a timeout instead.
                stream.set_nonblocking(false)?;
                Ok(Box::new(stream))
            }
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Box::new(stream))
            }
        }
    }

    fn local_tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A session thread that panicked while holding one of the server's
    // bookkeeping locks must not wedge drain; the maps hold only
    // handles, so the data is valid regardless.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct NetShared {
    service: Arc<Service>,
    config: NetConfig,
    draining: AtomicBool,
    active: AtomicU64,
    conn_seq: AtomicU64,
    /// Socket handles of live sessions, for the post-deadline
    /// force-close. Sessions remove themselves on exit.
    conns: Mutex<HashMap<u64, Box<dyn SessionStream>>>,
    /// Session thread handles, joined by [`NetServer::wait`].
    sessions: Mutex<Vec<JoinHandle<()>>>,
}

impl NetShared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn obs(&self) -> &Arc<ServeObs> {
        self.service.obs()
    }
}

/// The running network front door. Dropping the handle does not stop
/// the server; call [`NetServer::request_drain`] (or send a `Shutdown`
/// request over any connection) and then [`NetServer::wait`].
pub struct NetServer {
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
    local_tcp: Option<SocketAddr>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("listen", &self.shared.config.listen)
            .field("active", &self.shared.active.load(Ordering::SeqCst))
            .field("draining", &self.shared.draining())
            .finish()
    }
}

impl NetServer {
    /// Binds the listener and spawns the accept loop over a shared
    /// service.
    pub fn start(service: Arc<Service>, config: NetConfig) -> io::Result<Self> {
        let listener = Listener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let local_tcp = listener.local_tcp_addr();
        let shared = Arc::new(NetShared {
            service,
            config,
            draining: AtomicBool::new(false),
            active: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            sessions: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("optrr-net-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))
            .expect("spawning the accept thread succeeds");
        Ok(Self {
            shared,
            accept: Some(accept),
            local_tcp,
        })
    }

    /// The bound TCP address (with the OS-assigned port when the
    /// configuration asked for port 0); `None` for Unix listeners.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_tcp
    }

    /// The effective listen address — the configured one with the
    /// OS-assigned TCP port resolved.
    pub fn listen_addr(&self) -> ListenAddr {
        match (&self.shared.config.listen, self.local_tcp) {
            (ListenAddr::Tcp(_), Some(addr)) => ListenAddr::Tcp(addr),
            (listen, _) => listen.clone(),
        }
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> u64 {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Puts the server into drain: the accept loop stops and sessions
    /// close after flushing. Idempotent; also triggered by any
    /// session's `Shutdown` request.
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Blocks until the server has drained: waits for a `Shutdown`
    /// request or [`NetServer::request_drain`], gives in-flight
    /// sessions `drain_ms` to flush, force-closes stragglers, and joins
    /// every thread. Returns the number of sessions served.
    pub fn wait(mut self) -> u64 {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let deadline = Instant::now() + Duration::from_millis(self.shared.config.drain_ms);
        while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        // Force-close whatever is still open; their session threads
        // observe the closed socket at the next read or write.
        for (_, stream) in lock(&self.shared.conns).drain() {
            let _ = stream.shutdown_stream();
        }
        let handles: Vec<JoinHandle<()>> = lock(&self.shared.sessions).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        if let ListenAddr::Unix(path) = &self.shared.config.listen {
            let _ = std::fs::remove_file(path);
        }
        self.shared.conn_seq.load(Ordering::SeqCst)
    }
}

fn accept_loop(shared: Arc<NetShared>, listener: Listener) {
    loop {
        if shared.draining() {
            break;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_conns as u64 {
            // The pool is full: stop accepting and let the backlog hold
            // arrivals until a session finishes.
            thread::sleep(Duration::from_millis(1));
            continue;
        }
        match listener.accept() {
            Ok(stream) => spawn_session(&shared, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(POLL_MS.min(5)));
            }
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake):
                // back off briefly instead of spinning.
                thread::sleep(Duration::from_millis(POLL_MS));
            }
        }
    }
    // Dropping the listener closes it; for Unix sockets the file is
    // unlinked by `wait`.
}

fn spawn_session(shared: &Arc<NetShared>, stream: Box<dyn SessionStream>) {
    let conn_id = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
    let obs = shared.obs();
    obs.count_net_conn();
    let now_active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
    obs.set_connections_active(now_active);
    let retire = |shared: &Arc<NetShared>| {
        let now = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
        shared.obs().set_connections_active(now);
    };
    let registered = stream
        .set_read_timeout_stream(Some(Duration::from_millis(POLL_MS)))
        .and_then(|_| stream.try_clone_stream());
    let handle = match registered {
        Ok(clone) => {
            lock(&shared.conns).insert(conn_id, clone);
            let session_shared = Arc::clone(shared);
            thread::Builder::new()
                .name(format!("optrr-net-conn-{conn_id}"))
                .stack_size(SESSION_STACK)
                .spawn(move || {
                    run_session(&session_shared, stream, conn_id);
                    lock(&session_shared.conns).remove(&conn_id);
                    retire(&session_shared);
                })
        }
        Err(_) => {
            retire(shared);
            return;
        }
    };
    match handle {
        Ok(handle) => lock(&shared.sessions).push(handle),
        Err(_) => {
            // Spawn failure (thread exhaustion): the connection is
            // dropped; `stream` was moved into the failed closure and
            // is already gone, so just fix the accounting.
            lock(&shared.conns).remove(&conn_id);
            retire(shared);
        }
    }
}

/// Why a session's read loop stopped.
enum SessionEnd {
    /// The client closed cleanly at a frame boundary (or sent `Bye`).
    Clean,
    /// Drain was requested and the connection was idle.
    Drained,
    /// The transport failed mid-frame — the typed error to account.
    Torn(ServeError),
}

fn run_session(shared: &Arc<NetShared>, stream: Box<dyn SessionStream>, conn_id: u64) {
    let obs = Arc::clone(shared.obs());
    let writer_stream = match stream.try_clone_stream() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(shared.config.conn_queue);
    let writer_obs = Arc::clone(&obs);
    let writer = thread::Builder::new()
        .name(format!("optrr-net-write-{conn_id}"))
        .stack_size(SESSION_STACK)
        .spawn(move || writer_loop(rx, writer_stream, writer_obs));
    let Ok(writer) = writer else { return };

    let mut reader = BufReader::new(stream);
    let mut codec = Codec::Json;
    let end = match negotiate_codec(&mut reader, shared) {
        Ok(Some(negotiated)) => {
            codec = negotiated;
            session_loop(shared, &mut reader, &tx, codec, conn_id)
        }
        Ok(None) => SessionEnd::Clean, // opened and closed without a byte
        Err(end) => end,
    };
    if let SessionEnd::Torn(error) = end {
        obs.count_net_conn_error();
        // Best-effort: tell the client what happened, in its own codec,
        // before closing. On an abrupt disconnect the write simply
        // fails; either way the session ends and the shared service is
        // untouched.
        let response = Response::Error {
            reason: error.to_string(),
            code: error.code().to_string(),
        };
        let _ = tx.try_send(encode_response_bytes(&response, codec));
    }
    drop(tx);
    let _ = writer.join();
    // Closing our half unblocks a client still waiting on reads.
    let _ = reader.get_ref().shutdown_stream();
}

/// Reads the connection's first byte and selects the codec. `Ok(None)`
/// is a connection that closed before sending anything.
fn negotiate_codec(
    reader: &mut BufReader<Box<dyn SessionStream>>,
    shared: &Arc<NetShared>,
) -> Result<Option<Codec>, SessionEnd> {
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(None),
            Ok(buf) => {
                return if buf[0] == wire::PREAMBLE {
                    reader.consume(1);
                    shared.obs().add_net_bytes_in(1);
                    Ok(Some(Codec::Binary))
                } else {
                    Ok(Some(Codec::Json))
                };
            }
            Err(e) if is_poll_timeout(&e) => {
                if shared.draining() {
                    return Err(SessionEnd::Drained);
                }
            }
            Err(e) => {
                return Err(SessionEnd::Torn(ServeError::Transport(format!(
                    "reading the codec preamble: {e}"
                ))))
            }
        }
    }
}

fn is_poll_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

fn session_loop(
    shared: &Arc<NetShared>,
    reader: &mut BufReader<Box<dyn SessionStream>>,
    tx: &SyncSender<Vec<u8>>,
    codec: Codec,
    conn_id: u64,
) -> SessionEnd {
    let obs = Arc::clone(shared.obs());
    let injector = shared.service.fault_injector().cloned();
    let mut request_index: u64 = 0;
    loop {
        let request = match read_request(reader, shared, codec) {
            Ok(Some(decoded)) => decoded,
            Ok(None) => return SessionEnd::Clean,
            Err(end) => return end,
        };
        // The deterministic disconnect fault: hang up abruptly instead
        // of handling, exercising the torn-frame cleanup end to end.
        if let Some(injector) = &injector {
            if injector.conn_drop(conn_id, request_index) {
                let _ = reader.get_ref().shutdown_stream();
                return SessionEnd::Torn(ServeError::Transport(format!(
                    "injected connection drop before request {request_index}"
                )));
            }
        }
        request_index += 1;
        let response = match request {
            Ok(request) if obs.enabled() => {
                let verb = request.verb();
                let start_ns = obs.now_ns();
                let response = shared.service.handle(request);
                let elapsed = obs.now_ns().saturating_sub(start_ns);
                obs.record_verb(verb, elapsed);
                obs.record_net_verb(verb, codec.label(), elapsed);
                response
            }
            Ok(request) => shared.service.handle(request),
            Err(reason) => Response::Error {
                reason,
                code: "invalid_request".to_string(),
            },
        };
        let bye = response == Response::Bye;
        if tx.send(encode_response_bytes(&response, codec)).is_err() {
            // The writer died (client stopped reading and went away).
            return SessionEnd::Torn(ServeError::Transport(
                "response writer closed mid-session".to_string(),
            ));
        }
        if bye {
            // `Shutdown` drains the whole front door: stop accepting,
            // flush, exit. The response is already queued, so the
            // client sees its `Bye`.
            shared.draining.store(true, Ordering::SeqCst);
            return SessionEnd::Clean;
        }
    }
}

/// Reads one request off the connection. `Ok(None)` is a clean close at
/// a frame boundary; `Ok(Some(Err(reason)))` is a decodable-but-invalid
/// request (answered with an `invalid_request` error, session
/// continues); `Err` ends the session.
#[allow(clippy::type_complexity)]
fn read_request(
    reader: &mut BufReader<Box<dyn SessionStream>>,
    shared: &Arc<NetShared>,
    codec: Codec,
) -> Result<Option<std::result::Result<Request, String>>, SessionEnd> {
    match codec {
        Codec::Json => read_json_request(reader, shared),
        Codec::Binary => read_binary_request(reader, shared),
    }
}

#[allow(clippy::type_complexity)]
fn read_json_request(
    reader: &mut BufReader<Box<dyn SessionStream>>,
    shared: &Arc<NetShared>,
) -> Result<Option<std::result::Result<Request, String>>, SessionEnd> {
    let mut line = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => {
                // EOF. Bytes without a newline are a half-written line.
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(SessionEnd::Torn(ServeError::Transport(format!(
                        "connection closed mid-line after {} bytes",
                        line.len()
                    ))))
                };
            }
            Ok(_) if line.ends_with(b"\n") => {
                shared.obs().add_net_bytes_in(line.len() as u64);
                let text = match std::str::from_utf8(&line) {
                    Ok(text) => text.trim(),
                    Err(_) => return Ok(Some(Err("request line is not UTF-8".into()))),
                };
                if text.is_empty() {
                    line.clear();
                    continue;
                }
                return Ok(Some(
                    protocol::decode_request(text).map_err(|e| format!("bad request line: {e}")),
                ));
            }
            Ok(_) => {
                // Delimiter not reached before the buffer drained; keep
                // reading the same line.
            }
            Err(e) if is_poll_timeout(&e) => {
                if shared.draining() && line.is_empty() {
                    return Err(SessionEnd::Drained);
                }
            }
            Err(e) => {
                return Err(SessionEnd::Torn(ServeError::Transport(format!(
                    "reading a request line: {e}"
                ))))
            }
        }
    }
}

#[allow(clippy::type_complexity)]
fn read_binary_request(
    reader: &mut BufReader<Box<dyn SessionStream>>,
    shared: &Arc<NetShared>,
) -> Result<Option<std::result::Result<Request, String>>, SessionEnd> {
    let mut header = [0u8; 4];
    if !read_full(reader, shared, &mut header, true)? {
        return Ok(None);
    }
    let body_len = wire::parse_header(header)
        .map_err(|e| SessionEnd::Torn(ServeError::Transport(e.to_string())))?;
    let mut body = vec![0u8; body_len];
    // Mid-frame EOF below is a torn length prefix / truncated body.
    read_full(reader, shared, &mut body, false)?;
    shared.obs().add_net_bytes_in(4 + body_len as u64);
    let (tag, payload) = wire::parse_body(&body)
        .map_err(|e| SessionEnd::Torn(ServeError::Transport(e.to_string())))?;
    match wire::decode_request_frame(tag, payload) {
        Ok(request) => Ok(Some(Ok(request))),
        // The frame passed its checksum but decodes to no valid
        // request: answer `invalid_request` and keep the session, the
        // transport itself is healthy (mirrors a bad JSON line).
        Err(e) => Ok(Some(Err(format!("bad request frame: {e}")))),
    }
}

/// Fills `buf` from the connection, polling the drain flag on read
/// timeouts. Returns `Ok(false)` on a clean EOF before the first byte
/// (only when `clean_eof_ok`); EOF after the first byte is a torn
/// frame.
fn read_full(
    reader: &mut BufReader<Box<dyn SessionStream>>,
    shared: &Arc<NetShared>,
    buf: &mut [u8],
    clean_eof_ok: bool,
) -> Result<bool, SessionEnd> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && clean_eof_ok {
                    Ok(false)
                } else {
                    Err(SessionEnd::Torn(ServeError::Transport(format!(
                        "connection closed mid-frame after {filled} of {} bytes",
                        buf.len()
                    ))))
                };
            }
            Ok(n) => filled += n,
            Err(e) if is_poll_timeout(&e) => {
                if shared.draining() && filled == 0 && clean_eof_ok {
                    return Err(SessionEnd::Drained);
                }
            }
            Err(e) => {
                return Err(SessionEnd::Torn(ServeError::Transport(format!(
                    "reading a frame: {e}"
                ))))
            }
        }
    }
    Ok(true)
}

fn encode_response_bytes(response: &Response, codec: Codec) -> Vec<u8> {
    match codec {
        Codec::Json => {
            let mut bytes = protocol::encode_response(response).into_bytes();
            bytes.push(b'\n');
            bytes
        }
        Codec::Binary => wire::encode_response_frame(response).unwrap_or_else(|e| {
            // Unencodable responses are bounded-size errors by
            // construction, so this fallback frame always encodes.
            wire::encode_response_frame(&Response::Error {
                reason: format!("response unencodable: {e}"),
                code: "transport".to_string(),
            })
            .expect("a small error frame always encodes")
        }),
    }
}

fn writer_loop(rx: Receiver<Vec<u8>>, mut stream: Box<dyn SessionStream>, obs: Arc<ServeObs>) {
    loop {
        let Ok(mut pending) = rx.recv() else {
            // Session over: everything queued was written.
            let _ = stream.flush();
            return;
        };
        loop {
            if stream.write_all(&pending).is_err() {
                // Dropping the receiver makes the session's next send
                // fail, ending it with a typed transport error.
                return;
            }
            obs.add_net_bytes_out(pending.len() as u64);
            match rx.try_recv() {
                Ok(next) => pending = next,
                Err(_) => break,
            }
        }
        if stream.flush().is_err() {
            return;
        }
    }
}

// ---- client -----------------------------------------------------------------

/// A blocking protocol client for either transport and codec — what the
/// `bench_net` load generator and the integration tests drive sessions
/// with, and a reference for external client implementations.
pub struct NetClient {
    reader: BufReader<Box<dyn SessionStream>>,
    writer: Box<dyn SessionStream>,
    codec: Codec,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("codec", &self.codec)
            .finish()
    }
}

impl NetClient {
    /// Connects to a server and negotiates the codec (binary clients
    /// send the [`wire::PREAMBLE`] byte; JSON clients send nothing).
    pub fn connect(addr: &ListenAddr, codec: Codec) -> io::Result<Self> {
        let stream: Box<dyn SessionStream> = match addr {
            ListenAddr::Tcp(addr) => Box::new(TcpStream::connect(addr)?),
            ListenAddr::Unix(path) => Box::new(UnixStream::connect(path)?),
        };
        Self::from_stream(stream, codec)
    }

    fn from_stream(stream: Box<dyn SessionStream>, codec: Codec) -> io::Result<Self> {
        let mut writer = stream.try_clone_stream()?;
        if codec == Codec::Binary {
            writer.write_all(&[wire::PREAMBLE])?;
        }
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            codec,
        })
    }

    /// The negotiated codec.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Sends one request without waiting for the response — the
    /// pipelining half; pair with [`NetClient::recv`] in request order.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        match self.codec {
            Codec::Json => {
                let mut line = protocol::encode_request(request).into_bytes();
                line.push(b'\n');
                self.writer.write_all(&line)
            }
            Codec::Binary => {
                let frame = wire::encode_request_frame(request)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
                self.writer.write_all(&frame)
            }
        }
    }

    /// Receives one response (in request order).
    pub fn recv(&mut self) -> io::Result<Response> {
        match self.codec {
            Codec::Json => {
                let mut line = String::new();
                let n = self.reader.read_line(&mut line)?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                protocol::decode_response(line.trim())
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
            Codec::Binary => {
                let mut header = [0u8; 4];
                self.reader.read_exact(&mut header)?;
                let body_len = wire::parse_header(header)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let mut body = vec![0u8; body_len];
                self.reader.read_exact(&mut body)?;
                let (tag, payload) = wire::parse_body(&body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                wire::decode_response_frame(tag, payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
        }
    }

    /// One full round trip.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Writes raw bytes to the connection — the integration tests use
    /// this to produce torn frames and half-written lines on purpose.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Closes both directions immediately (an abrupt client hang-up).
    pub fn hang_up(&mut self) {
        let _ = self.writer.shutdown_stream();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn tiny_server(seed: u64) -> (NetServer, ListenAddr) {
        let service = Arc::new(Service::new(ServiceConfig::smoke(seed)));
        let config = NetConfig::new(ListenAddr::Tcp("127.0.0.1:0".parse().unwrap()));
        let server = NetServer::start(service, config).expect("bind succeeds");
        let addr = server.listen_addr();
        (server, addr)
    }

    #[test]
    fn listen_addr_renders_both_transports() {
        let tcp = ListenAddr::Tcp("127.0.0.1:7171".parse().unwrap());
        assert_eq!(tcp.to_string(), "127.0.0.1:7171");
        let unix = ListenAddr::Unix(PathBuf::from("/tmp/optrr.sock"));
        assert_eq!(unix.to_string(), "unix:/tmp/optrr.sock");
    }

    #[test]
    fn net_config_defaults_are_bounded() {
        let config = NetConfig::new(ListenAddr::Tcp("127.0.0.1:0".parse().unwrap()));
        assert_eq!(config.max_conns, 1024);
        assert_eq!(config.conn_queue, 64);
        assert_eq!(config.drain_ms, 5_000);
    }

    #[test]
    fn a_session_round_trips_and_shutdown_drains() {
        let (server, addr) = tiny_server(11);
        let mut client = NetClient::connect(&addr, Codec::Json).unwrap();
        let response = client
            .request(&Request::Register {
                name: Some("demo".into()),
                prior: vec![0.4, 0.3, 0.2, 0.1],
                delta: 0.8,
                slots: Some(60),
                lazy: None,
            })
            .unwrap();
        assert!(matches!(response, Response::Registered { warm: true, .. }));
        let response = client
            .request(&Request::BestForPrivacy {
                key: None,
                name: Some("demo".into()),
                min_privacy: 0.05,
            })
            .unwrap();
        assert!(matches!(response, Response::Matrix { .. }));
        assert_eq!(client.request(&Request::Shutdown).unwrap(), Response::Bye);
        assert_eq!(server.wait(), 1, "one session was served");
    }

    #[test]
    fn request_drain_stops_an_idle_server() {
        let (server, _) = tiny_server(12);
        assert!(!server.is_draining());
        server.request_drain();
        assert!(server.is_draining());
        assert_eq!(server.wait(), 0);
    }
}
