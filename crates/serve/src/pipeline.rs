//! The streaming disguise + estimation pipeline (`optrr-pipeline`).
//!
//! The serving layer of PR 2 answers *which matrix to use*; this module
//! closes the paper's end-to-end loop by also *using* it. A client streams
//! categorical responses for a registered key: raw responses are disguised
//! server-side through the warm matrix selected for the stream's privacy
//! bound, pre-counted batches (already disguised client-side) land
//! directly. Batches accumulate in a per-key [`ShardedCounts`] — the same
//! disjoint-lock pattern as the sharded Ω store, so N concurrent streams
//! never contend — and `Estimate` reconstructs the original distribution
//! from the merged counts: matrix inversion (Theorem 1) when the pinned
//! matrix is invertible, with automatic fallback to the iterative Bayesian
//! estimator (Equation 3) otherwise. Re-estimates warm-start the iterative
//! estimator from the previous posterior, so streaming re-estimation after
//! new batches costs a handful of iterations, not a cold converge.
//!
//! Estimation is also the service's first *telemetry-driven refresh
//! trigger*: when the estimated distribution drifts from the registered
//! prior beyond the configured MSE threshold, the key is marked stale and
//! (by default) one refresh engine run is scheduled on the worker pool —
//! the matrices were optimized for a prior the population no longer
//! follows.
//!
//! Determinism contract: the matrix pinned at the first ingest comes from
//! the deterministic warm store; a batch's disguise RNG seed defaults to a
//! fingerprint of the batch payload (so it does not depend on stream
//! interleaving); and count accumulation commutes. Together these make a
//! sharded concurrent ingest bitwise-equal to a single-stream run over the
//! same batches — the end-to-end tests assert it.

use crate::counts::ShardedCounts;
use crate::lifecycle::StaleReason;
use crate::registry::KeyEntry;
use crate::service::{Result, ServeError, Service};
use crate::telemetry::ServeEvent;
use optrr::Evaluation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rr::estimate::{
    estimate_from_disguised_frequencies, iterative_estimate_from_frequencies,
    iterative_estimate_warm,
};
use rr::{ColumnSamplers, RrMatrix};
use serde::{Deserialize, Serialize};
use stats::divergence::mean_squared_error;
use stats::{Categorical, CountSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The per-key streaming state: the pinned disguise matrix, the sharded
/// response accumulator, and the warm-start posterior carried between
/// estimates.
#[derive(Debug)]
pub struct KeyPipeline {
    matrix: RrMatrix,
    /// The pinned matrix's Walker/Vose alias tables, built once beside
    /// the pin. Building them is the O(n²) part of a disguise call;
    /// caching them here means a stream of small raw batches pays O(n²)
    /// once per pin, not once per batch. The tables are a deterministic
    /// function of the matrix and consume no RNG, so the cached path is
    /// bitwise-identical to a per-batch rebuild (asserted in
    /// `rr::disguise`).
    samplers: ColumnSamplers,
    evaluation: Evaluation,
    min_privacy: f64,
    counts: ShardedCounts,
    raw_records: AtomicU64,
    estimates: AtomicU64,
    drift_events: AtomicU64,
    posterior: Mutex<Option<Categorical>>,
}

impl KeyPipeline {
    pub(crate) fn new(
        matrix: RrMatrix,
        evaluation: Evaluation,
        min_privacy: f64,
        num_shards: usize,
    ) -> std::result::Result<Self, String> {
        let num_categories = matrix.num_categories();
        let samplers = ColumnSamplers::new(&matrix)
            .map_err(|e| format!("pinned matrix rejected by the sampler build: {e}"))?;
        Ok(Self {
            matrix,
            samplers,
            evaluation,
            min_privacy,
            counts: ShardedCounts::new(num_categories, num_shards),
            raw_records: AtomicU64::new(0),
            estimates: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            posterior: Mutex::new(None),
        })
    }

    /// The disguise matrix pinned at the first ingest. Every batch of the
    /// key's stream goes through this one matrix, so the estimators can
    /// invert a single known channel.
    pub fn matrix(&self) -> &RrMatrix {
        &self.matrix
    }

    /// The pinned matrix's cached alias tables (see the field docs).
    pub fn samplers(&self) -> &ColumnSamplers {
        &self.samplers
    }

    /// The pinned matrix's evaluation (privacy, closed-form MSE) at
    /// selection time.
    pub fn evaluation(&self) -> &Evaluation {
        &self.evaluation
    }

    /// The privacy bound that selected the pinned matrix.
    pub fn min_privacy(&self) -> f64 {
        self.min_privacy
    }

    /// The sharded response accumulator.
    pub fn counts(&self) -> &ShardedCounts {
        &self.counts
    }

    /// Raw records disguised server-side (pre-counted batches excluded).
    pub fn raw_records(&self) -> u64 {
        self.raw_records.load(Ordering::SeqCst)
    }

    /// Estimates computed for this key.
    pub fn estimates(&self) -> u64 {
        self.estimates.load(Ordering::SeqCst)
    }

    /// Drift events (estimates beyond the MSE threshold) for this key.
    pub fn drift_events(&self) -> u64 {
        self.drift_events.load(Ordering::SeqCst)
    }

    /// The previous estimate, used to warm-start the iterative estimator
    /// — and, under drift-driven re-optimization, as the refresh run's
    /// optimization target.
    ///
    /// Every write under this lock is a whole-value replacement
    /// (`*guard = Some(..)`), so a holder that panicked mid-store cannot
    /// have left a torn posterior behind — the lock recovers from
    /// poisoning instead of cascading the panic into later estimates.
    pub fn posterior(&self) -> Option<Categorical> {
        self.posterior
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Approximate resident heap bytes: the pinned matrix, the sharded
    /// accumulator, and the stored posterior.
    pub fn approx_bytes(&self) -> u64 {
        let n = self.matrix.num_categories() as u64;
        n * n * 8 + self.counts.approx_bytes() + n * 8 + 64
    }

    /// The pipeline's persisted form: pinned channel, merged accumulator,
    /// counters, and posterior — everything a restart needs to resume the
    /// estimation stream bitwise.
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            matrix: self.matrix.clone(),
            evaluation: self.evaluation,
            min_privacy: self.min_privacy,
            counts: self.counts.merge(),
            raw_records: self.raw_records(),
            estimates: self.estimates(),
            drift_events: self.drift_events(),
            posterior: self.posterior(),
        }
    }

    /// Rebuilds a pipeline from its persisted form. Accumulation
    /// commutes, so later batches land on top of the restored counts
    /// exactly as they would have on the live accumulator.
    pub fn restore(
        snapshot: &PipelineSnapshot,
        num_shards: usize,
    ) -> std::result::Result<Self, String> {
        let n = snapshot.matrix.num_categories();
        if snapshot.counts.num_categories() != n {
            return Err(format!(
                "pipeline snapshot counts cover {} categories, the pinned matrix {}",
                snapshot.counts.num_categories(),
                n
            ));
        }
        let pipeline = Self::new(
            snapshot.matrix.clone(),
            snapshot.evaluation,
            snapshot.min_privacy,
            num_shards,
        )?;
        if !snapshot.counts.is_empty() {
            pipeline
                .counts
                .absorb(&snapshot.counts)
                .map_err(|e| format!("pipeline snapshot counts rejected: {e}"))?;
        }
        pipeline
            .raw_records
            .store(snapshot.raw_records, Ordering::SeqCst);
        pipeline
            .estimates
            .store(snapshot.estimates, Ordering::SeqCst);
        pipeline
            .drift_events
            .store(snapshot.drift_events, Ordering::SeqCst);
        if let Some(posterior) = &snapshot.posterior {
            if posterior.num_categories() != n {
                return Err(format!(
                    "pipeline snapshot posterior covers {} categories, the pinned matrix {n}",
                    posterior.num_categories()
                ));
            }
            // The serialized Categorical restores its exact bit pattern,
            // so warm-started re-estimates resume identically. (Whole-value
            // replacement: poison recovery is safe, see `posterior`.)
            *pipeline
                .posterior
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(posterior.clone());
        }
        Ok(pipeline)
    }
}

/// The persisted form of a [`KeyPipeline`] (pipeline persistence phase 2):
/// enough for a restarted server to resume the in-flight estimation
/// stream — the pinned channel, the merged accumulator, and the posterior
/// the next estimate warm-starts from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSnapshot {
    /// The disguise matrix pinned at first ingest.
    pub matrix: RrMatrix,
    /// The pinned matrix's evaluation at selection time.
    pub evaluation: Evaluation,
    /// The privacy bound that selected the pinned matrix.
    pub min_privacy: f64,
    /// The merged response accumulator (counts, total, batch counter).
    pub counts: CountSet,
    /// Raw records disguised server-side before the snapshot.
    pub raw_records: u64,
    /// Estimates computed before the snapshot.
    pub estimates: u64,
    /// Drift events observed before the snapshot.
    pub drift_events: u64,
    /// The warm-start posterior, when an estimate has run (serialized
    /// bit-exact so resumed re-estimates match the live service).
    pub posterior: Option<Categorical>,
}

/// How an estimate reconstructed the distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateMethod {
    /// Matrix inversion (Theorem 1): `P̂ = M⁻¹ P̂*`, simplex-projected.
    Inversion,
    /// The iterative Bayesian estimator (Equation 3), used when the pinned
    /// matrix is singular, warm-started from the previous posterior.
    Iterative,
}

impl std::fmt::Display for EstimateMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EstimateMethod::Inversion => "inversion",
            EstimateMethod::Iterative => "iterative",
        })
    }
}

/// The outcome of one ingest batch.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOutcome {
    /// The key the batch landed on.
    pub key: u64,
    /// Responses accepted from this batch.
    pub accepted: u64,
    /// Of the accepted raw responses, how many kept their original value
    /// through the disguise (0 for pre-counted batches).
    pub retained: u64,
    /// Total responses accumulated for the key so far.
    pub total: u64,
    /// Total batches accumulated for the key so far.
    pub batches: u64,
    /// Privacy of the pinned disguise matrix.
    pub privacy: f64,
}

/// The outcome of one estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateOutcome {
    /// The key that was estimated.
    pub key: u64,
    /// Which estimator produced the distribution.
    pub method: EstimateMethod,
    /// The reconstructed original distribution.
    pub distribution: Categorical,
    /// Iterations the iterative estimator performed (0 for inversion).
    pub iterations: u64,
    /// Convergence residual of the iterative estimator (0 for inversion).
    pub residual: f64,
    /// MSE between the reconstruction and the registered prior — the
    /// drift signal.
    pub mse_vs_prior: f64,
    /// Total responses the estimate is based on.
    pub total_responses: u64,
    /// Batches the estimate is based on.
    pub batches: u64,
    /// Whether the estimate exceeded the drift threshold (the key was
    /// marked stale and, if configured, a refresh run was scheduled).
    pub drifted: bool,
    /// Whether the key was stale when the estimate returned (a drift
    /// refresh that already landed clears it again).
    pub stale: bool,
}

/// Deterministic default seed for a batch's disguise RNG: an FNV-1a
/// fingerprint ([`optrr::fnv1a_64`]) of the payload mixed with the key and
/// the service's base seed. Depending only on *what* is ingested — never
/// on when or on which stream — it makes concurrent ingest reproduce a
/// single-stream run bit for bit even when no explicit seed is supplied.
///
/// The flip side of that determinism: byte-identical batches reuse
/// byte-identical disguise draws, so a client replaying one payload many
/// times accumulates perfectly correlated noise instead of fresh
/// randomness (and its estimate will not converge with the repeat count).
/// Streams that legitimately repeat payloads should pass distinct
/// explicit `seed`s per batch.
pub fn payload_seed(base_seed: u64, key: u64, records: &[usize]) -> u64 {
    optrr::fnv1a_64(
        [base_seed, key, records.len() as u64]
            .into_iter()
            .chain(records.iter().map(|&r| r as u64)),
    )
}

impl Service {
    /// The pipeline of a key, installing one on first use: the disguise
    /// matrix is selected from the warm store as the best matrix with
    /// privacy ≥ `min_privacy` (waiting for warm-up like any point query)
    /// and pinned for the life of the stream. Later calls reuse the pinned
    /// pipeline whatever bound they pass, so one key is always one channel.
    pub fn pipeline_for(
        self: &Arc<Self>,
        entry: &Arc<KeyEntry>,
        min_privacy: f64,
    ) -> Result<Arc<KeyPipeline>> {
        if let Some(pipeline) = entry.pipeline() {
            return Ok(pipeline);
        }
        let found = self.best_for_privacy(entry, min_privacy).ok_or_else(|| {
            ServeError::InvalidRequest(format!(
                "no stored matrix with privacy >= {min_privacy} to pin for ingest"
            ))
        })?;
        let pipeline = KeyPipeline::new(
            found.matrix,
            found.evaluation,
            min_privacy,
            self.config().num_shards,
        )
        .map_err(ServeError::InvalidRequest)?;
        self.obs()
            .emit(ServeEvent::SamplerRebuild { key: entry.key() });
        // A concurrent first ingest may have won the race; install returns
        // the pipeline that ended up pinned either way.
        Ok(entry.install_pipeline(pipeline))
    }

    /// Stateless one-shot disguise: selects the best warm matrix for the
    /// privacy bound and returns the disguised records without
    /// accumulating anything. The seed defaults to the payload
    /// fingerprint, so equal requests give equal answers.
    pub fn disguise(
        self: &Arc<Self>,
        entry: &Arc<KeyEntry>,
        min_privacy: f64,
        records: &[usize],
        seed: Option<u64>,
    ) -> Result<(Evaluation, Vec<usize>, u64)> {
        let found = self.best_for_privacy(entry, min_privacy).ok_or_else(|| {
            ServeError::InvalidRequest(format!(
                "no stored matrix with privacy >= {min_privacy} to disguise through"
            ))
        })?;
        let (disguised, retained) =
            self.disguise_batch(&found.matrix, None, entry.key(), records, seed)?;
        Ok((found.evaluation, disguised, retained))
    }

    /// The one disguise path shared by `disguise` and `ingest`: applies
    /// the matrix to one batch under the explicit seed or its
    /// payload-fingerprint default, returning the disguised records and
    /// how many kept their original value. `samplers` carries the pinned
    /// pipeline's cached alias tables; the stateless `Disguise` verb has
    /// no pipeline to cache in and passes `None`, paying the build per
    /// call. The two paths are bitwise-identical for the same seed.
    fn disguise_batch(
        &self,
        matrix: &RrMatrix,
        samplers: Option<&ColumnSamplers>,
        key: u64,
        records: &[usize],
        seed: Option<u64>,
    ) -> Result<(Vec<usize>, u64)> {
        if records.is_empty() {
            return Err(ServeError::InvalidRequest(
                "a disguise batch needs at least one record".into(),
            ));
        }
        let dataset = datagen::CategoricalDataset::new(matrix.num_categories(), records.to_vec())
            .map_err(|e| ServeError::InvalidRequest(format!("invalid records: {e}")))?;
        let seed = seed.unwrap_or_else(|| payload_seed(self.config().base.seed, key, records));
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = match samplers {
            Some(samplers) => rr::disguise_dataset_with(samplers, &dataset, &mut rng),
            None => {
                self.obs().emit(ServeEvent::SamplerRebuild { key });
                rr::disguise_dataset(matrix, &dataset, &mut rng)
            }
        }
        .map_err(|e| ServeError::InvalidRequest(format!("disguise failed: {e}")))?;
        Ok((
            outcome.disguised.records().to_vec(),
            outcome.retained as u64,
        ))
    }

    /// Ingests one batch of responses for a key. Exactly one of `records`
    /// (raw, disguised server-side through the pinned matrix) or `counts`
    /// (pre-counted responses already disguised client-side) must be
    /// given. The batch lands wholly in one shard of the key's sharded
    /// accumulator, so concurrent streams never contend.
    pub fn ingest(
        self: &Arc<Self>,
        entry: &Arc<KeyEntry>,
        min_privacy: Option<f64>,
        records: Option<&[usize]>,
        counts: Option<&[u64]>,
        seed: Option<u64>,
    ) -> Result<IngestOutcome> {
        /// A validated ingest batch: one source of truth for the shape.
        enum Batch<'a> {
            Raw(&'a [usize]),
            Counted(&'a [u64], u64),
        }
        // Validate the batch BEFORE pinning a pipeline: a malformed first
        // ingest must not pin the key's matrix at whatever privacy floor
        // it happened to carry.
        let n = entry.prior().num_categories();
        let batch = match (records, counts) {
            (Some(records), None) => {
                stats::CountSet::validate_records(n, records)
                    .map_err(|e| ServeError::InvalidRequest(format!("invalid batch: {e}")))?;
                Batch::Raw(records)
            }
            (None, Some(counts)) => {
                let total = stats::CountSet::validate_counts(n, counts)
                    .map_err(|e| ServeError::InvalidRequest(format!("invalid batch: {e}")))?;
                Batch::Counted(counts, total)
            }
            _ => {
                return Err(ServeError::InvalidRequest(
                    "an ingest batch needs exactly one of `records` or `counts`".into(),
                ))
            }
        };
        let pipeline = self.pipeline_for(entry, min_privacy.unwrap_or(0.0))?;
        let (accepted, retained) = match batch {
            Batch::Raw(records) => {
                // The cached alias tables make a small raw batch cost
                // O(batch), not O(n²) + O(batch).
                let (disguised, retained) = self.disguise_batch(
                    pipeline.matrix(),
                    Some(pipeline.samplers()),
                    entry.key(),
                    records,
                    seed,
                )?;
                pipeline
                    .counts()
                    .ingest_records(&disguised)
                    .map_err(|e| ServeError::InvalidRequest(format!("invalid batch: {e}")))?;
                pipeline
                    .raw_records
                    .fetch_add(records.len() as u64, Ordering::SeqCst);
                (records.len() as u64, retained)
            }
            Batch::Counted(counts, total) => {
                pipeline
                    .counts()
                    .ingest_counts(counts)
                    .map_err(|e| ServeError::InvalidRequest(format!("invalid batch: {e}")))?;
                (total, 0)
            }
        };
        entry.touch(self.now_ms());
        let total = pipeline.counts().total();
        self.obs().emit(ServeEvent::Ingest {
            key: entry.key(),
            accepted,
            total,
        });
        Ok(IngestOutcome {
            key: entry.key(),
            accepted,
            retained,
            total,
            batches: pipeline.counts().batches(),
            privacy: pipeline.evaluation().privacy,
        })
    }

    /// Reconstructs the original distribution from a key's accumulated
    /// responses: inversion first, iterative fallback (warm-started from
    /// the previous posterior) when the pinned matrix is singular. Updates
    /// the warm-start posterior, and on drift beyond the configured MSE
    /// threshold marks the key stale and (if configured) schedules one
    /// refresh engine run — the telemetry-driven refresh trigger.
    pub fn estimate(self: &Arc<Self>, entry: &Arc<KeyEntry>) -> Result<EstimateOutcome> {
        // An evicted key re-warms first (restoring its persisted pipeline
        // when a sidecar exists), so estimation is as eviction-transparent
        // as the point queries.
        self.ensure_live(entry);
        let pipeline = entry.pipeline().ok_or_else(|| {
            ServeError::InvalidRequest("no responses ingested for this key yet".into())
        })?;
        let merged = pipeline.counts().merge();
        let p_star = merged.empirical_distribution().map_err(|_| {
            ServeError::InvalidRequest("no responses ingested for this key yet".into())
        })?;
        let (method, distribution, iterations, residual) =
            match estimate_from_disguised_frequencies(pipeline.matrix(), &p_star) {
                Ok(inverted) => (EstimateMethod::Inversion, inverted.distribution, 0, 0.0),
                Err(_) => {
                    // Singular (or otherwise non-invertible) channel: fall
                    // back to the iterative estimator, resuming from the
                    // previous posterior when one exists.
                    let config = self.config().iterative;
                    let out = match pipeline.posterior() {
                        Some(start) => {
                            iterative_estimate_warm(pipeline.matrix(), &p_star, &start, &config)
                        }
                        None => {
                            iterative_estimate_from_frequencies(pipeline.matrix(), &p_star, &config)
                        }
                    }
                    .map_err(|e| ServeError::InvalidRequest(format!("estimation failed: {e}")))?;
                    (
                        EstimateMethod::Iterative,
                        out.distribution,
                        out.iterations as u64,
                        out.residual,
                    )
                }
            };
        // Whole-value replacement: poison recovery is safe, see `posterior`.
        *pipeline
            .posterior
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(distribution.clone());
        pipeline.estimates.fetch_add(1, Ordering::SeqCst);
        let mse_vs_prior = mean_squared_error(&distribution, entry.prior())
            .expect("estimate and prior share one domain");
        let drifted = mse_vs_prior > self.config().drift_mse_threshold;
        if drifted {
            pipeline.drift_events.fetch_add(1, Ordering::SeqCst);
            entry.count_drift_event();
            self.obs().emit(ServeEvent::Drift {
                key: entry.key(),
                mse: mse_vs_prior,
            });
            // The population no longer follows the registered prior. The
            // lifecycle's compare-exchange makes concurrent drift
            // observations schedule exactly one refresh between them —
            // and records *why* the key is stale, so the scheduled run
            // re-optimizes against this posterior instead of the prior.
            if entry.lifecycle().try_mark_stale(StaleReason::Drift)
                && self.config().refresh_on_drift
            {
                self.schedule_runs(entry, 1);
            }
        }
        entry.touch(self.now_ms());
        Ok(EstimateOutcome {
            key: entry.key(),
            method,
            distribution,
            iterations,
            residual,
            mse_vs_prior,
            total_responses: merged.total(),
            batches: merged.batches(),
            drifted,
            stale: entry.is_stale(),
        })
    }

    /// Estimates every key that has accumulated responses, in ascending
    /// key order. Returns the outcomes, the number of registered keys
    /// skipped for having no responses, and the number whose estimate
    /// failed (a genuinely broken channel — reported separately so a
    /// sweep never hides one behind "no data").
    pub fn estimate_all(self: &Arc<Self>) -> (Vec<EstimateOutcome>, usize, usize) {
        let mut entries = self.registry().entries();
        entries.sort_by_key(|e| e.key());
        let mut outcomes = Vec::new();
        let mut skipped = 0usize;
        let mut failed = 0usize;
        for entry in &entries {
            let has_data = entry
                .pipeline()
                .map(|p| !p.counts().is_empty())
                .unwrap_or(false);
            if !has_data {
                skipped += 1;
                continue;
            }
            match self.estimate(entry) {
                Ok(outcome) => outcomes.push(outcome),
                Err(_) => failed += 1,
            }
        }
        (outcomes, skipped, failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn smoke_service() -> Arc<Service> {
        Arc::new(Service::new(ServiceConfig::smoke(404)))
    }

    const PRIOR: [f64; 4] = [0.4, 0.3, 0.2, 0.1];

    #[test]
    fn payload_seed_depends_on_payload_key_and_base() {
        let a = payload_seed(1, 2, &[0, 1, 2]);
        assert_eq!(a, payload_seed(1, 2, &[0, 1, 2]));
        assert_ne!(a, payload_seed(1, 2, &[0, 1, 3]));
        assert_ne!(a, payload_seed(1, 3, &[0, 1, 2]));
        assert_ne!(a, payload_seed(9, 2, &[0, 1, 2]));
        assert_ne!(a, payload_seed(1, 2, &[0, 1, 2, 0]));
    }

    #[test]
    fn first_ingest_pins_the_matrix_and_later_bounds_are_ignored() {
        let service = smoke_service();
        let entry = service.register(None, &PRIOR, 0.8, None, true).unwrap();
        let a = service.pipeline_for(&entry, 0.05).unwrap();
        let b = service.pipeline_for(&entry, 0.5).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.min_privacy(), 0.05);
        assert!(a.evaluation().privacy >= 0.05);
        assert_eq!(a.matrix().num_categories(), PRIOR.len());
        // An impossible bound on a fresh key has nothing to pin.
        let other = service.register(None, &PRIOR, 0.75, None, true).unwrap();
        assert!(service.pipeline_for(&other, 0.999).is_err());
    }

    #[test]
    fn ingest_validates_its_batch_shape() {
        let service = smoke_service();
        let entry = service.register(None, &PRIOR, 0.8, None, true).unwrap();
        // Exactly one of records/counts.
        assert!(service.ingest(&entry, None, None, None, None).is_err());
        assert!(service
            .ingest(&entry, None, Some(&[0, 1]), Some(&[1, 0, 0, 0]), None)
            .is_err());
        // Bad payloads.
        assert!(service.ingest(&entry, None, Some(&[]), None, None).is_err());
        assert!(service
            .ingest(&entry, None, Some(&[9]), None, None)
            .is_err());
        assert!(service
            .ingest(&entry, None, None, Some(&[0, 0, 0, 0]), None)
            .is_err());
        assert!(service
            .ingest(&entry, None, None, Some(&[1, 2]), None)
            .is_err());
        // None of the malformed batches pinned a pipeline: a later first
        // ingest still chooses the matrix for ITS privacy bound.
        assert!(entry.pipeline().is_none());
        // Estimating before any batch landed is an error.
        assert!(service.estimate(&entry).is_err());
        // A good raw batch lands and reports.
        let out = service
            .ingest(&entry, Some(0.0), Some(&[0, 0, 1, 2, 3]), None, Some(7))
            .unwrap();
        assert_eq!(out.accepted, 5);
        assert_eq!(out.total, 5);
        assert_eq!(out.batches, 1);
        assert!(out.retained <= 5);
        // A pre-counted batch adds on top.
        let out = service
            .ingest(&entry, None, None, Some(&[2, 0, 0, 1]), None)
            .unwrap();
        assert_eq!(out.accepted, 3);
        assert_eq!(out.total, 8);
        assert_eq!(out.batches, 2);
        assert_eq!(out.retained, 0);
    }

    #[test]
    fn ingest_default_seed_is_payload_deterministic() {
        let service = smoke_service();
        let entry = service.register(None, &PRIOR, 0.8, None, true).unwrap();
        let records: Vec<usize> = (0..200).map(|i| i % 4).collect();
        let (eval_a, disguised_a, retained_a) =
            service.disguise(&entry, 0.0, &records, None).unwrap();
        let (eval_b, disguised_b, retained_b) =
            service.disguise(&entry, 0.0, &records, None).unwrap();
        assert_eq!(disguised_a, disguised_b);
        assert_eq!(retained_a, retained_b);
        assert_eq!(eval_a.privacy.to_bits(), eval_b.privacy.to_bits());
        // An explicit seed overrides the payload default.
        let (_, disguised_c, _) = service.disguise(&entry, 0.0, &records, Some(1)).unwrap();
        let (_, disguised_d, _) = service.disguise(&entry, 0.0, &records, Some(2)).unwrap();
        assert_ne!(disguised_c, disguised_d);
    }

    #[test]
    fn estimate_recovers_the_prior_and_does_not_drift() {
        let service = smoke_service();
        let entry = service.register(None, &PRIOR, 0.8, None, true).unwrap();
        let prior = entry.prior().clone();
        let mut rng = StdRng::seed_from_u64(99);
        let records = prior.sample_many(&mut rng, 20_000);
        service
            .ingest(&entry, Some(0.0), Some(&records), None, Some(5))
            .unwrap();
        let out = service.estimate(&entry).unwrap();
        assert_eq!(out.method, EstimateMethod::Inversion);
        assert_eq!(out.total_responses, 20_000);
        assert!(!out.drifted, "mse {}", out.mse_vs_prior);
        assert!(out.mse_vs_prior < service.config().drift_mse_threshold);
        assert!(!entry.is_stale());
        assert_eq!(
            entry.engine_runs(),
            1,
            "estimation never re-runs the engine"
        );
        // The posterior was recorded for future warm starts.
        assert!(entry.pipeline().unwrap().posterior().is_some());
        assert_eq!(entry.pipeline().unwrap().estimates(), 1);
    }

    #[test]
    fn drift_marks_stale_and_schedules_one_refresh() {
        let service = smoke_service();
        let entry = service.register(None, &PRIOR, 0.8, None, true).unwrap();
        assert_eq!(entry.engine_runs(), 1);
        // A pre-counted stream violently different from the prior: the
        // estimate lands far away and trips the drift threshold.
        service
            .ingest(&entry, Some(0.0), None, Some(&[10_000, 0, 0, 0]), None)
            .unwrap();
        let out = service.estimate(&entry).unwrap();
        assert!(out.drifted, "mse {}", out.mse_vs_prior);
        assert!(entry.is_stale() || entry.engine_runs() > 1);
        assert_eq!(entry.pipeline().unwrap().drift_events(), 1);
        service.wait_idle();
        // The scheduled refresh ran and cleared the staleness flag.
        assert_eq!(entry.engine_runs(), 2);
        assert!(!entry.is_stale());
    }

    #[test]
    fn singular_pinned_matrix_falls_back_to_the_warm_started_iterative_estimator() {
        let service = smoke_service();
        let entry = service.register(None, &PRIOR, 0.8, None, true).unwrap();
        // Pin a singular channel directly (two identical columns): the
        // inversion estimator must refuse it and the service must fall
        // back to the iterative estimator.
        let shared = linalg::Vector::from_vec(vec![0.4, 0.3, 0.2, 0.1]);
        let distinct = linalg::Vector::from_vec(vec![0.1, 0.1, 0.2, 0.6]);
        let singular =
            RrMatrix::from_columns(&[shared.clone(), shared, distinct.clone(), distinct]).unwrap();
        assert!(!singular.is_invertible());
        let evaluation = service.best_for_privacy(&entry, 0.0).unwrap().evaluation;
        entry.install_pipeline(
            KeyPipeline::new(singular, evaluation, 0.0, service.config().num_shards).unwrap(),
        );

        // Counts proportional to M·q for q = (0.4, 0.3, 0.2, 0.1): an
        // exactly explainable disguised distribution, so the EM fixed
        // point is interior and convergence is linear even though the
        // channel is singular.
        service
            .ingest(
                &entry,
                None,
                None,
                Some(&[3_100, 2_400, 2_000, 2_500]),
                None,
            )
            .unwrap();
        let first = service.estimate(&entry).unwrap();
        assert_eq!(first.method, EstimateMethod::Iterative);
        assert!(first.iterations > 0);
        assert!(first.residual <= service.config().iterative.tolerance);

        // A second estimate after one more batch warm-starts from the
        // stored posterior and converges in (weakly) fewer iterations.
        service
            .ingest(&entry, None, None, Some(&[310, 240, 200, 250]), None)
            .unwrap();
        let second = service.estimate(&entry).unwrap();
        assert_eq!(second.method, EstimateMethod::Iterative);
        assert!(
            second.iterations <= first.iterations,
            "warm {} vs cold {}",
            second.iterations,
            first.iterations
        );
    }

    #[test]
    fn estimate_all_sweeps_keys_with_data_and_skips_the_rest() {
        let service = smoke_service();
        let a = service
            .register(Some("a"), &PRIOR, 0.8, None, true)
            .unwrap();
        let _b = service
            .register(Some("b"), &PRIOR, 0.7, None, true)
            .unwrap();
        service
            .ingest(&a, Some(0.0), Some(&[0, 1, 2, 3, 0, 0]), None, Some(3))
            .unwrap();
        let (outcomes, skipped, failed) = service.estimate_all();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(skipped, 1);
        assert_eq!(failed, 0);
        assert_eq!(outcomes[0].key, a.key());
    }
}
