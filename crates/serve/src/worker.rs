//! A small fixed-size worker pool for refresh jobs.
//!
//! The service schedules engine runs (cold-key warm-ups, stale-key
//! refreshes, post-eviction re-warms) as jobs on this pool so the front
//! door stays responsive while optimizations execute in the background.
//! The pool is a classic shared-queue design: `workers` OS threads pop
//! boxed closures from one queue; `wait_idle` blocks until every submitted
//! job has finished, which is what the protocol's `Sync` request and the
//! deterministic tests use as a barrier. Which run a job performs — and
//! whether exactly one was scheduled — is decided by the per-key state
//! machine in [`crate::lifecycle`]; the pool itself is oblivious.

use obs::Counter;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Called (in place of the default stderr line) whenever a job's panic
/// escapes to the pool, so the owner can route it into its observability
/// hub instead of losing it in the log stream.
type PanicHook = Box<dyn Fn() + Send + Sync + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Jobs submitted but not yet finished (queued + running).
    pending: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or shutdown begins.
    work: Condvar,
    /// Signalled when `pending` drops to zero.
    idle: Condvar,
    /// Telemetry: jobs submitted / finished / panicked over the pool's
    /// lifetime. Recording-only (relaxed counters); the queue discipline
    /// above never reads them.
    jobs_submitted: Counter,
    jobs_executed: Counter,
    jobs_panicked: Counter,
    /// Optional owner-installed panic sink (see [`WorkerPool::set_panic_hook`]).
    panic_hook: Mutex<Option<PanicHook>>,
}

impl PoolShared {
    /// The queue state is a deque of boxed jobs plus two integers, and
    /// every mutation under the lock either fully happens or not at all —
    /// a thread that panicked while holding it cannot have left anything
    /// half-written. So a poisoned lock is recovered, not escalated:
    /// cascading one contained job panic into every later `submit` and
    /// `wait_idle` would turn an isolated fault into a service outage.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A fixed pool of worker threads executing submitted jobs.
///
/// Dropping the pool waits for all pending jobs, then joins the workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("pending", &self.pending())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with the given number of workers (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                pending: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            jobs_submitted: Counter::new(),
            jobs_executed: Counter::new(),
            jobs_panicked: Counter::new(),
            panic_hook: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("optrr-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.lock_state().pending
    }

    /// Installs the panic sink called whenever a job's panic escapes to
    /// the pool, replacing the default stderr line. The service routes
    /// this into [`crate::telemetry::ServeObs`]
    /// (`serve_worker_pool_panics_total`).
    pub fn set_panic_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self
            .shared
            .panic_hook
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Box::new(hook));
    }

    /// Enqueues a job for execution on some worker.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.lock_state();
        assert!(!state.shutdown, "submit after shutdown");
        state.queue.push_back(Box::new(job));
        state.pending += 1;
        drop(state);
        self.shared.jobs_submitted.inc();
        self.shared.work.notify_one();
    }

    /// Jobs submitted over the pool's lifetime.
    pub fn jobs_submitted(&self) -> u64 {
        self.shared.jobs_submitted.get()
    }

    /// Jobs that finished executing (panicked ones included).
    pub fn jobs_executed(&self) -> u64 {
        self.shared.jobs_executed.get()
    }

    /// Jobs whose closure panicked (the panic is contained; see
    /// `worker_loop`).
    pub fn jobs_panicked(&self) -> u64 {
        self.shared.jobs_panicked.get()
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut state = self.shared.lock_state();
        while state.pending > 0 {
            state = self
                .shared
                .idle
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock_state();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.lock_state();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // A panicking job must not wedge `wait_idle`, so the panic is
        // contained and the pending count still drops.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        shared.jobs_executed.inc();
        if outcome.is_err() {
            shared.jobs_panicked.inc();
            let hook = shared
                .panic_hook
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match hook.as_ref() {
                Some(hook) => hook(),
                None => eprintln!("optrr-serve: a worker job panicked; continuing"),
            }
        }
        let mut state = shared.lock_state();
        state.pending -= 1;
        if state.pending == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job_and_wait_idle_blocks_until_done() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.jobs_submitted(), 64);
        assert_eq!(pool.jobs_executed(), 64);
        assert_eq!(pool.jobs_panicked(), 0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let flag = Arc::new(AtomicUsize::new(0));
        let inner = Arc::clone(&flag);
        pool.submit(move || {
            inner.store(7, Ordering::SeqCst);
        });
        pool.wait_idle();
        assert_eq!(flag.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn panicking_job_does_not_wedge_the_pool() {
        let pool = WorkerPool::new(2);
        pool.submit(|| panic!("job panic"));
        let ok = Arc::new(AtomicUsize::new(0));
        let inner = Arc::clone(&ok);
        pool.submit(move || {
            inner.store(1, Ordering::SeqCst);
        });
        pool.wait_idle();
        assert_eq!(ok.load(Ordering::SeqCst), 1);
        assert_eq!(pool.jobs_executed(), 2);
        assert_eq!(pool.jobs_panicked(), 1);
    }

    #[test]
    fn drop_joins_after_draining() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.wait_idle();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }
}
