//! The per-key lifecycle engine: one state machine per registered tenant.
//!
//! Before this module, the per-key serving state was implicit and spread
//! across four files: the registry held a one-way warm latch and a boolean
//! staleness flag, the pipeline pinned its disguise channel on first
//! ingest, the refresh worker claimed run indices, and the service's call
//! sites had to cooperate to keep "exactly one scheduled refresh" true.
//! [`KeyLifecycle`] pulls all of it into one place and makes the
//! transitions explicit:
//!
//! ```text
//!            claim_warmup          finish_run(landed)
//!   Cold ───────────────▶ Warming ───────────────────▶ Warm
//!                            ▲                          │ ▲
//!               claim_rewarm │          try_mark_stale  │ │ finish_run(landed)
//!                            │                          ▼ │
//!   Evicted ◀─ try_evict ────┴─ Warm|Stale|Degraded  Stale(reason)
//!      │                                                │
//!      └◀─── try_evict ──── (idle only)    begin_run    ▼
//!                                           Refreshing(reason)
//!                                                       │
//!                     fail budget exhausted             ▼
//!   Warm ◀─── successful refresh ─────────── Degraded(reason)
//! ```
//!
//! `Degraded(reason)` is the graceful-degradation terminal of a failed
//! refresh episode: after the configured budget of consecutive refresh
//! failures, the key stops retrying and keeps answering from its
//! last-good warm Ω (responses carry a `degraded` flag) until a later
//! successful run restores `Warm`.
//!
//! Every transition is a compare-exchange on one packed atomic word, so
//! exactly-once claims (one warm-up per cold key, one scheduled refresh
//! per drift observation, one re-warm per evicted key) are properties of
//! the type rather than of call-site discipline. Waiting ("block until
//! this key can answer queries") is a condvar over the same word, which is
//! what replaced the old one-way latch: eviction can close the gate again,
//! and a re-warm reopens it.
//!
//! The struct also owns everything the state guards: the sharded warm-Ω
//! store, the pinned streaming pipeline (disguise channel, ingest
//! accumulators, posterior), the warm-start seed set, the deterministic
//! run counter, and the drift/coverage/eviction telemetry — plus the byte
//! accounting and LRU touch stamp the memory-budgeted registry evicts by.

use crate::pipeline::KeyPipeline;
use crate::shard::ShardedOmega;
use optrr::RunStatistics;
use rr::RrMatrix;
use stats::Categorical;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Why a key went stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaleReason {
    /// An explicit `Refresh` request.
    Manual,
    /// Estimation drift: the estimated distribution left the registered
    /// prior beyond the configured MSE threshold.
    Drift,
    /// Query-shape telemetry: repeated point queries landed in privacy
    /// ranges the warm store does not cover.
    Coverage,
}

impl StaleReason {
    fn encode(self) -> u8 {
        match self {
            StaleReason::Manual => 0,
            StaleReason::Drift => 1,
            StaleReason::Coverage => 2,
        }
    }

    fn decode(bits: u8) -> Self {
        match bits {
            0 => StaleReason::Manual,
            1 => StaleReason::Drift,
            _ => StaleReason::Coverage,
        }
    }
}

impl std::fmt::Display for StaleReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StaleReason::Manual => "manual",
            StaleReason::Drift => "drift",
            StaleReason::Coverage => "coverage",
        })
    }
}

/// The lifecycle state of one registered key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyState {
    /// Registered, no warm-up claimed yet.
    Cold,
    /// A warm-up (or re-warm after eviction) is claimed or executing; the
    /// store holds no queryable data yet and queries wait.
    Warming,
    /// Warm data is resident and fresh; queries answer immediately.
    Warm,
    /// Warm data is resident but a refresh is due for the given reason.
    /// Queries still answer from the current store.
    Stale(StaleReason),
    /// Warm data is resident and at least one refresh engine run is in
    /// flight for the given reason. Queries still answer.
    Refreshing(StaleReason),
    /// An eviction is in progress: the evictor won the claim and is
    /// snapshotting/dropping the resident state. Queries and queued runs
    /// wait for the (brief, bounded) transition to `Evicted` — this is
    /// what makes "snapshot, then drop" atomic to every observer.
    Evicting,
    /// The key's resident state was evicted. The next query claims a
    /// re-warm and waits for it.
    Evicted,
    /// The refresh fail budget was exhausted: the key's last refresh
    /// episode (for the given reason) failed repeatedly, automatic
    /// retries stopped, and the key serves its last-good warm Ω with a
    /// `degraded` flag until a later successful run restores `Warm`.
    Degraded(StaleReason),
}

impl KeyState {
    const COLD: u8 = 0;
    const WARMING: u8 = 1;
    const WARM: u8 = 2;
    const STALE: u8 = 3;
    const REFRESHING: u8 = 4;
    const EVICTING: u8 = 5;
    const EVICTED: u8 = 6;
    const DEGRADED: u8 = 7;

    fn encode(self) -> u8 {
        match self {
            KeyState::Cold => Self::COLD,
            KeyState::Warming => Self::WARMING,
            KeyState::Warm => Self::WARM,
            KeyState::Stale(r) => Self::STALE | (r.encode() << 4),
            KeyState::Refreshing(r) => Self::REFRESHING | (r.encode() << 4),
            KeyState::Evicting => Self::EVICTING,
            KeyState::Evicted => Self::EVICTED,
            KeyState::Degraded(r) => Self::DEGRADED | (r.encode() << 4),
        }
    }

    fn decode(bits: u8) -> Self {
        let reason = StaleReason::decode(bits >> 4);
        match bits & 0x0f {
            Self::COLD => KeyState::Cold,
            Self::WARMING => KeyState::Warming,
            Self::WARM => KeyState::Warm,
            Self::STALE => KeyState::Stale(reason),
            Self::REFRESHING => KeyState::Refreshing(reason),
            Self::EVICTING => KeyState::Evicting,
            Self::DEGRADED => KeyState::Degraded(reason),
            _ => KeyState::Evicted,
        }
    }

    /// Whether warm data is resident (the old "latch is open" predicate).
    /// Degraded keys keep their last-good warm store resident — that is
    /// the whole point of the state — so they answer queries too.
    pub fn has_warm_data(self) -> bool {
        matches!(
            self,
            KeyState::Warm | KeyState::Stale(_) | KeyState::Refreshing(_) | KeyState::Degraded(_)
        )
    }

    /// Whether the key is due (or already being refreshed) for a reason.
    /// A degraded key still owes a refresh — it just stopped retrying.
    pub fn is_stale(self) -> bool {
        matches!(
            self,
            KeyState::Stale(_) | KeyState::Refreshing(_) | KeyState::Degraded(_)
        )
    }

    /// Whether the key is serving degraded (last-good) data.
    pub fn is_degraded(self) -> bool {
        matches!(self, KeyState::Degraded(_))
    }

    /// The staleness reason, when one applies.
    pub fn stale_reason(self) -> Option<StaleReason> {
        match self {
            KeyState::Stale(r) | KeyState::Refreshing(r) | KeyState::Degraded(r) => Some(r),
            _ => None,
        }
    }
}

impl std::fmt::Display for KeyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyState::Cold => write!(f, "cold"),
            KeyState::Warming => write!(f, "warming"),
            KeyState::Warm => write!(f, "warm"),
            KeyState::Stale(r) => write!(f, "stale({r})"),
            KeyState::Refreshing(r) => write!(f, "refreshing({r})"),
            KeyState::Evicting => write!(f, "evicting"),
            KeyState::Evicted => write!(f, "evicted"),
            KeyState::Degraded(r) => write!(f, "degraded({r})"),
        }
    }
}

/// A recording-only callback observing every successful state transition
/// `(from, to)` of one key's [`StateCell`] — the hook the service's event
/// trace attaches at registration. The sink fires *after* the
/// compare-exchange lands, sees only the two states, and returns nothing,
/// so it can never influence a transition: lifecycles with and without a
/// sink behave bit-identically.
pub type TransitionSink = Arc<dyn Fn(KeyState, KeyState) + Send + Sync>;

/// The compare-exchange-guarded state cell: one packed atomic word plus a
/// condvar for waiters. All legal transitions are methods; anything else
/// simply fails the compare-exchange and returns `false`.
pub struct StateCell {
    bits: AtomicU8,
    /// Engine runs currently executing for this key (a refresh request may
    /// schedule several). The state leaves `Refreshing`/`Warming` only
    /// when this drops to zero.
    inflight: AtomicU64,
    gate: Mutex<()>,
    changed: Condvar,
    sink: Option<TransitionSink>,
}

impl std::fmt::Debug for StateCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateCell")
            .field("state", &self.state())
            .field("inflight", &self.inflight())
            .field("observed", &self.sink.is_some())
            .finish()
    }
}

impl Default for StateCell {
    fn default() -> Self {
        Self::new()
    }
}

impl StateCell {
    /// A fresh cell in [`KeyState::Cold`].
    pub fn new() -> Self {
        Self::with_sink(None)
    }

    /// A fresh cold cell whose successful transitions are reported to
    /// `sink` (see [`TransitionSink`]).
    pub fn with_sink(sink: Option<TransitionSink>) -> Self {
        Self {
            bits: AtomicU8::new(KeyState::Cold.encode()),
            inflight: AtomicU64::new(0),
            gate: Mutex::new(()),
            changed: Condvar::new(),
            sink,
        }
    }

    /// The current state.
    ///
    /// This load keeps acquire (SeqCst) semantics on purpose — unlike the
    /// pure-telemetry counters below, it guards data: a reader that
    /// observes `has_warm_data()` goes on to read the warm store and seed
    /// set the finishing run populated *before* its release CAS to `Warm`,
    /// so the load must synchronize-with that CAS.
    pub fn state(&self) -> KeyState {
        KeyState::decode(self.bits.load(Ordering::SeqCst))
    }

    /// Engine runs currently executing.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::SeqCst)
    }

    fn cas(&self, from: KeyState, to: KeyState) -> bool {
        let swapped = self
            .bits
            .compare_exchange(
                from.encode(),
                to.encode(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok();
        if swapped {
            // Sink before notify: a waiter woken by this transition may
            // immediately emit its own trace events, so the transition
            // must reach the trace first to keep the ring causally
            // ordered.
            if let Some(sink) = &self.sink {
                sink(from, to);
            }
            self.notify();
        }
        swapped
    }

    // The gate mutex guards no data — it only sequences the condvar with
    // the atomic state word — and every lock below recovers from
    // poisoning instead of panicking: a thread that panicked while
    // holding the gate cannot have left anything inconsistent behind (the
    // state itself lives in the atomic), so a poisoned gate is safe to
    // reuse and must not cascade the panic into every later waiter.
    fn gate_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        self.gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn notify(&self) {
        let _guard = self.gate_lock();
        self.changed.notify_all();
    }

    /// Claims the cold warm-up: `Cold → Warming`. Exactly one caller per
    /// key ever wins this claim.
    pub fn claim_warmup(&self) -> bool {
        self.cas(KeyState::Cold, KeyState::Warming)
    }

    /// Claims the re-warm of an evicted key: `Evicted → Warming`. Exactly
    /// one caller per eviction wins.
    pub fn claim_rewarm(&self) -> bool {
        self.cas(KeyState::Evicted, KeyState::Warming)
    }

    /// Marks the key stale: `Warm → Stale(reason)`. Fails (preserving the
    /// original reason) when the key is already stale, refreshing, or not
    /// yet warm — so the first observer of a drift episode is the only one
    /// that schedules work, and a manual refresh cannot demote a
    /// drift-stale key to `Manual`.
    pub fn try_mark_stale(&self, reason: StaleReason) -> bool {
        self.cas(KeyState::Warm, KeyState::Stale(reason))
    }

    /// A worker starts one engine run. Transitions `Warm`/`Stale` into
    /// `Refreshing` (keeping the reason), keeps `Warming`/`Refreshing`
    /// (a second concurrent run), and re-opens `Cold`/`Evicted` as
    /// `Warming` (a queued job that raced an eviction re-warms the key).
    /// A recovery run for a `Degraded` key keeps the state — the key must
    /// keep reporting degraded until the run actually lands. A run
    /// arriving mid-eviction waits for the (brief) `Evicting` →
    /// `Evicted` transition first, so it can never interleave with the
    /// evictor's snapshot-and-drop. Returns the state the run started
    /// from, which tells the worker whether this is a warm-up or a
    /// refresh and for which reason.
    pub fn begin_run(&self) -> KeyState {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        loop {
            let observed = self.state();
            let next = match observed {
                KeyState::Evicting => {
                    self.wait_while_evicting();
                    continue;
                }
                KeyState::Cold | KeyState::Warming | KeyState::Evicted => KeyState::Warming,
                KeyState::Warm => KeyState::Refreshing(StaleReason::Manual),
                KeyState::Stale(r) | KeyState::Refreshing(r) => KeyState::Refreshing(r),
                KeyState::Degraded(r) => KeyState::Degraded(r),
            };
            if observed == next || self.cas(observed, next) {
                return observed;
            }
        }
    }

    /// Blocks while an eviction is in progress. The evictor always
    /// resolves `Evicting` to `Evicted` in bounded time (a sidecar write
    /// plus a store clear), so this cannot wedge.
    fn wait_while_evicting(&self) {
        let mut guard = self.gate_lock();
        while self.state() == KeyState::Evicting {
            guard = self
                .changed
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// A worker finished one engine run. When the last in-flight run
    /// lands, `Warming`/`Refreshing` resolve to `Warm` on success;
    /// on failure a warm-up still resolves to `Warm` (the store is empty
    /// and queries answer `NoMatch` rather than wedging) while a refresh
    /// falls back to `Stale(reason)` so the debt stays visible.
    pub fn finish_run(&self, landed: bool) {
        self.finish_run_outcome(landed, false);
    }

    /// [`finish_run`] with an explicit degradation verdict: when the last
    /// in-flight run failed *and* the caller reports the refresh fail
    /// budget exhausted (`degrade`), a `Refreshing(r)` key resolves to
    /// `Degraded(r)` instead of `Stale(r)` — it keeps answering from the
    /// last-good store but stops being retried automatically. A landed
    /// run always restores `Warm`, including from `Degraded`.
    ///
    /// [`finish_run`]: StateCell::finish_run
    pub fn finish_run_outcome(&self, landed: bool, degrade: bool) {
        let before = self.inflight.fetch_sub(1, Ordering::SeqCst);
        assert!(before > 0, "finish_run without a matching begin_run");
        if before != 1 {
            return;
        }
        loop {
            let observed = self.state();
            let next = match observed {
                KeyState::Warming => KeyState::Warm,
                KeyState::Refreshing(r) => {
                    if landed {
                        KeyState::Warm
                    } else if degrade {
                        KeyState::Degraded(r)
                    } else {
                        KeyState::Stale(r)
                    }
                }
                // A recovery run restores Warm; a failed one keeps the
                // degraded verdict (the fail budget stays exhausted).
                KeyState::Degraded(r) => {
                    if landed {
                        KeyState::Warm
                    } else {
                        KeyState::Degraded(r)
                    }
                }
                // A concurrent begin_run already owns the state again, or
                // the key was never in a running state (illegal pairing
                // caught by the inflight assert above).
                other => other,
            };
            if observed == next || self.cas(observed, next) {
                return;
            }
        }
    }

    /// Claims the eviction of an idle key: `Warm | Stale | Degraded →
    /// Evicting`, only when no run is in flight. The winner snapshots and
    /// drops the resident state, then resolves the claim with
    /// [`finish_evict`]; queries, re-warm claims, and queued runs all
    /// wait out the `Evicting` window, so "snapshot, then drop" is
    /// atomic to every observer. `Warming`/`Refreshing` keys are never
    /// evicted (their runs are about to land bytes anyway), and
    /// `Cold`/`Evicted` keys have nothing to evict. Degraded keys *are*
    /// evictable: the deterministic re-warm replay is fault-free, so an
    /// eviction is actually a recovery path for them.
    ///
    /// [`finish_evict`]: StateCell::finish_evict
    pub fn try_evict(&self) -> bool {
        if self.inflight.load(Ordering::SeqCst) != 0 {
            return false;
        }
        loop {
            let observed = self.state();
            match observed {
                KeyState::Warm | KeyState::Stale(_) | KeyState::Degraded(_) => {
                    if self.cas(observed, KeyState::Evicting) {
                        return true;
                    }
                }
                _ => return false,
            }
        }
    }

    /// Resolves a won [`try_evict`] claim: `Evicting → Evicted`, waking
    /// everything that waited out the eviction window.
    ///
    /// [`try_evict`]: StateCell::try_evict
    pub fn finish_evict(&self) {
        let resolved = self.cas(KeyState::Evicting, KeyState::Evicted);
        assert!(resolved, "finish_evict without a won try_evict claim");
    }

    /// Opens a key directly as warm without an engine run — the snapshot
    /// restore path (`Cold | Warming | Evicted → Warm`). Returns `false`
    /// when warm data was already resident (or an eviction is mid-flight).
    pub fn open_warm(&self) -> bool {
        loop {
            let observed = self.state();
            match observed {
                KeyState::Cold | KeyState::Warming | KeyState::Evicted => {
                    if self.cas(observed, KeyState::Warm) {
                        return true;
                    }
                }
                _ => return false,
            }
        }
    }

    /// Restores a freshly created key directly into `Evicted` — the
    /// snapshot-load path for keys whose resident state was evicted
    /// before the snapshot was written (their next query re-warms them
    /// from the sidecar or by engine replay). `Cold → Evicted` only.
    pub fn restore_evicted(&self) -> bool {
        self.cas(KeyState::Cold, KeyState::Evicted)
    }

    /// Blocks while the key has no warm data *and* is not evicted: i.e.
    /// through `Cold`/`Warming`/`Evicting`. Returns the state observed on
    /// wake-up; callers loop, handling `Evicted` by claiming a re-warm.
    pub fn wait_while_warming(&self) -> KeyState {
        let mut guard = self.gate_lock();
        loop {
            let state = self.state();
            if !matches!(
                state,
                KeyState::Cold | KeyState::Warming | KeyState::Evicting
            ) {
                return state;
            }
            guard = self
                .changed
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// The unified per-key state: identity, state machine, and every resident
/// structure the machine guards. This is what the registry stores per
/// fingerprint (re-exported there as `KeyEntry` for continuity).
#[derive(Debug)]
pub struct KeyLifecycle {
    key: u64,
    prior: Categorical,
    delta: f64,
    num_slots: usize,
    state: StateCell,
    store: ShardedOmega,
    engine_runs: AtomicU64,
    queries: AtomicU64,
    warm_seeds: Mutex<Vec<RrMatrix>>,
    last_statistics: Mutex<Option<RunStatistics>>,
    pipeline: Mutex<Option<Arc<KeyPipeline>>>,
    /// Milliseconds (on the owning service's clock) of the last query,
    /// ingest, estimate, or registration touch — the LRU eviction order.
    last_touch_ms: AtomicU64,
    /// Point queries that found *nothing* satisfying their privacy floor —
    /// the query-shape staleness signal.
    coverage_misses: AtomicU64,
    drift_events: AtomicU64,
    evictions: AtomicU64,
    rewarms: AtomicU64,
    /// Total failed (errored or panicked) refresh runs over this key's
    /// lifetime.
    refresh_failures: AtomicU64,
    /// Total automatic retry attempts scheduled after refresh failures.
    retries: AtomicU64,
    /// Consecutive failures in the *current* refresh episode — compared
    /// against the service fail budget to decide degradation; reset by
    /// every landed run.
    failure_streak: AtomicU64,
}

// The per-key telemetry counters (queries, touch stamp, coverage misses,
// drift events, evictions, re-warms) are accessed with `Ordering::Relaxed`
// throughout: they guard nothing and order nothing — every exactly-once
// guarantee in this module (one scheduled refresh per coverage episode,
// one eviction claim, one re-warm) comes from a `StateCell` CAS, never
// from a counter value. The counters only need each increment to land,
// which `fetch_add` guarantees at any ordering. The exceptions that stay
// SeqCst: the `StateCell` word itself (see `StateCell::state`) and
// `engine_runs`, whose value seeds deterministic refresh runs.
impl KeyLifecycle {
    pub(crate) fn with_sink(
        key: u64,
        prior: Categorical,
        delta: f64,
        num_slots: usize,
        num_shards: usize,
        sink: Option<TransitionSink>,
    ) -> Self {
        Self {
            key,
            prior,
            delta,
            num_slots,
            state: StateCell::with_sink(sink),
            store: ShardedOmega::new(num_slots, num_shards),
            engine_runs: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            warm_seeds: Mutex::new(Vec::new()),
            last_statistics: Mutex::new(None),
            pipeline: Mutex::new(None),
            last_touch_ms: AtomicU64::new(0),
            coverage_misses: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rewarms: AtomicU64::new(0),
            refresh_failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failure_streak: AtomicU64::new(0),
        }
    }

    /// The canonical fingerprint this entry is registered under.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The prior distribution the matrices are optimized for.
    pub fn prior(&self) -> &Categorical {
        &self.prior
    }

    /// The privacy bound δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The Ω resolution.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The sharded warm store.
    pub fn store(&self) -> &ShardedOmega {
        &self.store
    }

    /// The state machine guarding every transition of this key.
    pub fn lifecycle(&self) -> &StateCell {
        &self.state
    }

    /// The current lifecycle state.
    pub fn state(&self) -> KeyState {
        self.state.state()
    }

    /// Whether warm data is resident (the old latch predicate: queries
    /// answer without waiting).
    pub fn is_warm(&self) -> bool {
        self.state().has_warm_data()
    }

    /// Whether the entry is marked stale or currently refreshing.
    pub fn is_stale(&self) -> bool {
        self.state().is_stale()
    }

    /// Number of engine-run indices claimed for this key. The run index
    /// doubles as the deterministic seed offset for that run, so the
    /// counter survives eviction: a re-warm replays indices `0..n` without
    /// claiming new ones, and the next refresh continues the sequence.
    pub fn engine_runs(&self) -> u64 {
        self.engine_runs.load(Ordering::SeqCst)
    }

    /// Claims the next run index (incrementing the run counter).
    pub fn claim_run_index(&self) -> u64 {
        self.engine_runs.fetch_add(1, Ordering::SeqCst)
    }

    /// Restores the run counter from a snapshot, so future refreshes
    /// continue the deterministic seed sequence instead of replaying run
    /// 0. Only meaningful on a freshly created entry.
    pub fn restore_engine_runs(&self, runs: u64) {
        self.engine_runs.store(runs, Ordering::SeqCst);
    }

    /// Rolls back a claimed run index after the run failed to land
    /// anything, so the automatic retry (or the next manual refresh)
    /// re-runs the *same* deterministic seed instead of burning it —
    /// this is what keeps a faulted-then-recovered key's warm store
    /// bitwise-equal to a never-faulted run. The roll-back is a
    /// compare-exchange: if a concurrent run already claimed a later
    /// index the burned index stays claimed (nothing landed under it, so
    /// determinism degrades to "replay also lands it on re-warm", which
    /// is still a superset of the reference front).
    pub fn unclaim_run_index(&self, index: u64) -> bool {
        self.engine_runs
            .compare_exchange(index + 1, index, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Number of point/front queries served from this entry.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Counts one served query.
    pub fn count_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    // The seed/stats/pipeline locks below recover from poisoning
    // (`unwrap_or_else(PoisonError::into_inner)`) instead of panicking:
    // every write under them is a whole-value replacement (`*guard = …`
    // or `guard.clear()`), never an in-place partial mutation, so a
    // thread that panicked mid-critical-section cannot have left a
    // half-updated value behind — the data is consistent and one
    // panicked refresh must not cascade panics into every later query.

    /// The warm-start seed set: the previous run's archive matrices.
    pub fn take_warm_seeds(&self) -> Vec<RrMatrix> {
        self.warm_seeds
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Replaces the warm-start seed set with a finished run's archive.
    pub fn put_warm_seeds(&self, seeds: Vec<RrMatrix>) {
        *self
            .warm_seeds
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = seeds;
    }

    /// The statistics of the most recent finished run, when any.
    pub fn last_statistics(&self) -> Option<RunStatistics> {
        self.last_statistics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Records a finished run's statistics.
    pub fn put_statistics(&self, statistics: RunStatistics) {
        *self
            .last_statistics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(statistics);
    }

    /// The streaming pipeline pinned to this key, when any batch has been
    /// ingested (or a first ingest is in flight).
    pub fn pipeline(&self) -> Option<Arc<KeyPipeline>> {
        self.pipeline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Installs a freshly built pipeline unless a concurrent first ingest
    /// already pinned one; returns whichever pipeline ended up pinned.
    pub fn install_pipeline(&self, pipeline: KeyPipeline) -> Arc<KeyPipeline> {
        let mut slot = self
            .pipeline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match slot.as_ref() {
            Some(existing) => Arc::clone(existing),
            None => {
                let installed = Arc::new(pipeline);
                *slot = Some(Arc::clone(&installed));
                installed
            }
        }
    }

    /// Stamps the LRU clock.
    pub fn touch(&self, now_ms: u64) {
        self.last_touch_ms.store(now_ms, Ordering::Relaxed);
    }

    /// Milliseconds of the last touch on the owning service's clock.
    pub fn last_touch_ms(&self) -> u64 {
        self.last_touch_ms.load(Ordering::Relaxed)
    }

    /// Counts one coverage miss (a point query no stored matrix could
    /// satisfy) and returns the new total. Relaxed is enough even for the
    /// threshold comparison built on this return value: `fetch_add` is
    /// atomic at any ordering, so every miss observes a distinct total,
    /// and the exactly-once refresh claim is the `try_mark_stale` CAS,
    /// not the count.
    pub fn count_coverage_miss(&self) -> u64 {
        self.coverage_misses.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Point queries that matched nothing in the current coverage
    /// episode (reset when a coverage-stale claim wins, so each episode
    /// schedules exactly one refresh instead of one per further miss).
    pub fn coverage_misses(&self) -> u64 {
        self.coverage_misses.load(Ordering::Relaxed)
    }

    /// Starts a new coverage episode (the miss count begins again).
    pub fn reset_coverage_misses(&self) {
        self.coverage_misses.store(0, Ordering::Relaxed);
    }

    /// Counts one drift event (an estimate beyond the MSE threshold).
    pub fn count_drift_event(&self) {
        self.drift_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Drift events observed for this key. Unlike the pinned pipeline's
    /// per-stream counter this one survives eviction, and snapshots
    /// persist it so `Stats` keeps the history across restarts.
    pub fn drift_events(&self) -> u64 {
        self.drift_events.load(Ordering::Relaxed)
    }

    /// Restores the drift-event history from a snapshot.
    pub fn restore_drift_events(&self, events: u64) {
        self.drift_events.store(events, Ordering::Relaxed);
    }

    /// Times this key's resident state was evicted.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Times this key was re-warmed after an eviction.
    pub fn rewarms(&self) -> u64 {
        self.rewarms.load(Ordering::Relaxed)
    }

    /// Counts one completed re-warm.
    pub fn count_rewarm(&self) {
        self.rewarms.fetch_add(1, Ordering::Relaxed);
    }

    /// Total failed (errored or panicked) refresh runs for this key.
    pub fn refresh_failures(&self) -> u64 {
        self.refresh_failures.load(Ordering::Relaxed)
    }

    /// Counts one failed refresh run and returns the *consecutive*
    /// failure count of the current episode (the value compared against
    /// the fail budget). The streak uses SeqCst: its value decides the
    /// Degraded transition, so racing failures must each observe a
    /// distinct total.
    pub fn count_refresh_failure(&self) -> u64 {
        self.refresh_failures.fetch_add(1, Ordering::Relaxed);
        self.failure_streak.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Ends the failure episode: a landed run clears the streak (the
    /// lifetime total stays).
    pub fn reset_failure_streak(&self) {
        self.failure_streak.store(0, Ordering::SeqCst);
    }

    /// Consecutive failures in the current refresh episode.
    pub fn failure_streak(&self) -> u64 {
        self.failure_streak.load(Ordering::SeqCst)
    }

    /// Total automatic retries scheduled for this key.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Counts one scheduled retry.
    pub fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Approximate resident heap bytes of this key: the sharded Ω, the
    /// warm-start seed set, and the pinned pipeline's accumulators. This
    /// is the quantity the service's memory budget bounds.
    pub fn resident_bytes(&self) -> u64 {
        let n = self.prior.num_categories() as u64;
        let seeds = self
            .warm_seeds
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len() as u64
            * (n * n * 8 + 64);
        let pipeline = self
            .pipeline()
            .map(|p| p.approx_bytes())
            .unwrap_or_default();
        self.store.approx_bytes() + seeds + pipeline
    }

    /// Drops every resident structure after a successful
    /// [`StateCell::try_evict`]: clears the Ω shards, the seed set, and
    /// the pinned pipeline, and counts the eviction. Returns the bytes
    /// freed. The run counter is deliberately kept — re-warm replays it.
    pub fn drop_resident_state(&self) -> u64 {
        let freed = self.resident_bytes();
        self.store.clear();
        self.warm_seeds
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        *self
            .pipeline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        self.evictions.fetch_add(1, Ordering::Relaxed);
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_claim_is_exactly_once_and_runs_land_warm() {
        let cell = StateCell::new();
        assert_eq!(cell.state(), KeyState::Cold);
        assert!(!cell.state().has_warm_data());
        assert!(cell.claim_warmup(), "first claim wins");
        assert!(!cell.claim_warmup(), "second claim must lose");
        assert_eq!(cell.state(), KeyState::Warming);

        assert_eq!(cell.begin_run(), KeyState::Warming);
        assert_eq!(cell.inflight(), 1);
        cell.finish_run(true);
        assert_eq!(cell.state(), KeyState::Warm);
        assert_eq!(cell.inflight(), 0);
        assert!(cell.state().has_warm_data());
    }

    #[test]
    fn failed_warmup_still_opens_the_key() {
        let cell = StateCell::new();
        cell.claim_warmup();
        cell.begin_run();
        cell.finish_run(false);
        // The old latch behavior: a failed cold run opens the key so
        // queries see an empty store instead of wedging.
        assert_eq!(cell.state(), KeyState::Warm);
        assert!(!cell.state().is_stale());
    }

    #[test]
    fn stale_claim_is_exactly_once_per_episode_and_keeps_its_reason() {
        let cell = StateCell::new();
        cell.claim_warmup();
        cell.begin_run();
        cell.finish_run(true);

        assert!(cell.try_mark_stale(StaleReason::Drift));
        assert!(
            !cell.try_mark_stale(StaleReason::Drift),
            "one refresh per drift episode"
        );
        // A later manual mark cannot demote the recorded reason.
        assert!(!cell.try_mark_stale(StaleReason::Manual));
        assert_eq!(cell.state(), KeyState::Stale(StaleReason::Drift));
        assert_eq!(cell.state().stale_reason(), Some(StaleReason::Drift));
        assert!(cell.state().is_stale());

        // The refresh run carries the reason through Refreshing and lands
        // Warm, after which a new episode can be claimed.
        assert_eq!(cell.begin_run(), KeyState::Stale(StaleReason::Drift));
        assert_eq!(cell.state(), KeyState::Refreshing(StaleReason::Drift));
        assert!(cell.state().is_stale(), "refreshing still reports stale");
        cell.finish_run(true);
        assert_eq!(cell.state(), KeyState::Warm);
        assert!(cell.try_mark_stale(StaleReason::Coverage));
    }

    #[test]
    fn failed_refresh_keeps_the_staleness_debt() {
        let cell = StateCell::new();
        cell.claim_warmup();
        cell.begin_run();
        cell.finish_run(true);
        cell.try_mark_stale(StaleReason::Coverage);
        cell.begin_run();
        cell.finish_run(false);
        assert_eq!(cell.state(), KeyState::Stale(StaleReason::Coverage));
    }

    #[test]
    fn concurrent_refresh_runs_resolve_when_the_last_lands() {
        let cell = StateCell::new();
        cell.claim_warmup();
        cell.begin_run();
        cell.finish_run(true);
        cell.try_mark_stale(StaleReason::Manual);
        cell.begin_run();
        cell.begin_run();
        assert_eq!(cell.inflight(), 2);
        cell.finish_run(true);
        assert_eq!(
            cell.state(),
            KeyState::Refreshing(StaleReason::Manual),
            "one run still in flight"
        );
        cell.finish_run(true);
        assert_eq!(cell.state(), KeyState::Warm);
    }

    #[test]
    fn eviction_requires_an_idle_resident_key() {
        let cell = StateCell::new();
        // Illegal: nothing resident to evict.
        assert!(!cell.try_evict(), "cold keys cannot be evicted");
        cell.claim_warmup();
        assert!(!cell.try_evict(), "warming keys cannot be evicted");
        cell.begin_run();
        cell.finish_run(true);
        cell.try_mark_stale(StaleReason::Manual);
        cell.begin_run();
        assert!(!cell.try_evict(), "in-flight runs block eviction");
        cell.finish_run(true);
        assert!(cell.try_evict());
        // The claim parks the key in Evicting until the evictor resolves
        // it; nothing else can claim, re-warm, or open it meanwhile.
        assert_eq!(cell.state(), KeyState::Evicting);
        assert!(!cell.try_evict(), "concurrent eviction claims must lose");
        assert!(!cell.claim_rewarm(), "re-warm waits out the eviction");
        assert!(!cell.open_warm(), "snapshot restore waits out the eviction");
        cell.finish_evict();
        assert_eq!(cell.state(), KeyState::Evicted);
        assert!(!cell.try_evict(), "double eviction is illegal");
        assert!(!cell.state().has_warm_data());

        // Exactly one re-warm claim wins, and the re-warm run lands Warm.
        assert!(cell.claim_rewarm());
        assert!(!cell.claim_rewarm());
        assert_eq!(cell.state(), KeyState::Warming);
        cell.begin_run();
        cell.finish_run(true);
        assert_eq!(cell.state(), KeyState::Warm);
    }

    #[test]
    fn illegal_claims_fail_without_corrupting_the_state() {
        let cell = StateCell::new();
        // Stale before warm: illegal.
        assert!(!cell.try_mark_stale(StaleReason::Drift));
        // Re-warm claim without an eviction: illegal.
        assert!(!cell.claim_rewarm());
        assert_eq!(cell.state(), KeyState::Cold);
        cell.claim_warmup();
        assert!(!cell.try_mark_stale(StaleReason::Drift), "warming ≠ warm");
        assert_eq!(cell.state(), KeyState::Warming);
    }

    #[test]
    #[should_panic(expected = "matching begin_run")]
    fn finish_without_begin_panics() {
        let cell = StateCell::new();
        cell.finish_run(true);
    }

    #[test]
    fn begin_run_reopens_an_evicted_key() {
        // A refresh job queued before an eviction begins afterwards: the
        // run re-warms the key instead of landing in a corrupt state.
        let cell = StateCell::new();
        cell.claim_warmup();
        cell.begin_run();
        cell.finish_run(true);
        assert!(cell.try_evict());
        cell.finish_evict();
        assert_eq!(cell.begin_run(), KeyState::Evicted);
        assert_eq!(cell.state(), KeyState::Warming);
        cell.finish_run(true);
        assert_eq!(cell.state(), KeyState::Warm);
    }

    #[test]
    fn open_warm_covers_the_snapshot_paths_only() {
        let restore = StateCell::new();
        assert!(restore.open_warm(), "cold snapshot load opens warm");
        assert!(!restore.open_warm(), "already warm");
        assert_eq!(restore.state(), KeyState::Warm);

        restore.try_mark_stale(StaleReason::Drift);
        assert!(!restore.open_warm(), "stale keys are not snapshot targets");
        assert_eq!(restore.state(), KeyState::Stale(StaleReason::Drift));

        // A key persisted *after* its eviction restores straight into
        // Evicted (its next query re-warms it); only cold keys qualify.
        let evicted = StateCell::new();
        assert!(evicted.restore_evicted());
        assert_eq!(evicted.state(), KeyState::Evicted);
        assert!(!evicted.restore_evicted());
        assert!(!restore.restore_evicted(), "only cold keys restore evicted");
    }

    #[test]
    fn waiters_release_on_warm_and_on_eviction() {
        let cell = Arc::new(StateCell::new());
        cell.claim_warmup();
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || cell.wait_while_warming())
            })
            .collect();
        cell.begin_run();
        cell.finish_run(true);
        for w in waiters {
            assert_eq!(w.join().unwrap(), KeyState::Warm);
        }
        // A waiter that observes Evicted returns it (the caller claims the
        // re-warm); it must not block forever. A waiter arriving during
        // the Evicting window is released when the eviction resolves.
        assert!(cell.try_evict());
        let waiter = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || cell.wait_while_warming())
        };
        cell.finish_evict();
        assert_eq!(waiter.join().unwrap(), KeyState::Evicted);
        assert_eq!(cell.wait_while_warming(), KeyState::Evicted);
    }

    #[test]
    fn transition_sink_sees_every_won_cas_and_no_lost_one() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink: TransitionSink = {
            let log = Arc::clone(&log);
            Arc::new(move |from, to| log.lock().unwrap().push((from, to)))
        };
        let cell = StateCell::with_sink(Some(sink));
        assert!(cell.claim_warmup());
        cell.begin_run();
        cell.finish_run(true);
        assert!(cell.try_mark_stale(StaleReason::Drift));
        assert!(
            !cell.try_mark_stale(StaleReason::Manual),
            "a lost claim emits nothing"
        );
        cell.begin_run();
        cell.finish_run(true);
        let seen = log.lock().unwrap().clone();
        assert_eq!(
            seen,
            vec![
                (KeyState::Cold, KeyState::Warming),
                (KeyState::Warming, KeyState::Warm),
                (KeyState::Warm, KeyState::Stale(StaleReason::Drift)),
                (
                    KeyState::Stale(StaleReason::Drift),
                    KeyState::Refreshing(StaleReason::Drift)
                ),
                (KeyState::Refreshing(StaleReason::Drift), KeyState::Warm),
            ]
        );
    }

    #[test]
    fn state_display_names_are_stable() {
        assert_eq!(KeyState::Cold.to_string(), "cold");
        assert_eq!(KeyState::Warming.to_string(), "warming");
        assert_eq!(KeyState::Warm.to_string(), "warm");
        assert_eq!(
            KeyState::Stale(StaleReason::Drift).to_string(),
            "stale(drift)"
        );
        assert_eq!(
            KeyState::Refreshing(StaleReason::Coverage).to_string(),
            "refreshing(coverage)"
        );
        assert_eq!(KeyState::Evicting.to_string(), "evicting");
        assert_eq!(KeyState::Evicted.to_string(), "evicted");
        assert_eq!(
            KeyState::Stale(StaleReason::Manual).to_string(),
            "stale(manual)"
        );
        assert_eq!(
            KeyState::Degraded(StaleReason::Manual).to_string(),
            "degraded(manual)"
        );
        assert_eq!(
            KeyState::Degraded(StaleReason::Drift).to_string(),
            "degraded(drift)"
        );
    }

    #[test]
    fn state_encoding_round_trips() {
        let states = [
            KeyState::Cold,
            KeyState::Warming,
            KeyState::Warm,
            KeyState::Stale(StaleReason::Manual),
            KeyState::Stale(StaleReason::Drift),
            KeyState::Stale(StaleReason::Coverage),
            KeyState::Refreshing(StaleReason::Manual),
            KeyState::Refreshing(StaleReason::Drift),
            KeyState::Refreshing(StaleReason::Coverage),
            KeyState::Evicting,
            KeyState::Evicted,
            KeyState::Degraded(StaleReason::Manual),
            KeyState::Degraded(StaleReason::Drift),
            KeyState::Degraded(StaleReason::Coverage),
        ];
        for state in states {
            assert_eq!(KeyState::decode(state.encode()), state);
        }
    }

    #[test]
    fn exhausted_fail_budget_degrades_and_a_landed_run_recovers() {
        let cell = StateCell::new();
        cell.claim_warmup();
        cell.begin_run();
        cell.finish_run(true);
        assert!(cell.try_mark_stale(StaleReason::Drift));

        // A failed refresh whose caller reports the budget exhausted
        // resolves to Degraded with the original reason.
        cell.begin_run();
        cell.finish_run_outcome(false, true);
        assert_eq!(cell.state(), KeyState::Degraded(StaleReason::Drift));
        assert!(cell.state().has_warm_data(), "degraded keys still answer");
        assert!(cell.state().is_stale(), "degraded keys still owe a refresh");
        assert!(cell.state().is_degraded());
        assert_eq!(cell.state().stale_reason(), Some(StaleReason::Drift));

        // Degraded keys cannot be re-marked stale (they are already past
        // stale), and a recovery run keeps the degraded verdict visible
        // while it is in flight.
        assert!(!cell.try_mark_stale(StaleReason::Manual));
        assert_eq!(cell.begin_run(), KeyState::Degraded(StaleReason::Drift));
        assert_eq!(cell.state(), KeyState::Degraded(StaleReason::Drift));

        // A failed recovery keeps the key degraded; a landed one restores
        // Warm and a fresh staleness episode can begin.
        cell.finish_run_outcome(false, true);
        assert_eq!(cell.state(), KeyState::Degraded(StaleReason::Drift));
        cell.begin_run();
        cell.finish_run(true);
        assert_eq!(cell.state(), KeyState::Warm);
        assert!(cell.try_mark_stale(StaleReason::Coverage));
    }

    #[test]
    fn degraded_keys_are_evictable_and_rewarm_like_any_other() {
        let cell = StateCell::new();
        cell.claim_warmup();
        cell.begin_run();
        cell.finish_run(true);
        cell.try_mark_stale(StaleReason::Manual);
        cell.begin_run();
        cell.finish_run_outcome(false, true);
        assert_eq!(cell.state(), KeyState::Degraded(StaleReason::Manual));

        // Eviction is a recovery path: the deterministic re-warm replay
        // does not go through the faulty refresh.
        assert!(cell.try_evict());
        cell.finish_evict();
        assert_eq!(cell.state(), KeyState::Evicted);
        assert!(cell.claim_rewarm());
        cell.begin_run();
        cell.finish_run(true);
        assert_eq!(cell.state(), KeyState::Warm);
    }

    #[test]
    fn failure_counters_track_streaks_and_run_indices_roll_back() {
        let prior = Categorical::new(vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let entry = KeyLifecycle::with_sink(9, prior, 0.8, 100, 4, None);
        assert_eq!(entry.refresh_failures(), 0);
        assert_eq!(entry.retries(), 0);
        assert_eq!(entry.count_refresh_failure(), 1);
        assert_eq!(entry.count_refresh_failure(), 2);
        entry.count_retry();
        assert_eq!(entry.refresh_failures(), 2);
        assert_eq!(entry.failure_streak(), 2);
        assert_eq!(entry.retries(), 1);
        entry.reset_failure_streak();
        assert_eq!(entry.failure_streak(), 0, "a landed run ends the episode");
        assert_eq!(entry.refresh_failures(), 2, "the lifetime total stays");

        // A failed run's claimed index rolls back so the retry re-runs
        // the same deterministic seed…
        assert_eq!(entry.claim_run_index(), 0);
        assert!(entry.unclaim_run_index(0));
        assert_eq!(entry.claim_run_index(), 0, "the retry reuses the index");
        // …but never once a later claim exists.
        assert_eq!(entry.claim_run_index(), 1);
        assert!(!entry.unclaim_run_index(0));
        assert_eq!(entry.engine_runs(), 2);
    }

    #[test]
    fn poisoned_gate_does_not_cascade_panics_into_waiters() {
        // Poison the gate mutex by panicking while holding it, then prove
        // every later lifecycle operation still works: the gate guards no
        // data (the state lives in the atomic word), so recovery is safe.
        let cell = Arc::new(StateCell::new());
        let poisoner = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let _guard = cell.gate.lock().unwrap();
                panic!("poison the state gate");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(cell.gate.is_poisoned());

        cell.claim_warmup();
        cell.begin_run();
        cell.finish_run(true);
        assert_eq!(cell.state(), KeyState::Warm);
        assert_eq!(cell.wait_while_warming(), KeyState::Warm);
    }

    #[test]
    fn lifecycle_owns_counters_and_drops_resident_state_on_eviction() {
        let prior = Categorical::new(vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let entry = KeyLifecycle::with_sink(7, prior, 0.8, 100, 4, None);
        assert_eq!(entry.key(), 7);
        assert_eq!(entry.state(), KeyState::Cold);
        assert_eq!(entry.resident_bytes(), entry.store().approx_bytes());

        // Land a fake warm-up: seeds + a stored matrix.
        entry.lifecycle().claim_warmup();
        entry.lifecycle().begin_run();
        let m = rr::schemes::warner(4, 0.7).unwrap();
        entry.store().offer(
            &m,
            &optrr::Evaluation {
                privacy: 0.4,
                mse: 1e-4,
                max_posterior: 0.7,
                feasible: true,
            },
        );
        entry.put_warm_seeds(vec![m]);
        assert_eq!(entry.claim_run_index(), 0);
        entry.lifecycle().finish_run(true);

        let resident = entry.resident_bytes();
        assert!(resident > entry.store().num_slots() as u64);
        entry.touch(42);
        assert_eq!(entry.last_touch_ms(), 42);
        assert_eq!(entry.count_coverage_miss(), 1);
        entry.count_drift_event();
        assert_eq!(entry.coverage_misses(), 1);
        assert_eq!(entry.drift_events(), 1);

        assert!(entry.lifecycle().try_evict());
        let freed = entry.drop_resident_state();
        entry.lifecycle().finish_evict();
        assert_eq!(freed, resident);
        assert!(entry.store().is_empty());
        assert!(entry.take_warm_seeds().is_empty());
        assert!(entry.pipeline().is_none());
        assert_eq!(entry.evictions(), 1);
        // The deterministic run counter survives for the re-warm replay.
        assert_eq!(entry.engine_runs(), 1);
    }
}
