//! Deterministic fault injection for chaos-testing the serve stack.
//!
//! A [`FaultPlan`] is parsed from the `OPTRR_SERVE_FAULTS` environment
//! variable (see the grammar below) and compiled into a [`FaultInjector`]
//! the service consults at its failure points: snapshot/sidecar reads and
//! writes, torn (truncated) writes, refresh-run panics, and worker
//! stalls. Every decision is a pure hash of `(plan seed, fault site,
//! caller context, sequence number)` — no wall clock, no OS RNG — so a
//! chaos run is reproducible bit-for-bit from its seed, and the refresh
//! sites (keyed by key fingerprint + run index) are deterministic even
//! under arbitrary worker-thread interleaving.
//!
//! When the variable is unset the service holds no injector at all
//! (`Option::None`), so the production hot path pays exactly one
//! already-predicted branch per site and the serving behavior is
//! byte-identical to a build without this module.
//!
//! ## Grammar
//!
//! ```text
//! OPTRR_SERVE_FAULTS=seed=7,refresh_panic=1,budget=3
//!
//!   seed=N           base seed for every deterministic draw   (default 0)
//!   snapshot_io=p    shorthand: read and write error rate     (default 0)
//!   snapshot_read=p  snapshot/sidecar read-error rate         (default 0)
//!   snapshot_write=p snapshot/sidecar write-error rate        (default 0)
//!   torn_write=p     rate of writes torn (truncated) mid-file (default 0)
//!   refresh_panic=p  rate of refresh runs that panic          (default 0)
//!   stall=p          rate of refresh runs that stall first    (default 0)
//!   stall_ms=N       stall duration in milliseconds           (default 10)
//!   conn_drop=p      rate of network requests whose client
//!                    connection is dropped mid-frame          (default 0)
//!   budget=N         total faults injected before the plan
//!                    goes quiet (unset = unbounded)
//! ```
//!
//! Rates are probabilities in `[0, 1]`. The budget is what lets a chaos
//! test assert convergence: once `budget` faults have fired, every later
//! operation is clean, so retries and recovery refreshes deterministically
//! succeed.

use std::sync::atomic::{AtomicU64, Ordering};

/// The parsed `OPTRR_SERVE_FAULTS` plan: per-site fault rates plus the
/// seed and budget that make an injection run reproducible and bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed folded into every deterministic draw.
    pub seed: u64,
    /// Probability a snapshot/sidecar read fails with an I/O error.
    pub snapshot_read: f64,
    /// Probability a snapshot/sidecar write fails before writing.
    pub snapshot_write: f64,
    /// Probability a snapshot/sidecar write is torn: a truncated prefix
    /// reaches the temporary file and the rename never happens.
    pub torn_write: f64,
    /// Probability a refresh engine run panics mid-run.
    pub refresh_panic: f64,
    /// Probability a refresh engine run stalls for [`stall_ms`] first.
    ///
    /// [`stall_ms`]: FaultPlan::stall_ms
    pub stall: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability a network session's client connection is dropped
    /// abruptly mid-frame, exercising the torn-frame cleanup path
    /// (`serve::net` consults this before handling each request).
    pub conn_drop: f64,
    /// Total faults injected before the plan goes quiet; `None` is
    /// unbounded.
    pub budget: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            snapshot_read: 0.0,
            snapshot_write: 0.0,
            torn_write: 0.0,
            refresh_panic: 0.0,
            stall: 0.0,
            stall_ms: 10,
            conn_drop: 0.0,
            budget: None,
        }
    }
}

impl FaultPlan {
    /// Parses the `OPTRR_SERVE_FAULTS` grammar (see the module docs).
    /// Unknown keys, non-numeric values, and rates outside `[0, 1]` are
    /// errors — a malformed plan must abort startup, not silently run a
    /// different chaos experiment.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault clause {part:?} is not key=value"))?;
            let rate = |what: &str, v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("{what} rate {v:?} is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{what} rate {v} is outside [0, 1]"));
                }
                Ok(p)
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("seed {value:?} is not an unsigned integer"))?;
                }
                "snapshot_io" => {
                    let p = rate("snapshot_io", value)?;
                    plan.snapshot_read = p;
                    plan.snapshot_write = p;
                }
                "snapshot_read" => plan.snapshot_read = rate("snapshot_read", value)?,
                "snapshot_write" => plan.snapshot_write = rate("snapshot_write", value)?,
                "torn_write" => plan.torn_write = rate("torn_write", value)?,
                "refresh_panic" => plan.refresh_panic = rate("refresh_panic", value)?,
                "stall" => plan.stall = rate("stall", value)?,
                "conn_drop" => plan.conn_drop = rate("conn_drop", value)?,
                "stall_ms" => {
                    plan.stall_ms = value
                        .parse()
                        .map_err(|_| format!("stall_ms {value:?} is not an unsigned integer"))?;
                }
                "budget" => {
                    plan.budget = Some(
                        value
                            .parse()
                            .map_err(|_| format!("budget {value:?} is not an unsigned integer"))?,
                    );
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Fault sites, folded into every draw so the same sequence number gives
/// independent verdicts per site.
#[derive(Debug, Clone, Copy)]
enum Site {
    SnapshotRead,
    SnapshotWrite,
    TornWrite,
    RefreshPanic,
    Stall,
    ConnDrop,
}

impl Site {
    fn salt(self) -> u64 {
        match self {
            Site::SnapshotRead => 0x01,
            Site::SnapshotWrite => 0x02,
            Site::TornWrite => 0x03,
            Site::RefreshPanic => 0x04,
            Site::Stall => 0x05,
            Site::ConnDrop => 0x06,
        }
    }
}

/// The live injector the service consults: a [`FaultPlan`] plus the
/// running fault budget and the per-path sequence counter for snapshot
/// sites.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Faults injected so far (compared against the plan budget).
    injected: AtomicU64,
    /// Sequence number for snapshot-site draws: refresh sites are keyed
    /// by `(key, run index)` and need no counter, but snapshot writes
    /// have no natural index, so each I/O operation advances this. It
    /// makes scripted (single-threaded) sessions deterministic; the
    /// chaos proptest drives faults through the refresh sites, which are
    /// deterministic under any interleaving.
    sequence: AtomicU64,
}

impl FaultInjector {
    /// Wraps a parsed plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            injected: AtomicU64::new(0),
            sequence: AtomicU64::new(0),
        }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// One deterministic draw in `[0, 1)`: FNV-1a over the seed, site
    /// salt, and caller context, finished with a splitmix64-style mix so
    /// consecutive contexts decorrelate.
    fn draw(&self, site: Site, ctx: u64, n: u64) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [self.plan.seed, site.salt(), ctx, n] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides one site: a positive verdict also spends one unit of the
    /// budget, and a spent budget silences the plan entirely — this is
    /// the "faults clear" guarantee chaos tests converge on.
    fn decide(&self, site: Site, ctx: u64, n: u64, p: f64) -> bool {
        if p <= 0.0 || self.draw(site, ctx, n) >= p {
            return false;
        }
        match self.plan.budget {
            None => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                true
            }
            Some(budget) => {
                // Reserve a budget unit; back out on overdraw so at most
                // `budget` faults ever fire.
                let reserved = self.injected.fetch_add(1, Ordering::SeqCst);
                if reserved < budget {
                    true
                } else {
                    self.injected.fetch_sub(1, Ordering::SeqCst);
                    false
                }
            }
        }
    }

    fn next_sequence(&self) -> u64 {
        self.sequence.fetch_add(1, Ordering::SeqCst)
    }

    /// Should the refresh run `run_index` of `key` panic?
    pub fn refresh_panic(&self, key: u64, run_index: u64) -> bool {
        self.decide(Site::RefreshPanic, key, run_index, self.plan.refresh_panic)
    }

    /// Should the refresh run `run_index` of `key` stall first — and for
    /// how long?
    pub fn stall(&self, key: u64, run_index: u64) -> Option<std::time::Duration> {
        self.decide(Site::Stall, key, run_index, self.plan.stall)
            .then(|| std::time::Duration::from_millis(self.plan.stall_ms))
    }

    /// Should request `request_index` of network connection `conn_id`
    /// have its client connection dropped mid-frame? Keyed by
    /// `(connection, request)` like the refresh sites are keyed by
    /// `(key, run)`, so scripted single-connection sessions draw a
    /// deterministic verdict per request regardless of thread timing.
    pub fn conn_drop(&self, conn_id: u64, request_index: u64) -> bool {
        self.decide(Site::ConnDrop, conn_id, request_index, self.plan.conn_drop)
    }

    /// Should this snapshot/sidecar read of `path` fail?
    pub fn snapshot_read_error(&self, path: &str) -> bool {
        self.decide(
            Site::SnapshotRead,
            fingerprint(path),
            self.next_sequence(),
            self.plan.snapshot_read,
        )
    }

    /// Should this snapshot/sidecar write of `path` fail outright
    /// (before writing a byte)?
    pub fn snapshot_write_error(&self, path: &str) -> bool {
        self.decide(
            Site::SnapshotWrite,
            fingerprint(path),
            self.next_sequence(),
            self.plan.snapshot_write,
        )
    }

    /// Should this write of `len` payload bytes to `path` be torn — and
    /// after how many bytes? A torn write leaves a truncated prefix in
    /// the temporary file and never renames it, simulating a crash
    /// mid-write.
    pub fn torn_write(&self, path: &str, len: usize) -> Option<usize> {
        let seq = self.next_sequence();
        if !self.decide(
            Site::TornWrite,
            fingerprint(path),
            seq,
            self.plan.torn_write,
        ) {
            return None;
        }
        // A second draw (different sequence axis: !seq) picks the tear
        // offset, so repeated torn writes tear at different byte counts.
        let cut = self.draw(Site::TornWrite, fingerprint(path), !seq);
        Some(((len as f64) * cut) as usize)
    }
}

/// FNV-1a over a string — the context hash for path-keyed fault draws,
/// and the checksum the crash-safe snapshot header carries (collision
/// resistance is not the threat model; torn and truncated files are).
pub(crate) fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parsing_covers_the_grammar_and_rejects_garbage() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        let plan =
            FaultPlan::parse("seed=7, refresh_panic=0.5, torn_write=1, stall_ms=3, budget=2")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.refresh_panic, 0.5);
        assert_eq!(plan.torn_write, 1.0);
        assert_eq!(plan.stall_ms, 3);
        assert_eq!(plan.budget, Some(2));

        let both = FaultPlan::parse("snapshot_io=0.25").unwrap();
        assert_eq!(both.snapshot_read, 0.25);
        assert_eq!(both.snapshot_write, 0.25);

        for bad in [
            "bogus=1",
            "refresh_panic",
            "refresh_panic=x",
            "refresh_panic=1.5",
            "refresh_panic=-0.1",
            "seed=abc",
            "budget=-1",
            "stall_ms=ten",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed_and_site() {
        let plan = FaultPlan::parse("seed=42,refresh_panic=0.5").unwrap();
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let verdicts =
            |inj: &FaultInjector| (0..64).map(|i| inj.refresh_panic(9, i)).collect::<Vec<_>>();
        assert_eq!(verdicts(&a), verdicts(&b), "same seed, same verdicts");
        assert!(verdicts(&a).iter().any(|&v| v), "p=0.5 fires sometimes");

        let other = FaultInjector::new(FaultPlan::parse("seed=43,refresh_panic=0.5").unwrap());
        assert_ne!(verdicts(&a), verdicts(&other), "different seed differs");
    }

    #[test]
    fn budget_bounds_total_injected_faults() {
        let inj = FaultInjector::new(FaultPlan::parse("refresh_panic=1,budget=3").unwrap());
        let fired = (0..100).filter(|&i| inj.refresh_panic(1, i)).count();
        assert_eq!(fired, 3, "exactly the budget fires, then the plan is quiet");
        assert_eq!(inj.injected(), 3);
        assert!(!inj.refresh_panic(2, 0), "still quiet on other keys");
    }

    #[test]
    fn zero_rates_never_fire_and_torn_writes_pick_an_offset() {
        let quiet = FaultInjector::new(FaultPlan::default());
        assert!(!quiet.refresh_panic(1, 0));
        assert!(!quiet.snapshot_read_error("x.json"));
        assert!(!quiet.snapshot_write_error("x.json"));
        assert!(quiet.torn_write("x.json", 100).is_none());
        assert!(quiet.stall(1, 0).is_none());

        let torn = FaultInjector::new(FaultPlan::parse("torn_write=1").unwrap());
        let cut = torn.torn_write("x.json", 1000).expect("p=1 always tears");
        assert!(cut < 1000, "the tear is a strict prefix");

        let stall = FaultInjector::new(FaultPlan::parse("stall=1,stall_ms=4").unwrap());
        assert_eq!(stall.stall(1, 0), Some(std::time::Duration::from_millis(4)));
    }

    #[test]
    fn conn_drop_site_is_deterministic_and_budgeted() {
        let plan = FaultPlan::parse("seed=9,conn_drop=0.5").unwrap();
        assert_eq!(plan.conn_drop, 0.5);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let verdicts =
            |inj: &FaultInjector| (0..64).map(|i| inj.conn_drop(3, i)).collect::<Vec<_>>();
        assert_eq!(verdicts(&a), verdicts(&b), "same seed, same drops");
        assert!(verdicts(&a).iter().any(|&v| v), "p=0.5 fires sometimes");
        assert!(verdicts(&a).iter().any(|&v| !v), "p=0.5 spares sometimes");

        // One budgeted drop, then the plan goes quiet — the shape the
        // disconnect-recovery test converges on.
        let once = FaultInjector::new(FaultPlan::parse("conn_drop=1,budget=1").unwrap());
        assert!(once.conn_drop(1, 0));
        assert!(!once.conn_drop(1, 1));
        assert!(!once.conn_drop(2, 0));

        let quiet = FaultInjector::new(FaultPlan::default());
        assert!(!quiet.conn_drop(1, 0), "default plan never drops");
    }
}
