//! Serve-side observability: one [`ServeObs`] per service instance.
//!
//! The [`obs`] crate supplies the mechanisms — lock-free counters and
//! histograms, a bounded [`TraceRing`] — and this module supplies the
//! serve-stack policy on top of them: the metric catalogue (every name
//! the `Metrics` verb can report), the typed [`ServeEvent`] schema the
//! trace records, and the adapters that hand recording hooks to the
//! subsystems that cannot depend on the service (the lifecycle's
//! [`TransitionSink`], the core optimizer's generation observer).
//!
//! Everything here is *recording only*. A [`ServeObs`] is consulted to
//! answer the `Metrics`/`Trace` protocol verbs and for nothing else; no
//! counter, histogram, or trace value feeds back into request handling.
//! That one-way discipline is what the observability-invisibility test
//! enforces end to end: a service with metrics on and a service with
//! metrics off produce bitwise-identical responses, Ω stores, and
//! posteriors.
//!
//! When constructed disabled, every recording entry point returns before
//! touching an atomic, so the disabled service pays one predictable
//! branch per instrumentation site.

use crate::lifecycle::{KeyState, TransitionSink};
use obs::{Clock, Counter, MetricsRegistry, MetricsSnapshot, TraceEntry, TraceRing};
use std::sync::Arc;

/// Default bound on the structured event trace (events, not bytes).
/// Overridable via `OPTRR_SERVE_TRACE_CAP`; 0 disables tracing while
/// keeping counters and histograms live.
pub const DEFAULT_TRACE_CAP: usize = 1024;

/// One structured event in the serve trace. Each variant carries the
/// key it concerns (when it concerns one) plus the numbers an operator
/// needs to reconstruct *why* the event fired — the trace is the
/// narrative companion to the counters.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// A per-key lifecycle transition that won its compare-exchange
    /// (lost claims emit nothing; see [`TransitionSink`]).
    Transition {
        /// Canonical fingerprint of the key.
        key: u64,
        /// State before the transition.
        from: KeyState,
        /// State after the transition.
        to: KeyState,
    },
    /// A refresh engine run finished on the worker pool.
    RefreshRun {
        /// Canonical fingerprint of the key.
        key: u64,
        /// The run's claim index (0 is the warm-up run).
        run_index: u64,
        /// Generations the engine actually executed.
        generations: u64,
        /// Objective evaluations performed.
        evaluations: u64,
        /// Pairwise fitness entries reused from the incremental kernel.
        pairs_reused: u64,
        /// Pairwise fitness entries computed fresh.
        pairs_computed: u64,
        /// Whether the run's Ω landed (`false` when the run failed).
        landed: bool,
    },
    /// One engine generation inside a refresh run, forwarded from the
    /// core optimizer's generation observer.
    Generation {
        /// Canonical fingerprint of the key.
        key: u64,
        /// Generation index within the run.
        generation: u64,
        /// Archive size after the generation.
        archive: u64,
        /// Cumulative objective evaluations after the generation.
        evaluations: u64,
        /// Whether the generation improved Ω.
        improved: bool,
    },
    /// An estimate drifted beyond the configured MSE threshold.
    Drift {
        /// Canonical fingerprint of the key.
        key: u64,
        /// The estimate's MSE against the registered prior.
        mse: f64,
    },
    /// Coverage misses crossed the re-optimization threshold.
    CoverageTrip {
        /// Canonical fingerprint of the key.
        key: u64,
        /// Misses accumulated when the threshold tripped.
        misses: u64,
    },
    /// A key's resident state was dropped by the memory budget or TTL.
    Evicted {
        /// Canonical fingerprint of the key.
        key: u64,
        /// Approximate bytes freed.
        bytes_freed: u64,
    },
    /// An evicted key was re-warmed back to serving.
    Rewarmed {
        /// Canonical fingerprint of the key.
        key: u64,
    },
    /// An ingest batch landed on a key's accumulator.
    Ingest {
        /// Canonical fingerprint of the key.
        key: u64,
        /// Responses accepted from the batch.
        accepted: u64,
        /// Total responses accumulated after the batch.
        total: u64,
    },
    /// A `ColumnSamplers` alias-table set was built for a key's pinned
    /// matrix. Ingest reuses the pipeline's cached set, so per key this
    /// fires once per pin/restore — the counter this feeds is how the
    /// sampler-cache test proves the O(n²) rebuild is amortized.
    SamplerRebuild {
        /// Canonical fingerprint of the key.
        key: u64,
    },
    /// A snapshot of the registry was persisted.
    SnapshotSaved {
        /// Keys written to the snapshot.
        keys: u64,
    },
    /// A snapshot was loaded into the registry.
    SnapshotLoaded {
        /// Keys newly created by the load.
        created: u64,
        /// Keys merged into existing entries.
        merged: u64,
    },
    /// A refresh engine run failed: the optimizer returned an error or
    /// the run panicked (the panic is contained and converted into this
    /// structured event).
    RefreshFailed {
        /// Canonical fingerprint of the key.
        key: u64,
        /// The run's claim index at the time of the failure.
        run_index: u64,
        /// Consecutive failures in the current episode (compared against
        /// the fail budget).
        streak: u64,
        /// What went wrong, one line.
        reason: String,
    },
    /// A failed refresh was rescheduled with exponential backoff.
    RefreshRetry {
        /// Canonical fingerprint of the key.
        key: u64,
        /// Retry attempt number within the episode (1 = first retry).
        attempt: u64,
        /// Backoff delay before the retry runs, in milliseconds.
        delay_ms: u64,
    },
    /// A key exhausted its refresh fail budget and entered `Degraded`:
    /// it keeps serving its last-good Ω with a `degraded` response flag
    /// until a later successful run restores `Warm`.
    Degraded {
        /// Canonical fingerprint of the key.
        key: u64,
        /// Consecutive failures that exhausted the budget.
        failures: u64,
    },
    /// A snapshot or sidecar file failed to load: I/O error, corrupt or
    /// torn content (checksum/length mismatch), or a shape mismatch. The
    /// caller falls back to deterministic replay — this event is what
    /// makes that fallback visible.
    SnapshotLoadFailed {
        /// Path of the file that failed to load.
        path: String,
        /// What went wrong, one line.
        reason: String,
    },
}

impl ServeEvent {
    /// A stable machine-readable tag for the variant.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeEvent::Transition { .. } => "transition",
            ServeEvent::RefreshRun { .. } => "refresh_run",
            ServeEvent::Generation { .. } => "generation",
            ServeEvent::Drift { .. } => "drift",
            ServeEvent::CoverageTrip { .. } => "coverage_trip",
            ServeEvent::Evicted { .. } => "evicted",
            ServeEvent::Rewarmed { .. } => "rewarmed",
            ServeEvent::Ingest { .. } => "ingest",
            ServeEvent::SamplerRebuild { .. } => "sampler_rebuild",
            ServeEvent::SnapshotSaved { .. } => "snapshot_saved",
            ServeEvent::SnapshotLoaded { .. } => "snapshot_loaded",
            ServeEvent::RefreshFailed { .. } => "refresh_failed",
            ServeEvent::RefreshRetry { .. } => "refresh_retry",
            ServeEvent::Degraded { .. } => "degraded",
            ServeEvent::SnapshotLoadFailed { .. } => "snapshot_load_failed",
        }
    }

    /// The key the event concerns, when it concerns one.
    pub fn key(&self) -> Option<u64> {
        match self {
            ServeEvent::Transition { key, .. }
            | ServeEvent::RefreshRun { key, .. }
            | ServeEvent::Generation { key, .. }
            | ServeEvent::Drift { key, .. }
            | ServeEvent::CoverageTrip { key, .. }
            | ServeEvent::Evicted { key, .. }
            | ServeEvent::Rewarmed { key }
            | ServeEvent::Ingest { key, .. }
            | ServeEvent::SamplerRebuild { key }
            | ServeEvent::RefreshFailed { key, .. }
            | ServeEvent::RefreshRetry { key, .. }
            | ServeEvent::Degraded { key, .. } => Some(*key),
            ServeEvent::SnapshotSaved { .. }
            | ServeEvent::SnapshotLoaded { .. }
            | ServeEvent::SnapshotLoadFailed { .. } => None,
        }
    }

    /// A one-line human-readable rendering of the payload (the `Trace`
    /// verb ships this beside the machine-readable `kind`/`key`).
    pub fn detail(&self) -> String {
        match self {
            ServeEvent::Transition { from, to, .. } => format!("{from} -> {to}"),
            ServeEvent::RefreshRun {
                run_index,
                generations,
                evaluations,
                pairs_reused,
                pairs_computed,
                landed,
                ..
            } => format!(
                "run {run_index}: {generations} generations, {evaluations} evaluations, \
                 {pairs_reused} pairs reused / {pairs_computed} computed, {}",
                if *landed { "landed" } else { "failed" }
            ),
            ServeEvent::Generation {
                generation,
                archive,
                evaluations,
                improved,
                ..
            } => format!(
                "generation {generation}: archive {archive}, {evaluations} evaluations{}",
                if *improved { ", omega improved" } else { "" }
            ),
            ServeEvent::Drift { mse, .. } => format!("estimate drifted, mse {mse:.6}"),
            ServeEvent::CoverageTrip { misses, .. } => {
                format!("coverage misses tripped at {misses}")
            }
            ServeEvent::Evicted { bytes_freed, .. } => {
                format!("evicted, ~{bytes_freed} bytes freed")
            }
            ServeEvent::Rewarmed { .. } => "re-warmed after eviction".to_string(),
            ServeEvent::Ingest {
                accepted, total, ..
            } => format!("batch of {accepted} accepted, {total} total"),
            ServeEvent::SamplerRebuild { .. } => "alias tables built for pinned matrix".to_string(),
            ServeEvent::SnapshotSaved { keys } => format!("{keys} keys saved"),
            ServeEvent::SnapshotLoaded { created, merged } => {
                format!("{created} keys created, {merged} merged")
            }
            ServeEvent::RefreshFailed {
                run_index,
                streak,
                reason,
                ..
            } => format!("run {run_index} failed (streak {streak}): {reason}"),
            ServeEvent::RefreshRetry {
                attempt, delay_ms, ..
            } => format!("retry {attempt} scheduled after {delay_ms} ms backoff"),
            ServeEvent::Degraded { failures, .. } => {
                format!("degraded after {failures} consecutive refresh failures")
            }
            ServeEvent::SnapshotLoadFailed { path, reason } => {
                format!("failed to load {path}: {reason}")
            }
        }
    }
}

/// Pre-resolved counter handles for every event-linked total the serve
/// stack maintains. Grouped so [`ServeObs::emit`] can bump the matching
/// total without a registry lookup.
#[derive(Debug)]
struct EventCounters {
    transitions: Arc<Counter>,
    refresh_runs: Arc<Counter>,
    generations: Arc<Counter>,
    drift_trips: Arc<Counter>,
    coverage_trips: Arc<Counter>,
    evictions: Arc<Counter>,
    rewarms: Arc<Counter>,
    ingest_batches: Arc<Counter>,
    ingest_records: Arc<Counter>,
    sampler_rebuilds: Arc<Counter>,
    snapshot_saves: Arc<Counter>,
    snapshot_loads: Arc<Counter>,
    refresh_failures: Arc<Counter>,
    refresh_retries: Arc<Counter>,
    degraded: Arc<Counter>,
    snapshot_load_failures: Arc<Counter>,
}

/// Pre-resolved handles for the network front door's totals
/// (`serve::net`): connection and byte counters are on the per-request
/// hot path, so they must not pay a registry lookup per event.
#[derive(Debug)]
struct NetCounters {
    conns: Arc<Counter>,
    conn_errors: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
}

/// The service's observability hub: a metric registry, the per-verb
/// latency histograms, and the bounded event trace, behind one enabled
/// flag and one injectable clock.
#[derive(Debug)]
pub struct ServeObs {
    enabled: bool,
    clock: Arc<dyn Clock>,
    registry: MetricsRegistry,
    trace: TraceRing<ServeEvent>,
    events: EventCounters,
    queries: Arc<Counter>,
    warm_hits: Arc<Counter>,
    coverage_misses: Arc<Counter>,
    net: NetCounters,
}

impl ServeObs {
    /// Builds the hub. `enabled = false` turns every recording entry
    /// point into a branch-and-return; `trace_cap = 0` disables the
    /// event trace while keeping counters and histograms live.
    pub fn new(enabled: bool, trace_cap: usize, clock: Arc<dyn Clock>) -> Self {
        let registry = MetricsRegistry::new();
        let events = EventCounters {
            transitions: registry.counter("serve_transitions_total"),
            refresh_runs: registry.counter("serve_refresh_runs_total"),
            generations: registry.counter("serve_engine_generations_total"),
            drift_trips: registry.counter("serve_drift_trips_total"),
            coverage_trips: registry.counter("serve_coverage_trips_total"),
            evictions: registry.counter("serve_evictions_total"),
            rewarms: registry.counter("serve_rewarms_total"),
            ingest_batches: registry.counter("serve_ingest_batches_total"),
            ingest_records: registry.counter("serve_ingest_records_total"),
            sampler_rebuilds: registry.counter("serve_sampler_rebuilds_total"),
            snapshot_saves: registry.counter("serve_snapshot_saves_total"),
            snapshot_loads: registry.counter("serve_snapshot_loads_total"),
            refresh_failures: registry.counter("serve_refresh_failures_total"),
            refresh_retries: registry.counter("serve_refresh_retries_total"),
            degraded: registry.counter("serve_degraded_total"),
            snapshot_load_failures: registry.counter("serve_snapshot_load_failures_total"),
        };
        let queries = registry.counter("serve_queries_total");
        let warm_hits = registry.counter("serve_warm_hits_total");
        let coverage_misses = registry.counter("serve_coverage_misses_total");
        let net = NetCounters {
            conns: registry.counter("serve_net_conns_total"),
            conn_errors: registry.counter("serve_net_conn_errors_total"),
            bytes_in: registry.counter("serve_net_bytes_in_total"),
            bytes_out: registry.counter("serve_net_bytes_out_total"),
        };
        Self {
            enabled,
            trace: TraceRing::new(if enabled { trace_cap } else { 0 }, Arc::clone(&clock)),
            clock,
            registry,
            events,
            queries,
            warm_hits,
            coverage_misses,
            net,
        }
    }

    /// Whether recording is on. The hot paths branch on this before
    /// touching any atomic.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The hub's clock (nanoseconds; injectable for deterministic
    /// traces under test).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The configured trace capacity (0 when tracing is off).
    pub fn trace_capacity(&self) -> usize {
        self.trace.capacity()
    }

    /// Records one structured event: bumps the variant's total and
    /// appends to the trace ring.
    pub fn emit(&self, event: ServeEvent) {
        if !self.enabled {
            return;
        }
        match &event {
            ServeEvent::Transition { .. } => self.events.transitions.inc(),
            ServeEvent::RefreshRun { .. } => self.events.refresh_runs.inc(),
            ServeEvent::Generation { .. } => self.events.generations.inc(),
            ServeEvent::Drift { .. } => self.events.drift_trips.inc(),
            ServeEvent::CoverageTrip { .. } => self.events.coverage_trips.inc(),
            ServeEvent::Evicted { .. } => self.events.evictions.inc(),
            ServeEvent::Rewarmed { .. } => self.events.rewarms.inc(),
            ServeEvent::Ingest { accepted, .. } => {
                self.events.ingest_batches.inc();
                self.events.ingest_records.add(*accepted);
            }
            ServeEvent::SamplerRebuild { .. } => self.events.sampler_rebuilds.inc(),
            ServeEvent::SnapshotSaved { .. } => self.events.snapshot_saves.inc(),
            ServeEvent::SnapshotLoaded { .. } => self.events.snapshot_loads.inc(),
            ServeEvent::RefreshFailed { .. } => self.events.refresh_failures.inc(),
            ServeEvent::RefreshRetry { .. } => self.events.refresh_retries.inc(),
            ServeEvent::Degraded { .. } => self.events.degraded.inc(),
            ServeEvent::SnapshotLoadFailed { .. } => self.events.snapshot_load_failures.inc(),
        }
        self.trace.push(event);
    }

    /// Counts one point query (the hottest instrumentation site: two
    /// relaxed increments, no trace event, no timestamp).
    pub fn count_query(&self, warm_hit: bool) {
        if !self.enabled {
            return;
        }
        self.queries.inc();
        if warm_hit {
            self.warm_hits.inc();
        }
    }

    /// Counts one coverage miss (threshold trips emit a
    /// [`ServeEvent::CoverageTrip`] separately).
    pub fn count_coverage_miss(&self) {
        if !self.enabled {
            return;
        }
        self.coverage_misses.inc();
    }

    /// Counts one job panic that escaped all the way to the worker pool
    /// (`serve_worker_pool_panics_total`). Refresh runs contain their own
    /// panics and report them as typed [`ServeEvent::RefreshFailed`]
    /// events with key and run context; a panic landing here came from a
    /// job with no key context left to attach.
    pub fn count_pool_panic(&self) {
        if !self.enabled {
            return;
        }
        self.registry
            .counter("serve_worker_pool_panics_total")
            .inc();
    }

    /// Records one handled protocol verb into its per-verb latency
    /// histogram (`serve_verb_<verb>_latency_ns`).
    pub fn record_verb(&self, verb: &str, nanos: u64) {
        if !self.enabled {
            return;
        }
        self.registry
            .histogram(&format!("serve_verb_{verb}_latency_ns"))
            .record(nanos);
    }

    /// Counts one accepted network connection
    /// (`serve_net_conns_total`).
    pub fn count_net_conn(&self) {
        if !self.enabled {
            return;
        }
        self.net.conns.inc();
    }

    /// Counts one network session that ended on a transport error — a
    /// torn frame, a failed checksum, an abrupt client disconnect
    /// (`serve_net_conn_errors_total`).
    pub fn count_net_conn_error(&self) {
        if !self.enabled {
            return;
        }
        self.net.conn_errors.inc();
    }

    /// Adds request bytes read off a network connection
    /// (`serve_net_bytes_in_total`).
    pub fn add_net_bytes_in(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.net.bytes_in.add(bytes);
    }

    /// Adds response bytes written to a network connection
    /// (`serve_net_bytes_out_total`).
    pub fn add_net_bytes_out(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.net.bytes_out.add(bytes);
    }

    /// Overwrites the `serve_connections_active` gauge. The net server
    /// tracks the live count in its own atomic (the gauge type is
    /// set-only) and mirrors it here on every open and close.
    pub fn set_connections_active(&self, count: u64) {
        if !self.enabled {
            return;
        }
        self.registry.gauge("serve_connections_active").set(count);
    }

    /// Records one network-handled verb into its per-codec latency
    /// histogram (`serve_net_verb_<verb>_<codec>_latency_ns`), beside
    /// the codec-agnostic [`ServeObs::record_verb`] histogram the
    /// session also feeds.
    pub fn record_net_verb(&self, verb: &str, codec: &str, nanos: u64) {
        if !self.enabled {
            return;
        }
        self.registry
            .histogram(&format!("serve_net_verb_{verb}_{codec}_latency_ns"))
            .record(nanos);
    }

    /// Overwrites a point-in-time gauge (registered keys, resident
    /// bytes, worker totals) — called when the `Metrics` verb reads out,
    /// not on the hot path.
    pub fn set_gauge(&self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        self.registry.gauge(name).set(value);
    }

    /// A per-key lifecycle sink for
    /// [`crate::registry::Registry::insert_or_get_observed`]: every won
    /// compare-exchange becomes a [`ServeEvent::Transition`]. `None`
    /// when recording is off, so disabled services attach no hook at
    /// all.
    pub fn transition_sink(self: &Arc<Self>, key: u64) -> Option<TransitionSink> {
        if !self.enabled {
            return None;
        }
        let hub = Arc::clone(self);
        Some(Arc::new(move |from, to| {
            hub.emit(ServeEvent::Transition { key, from, to });
        }))
    }

    /// A generation hook for the core optimizer: per-generation engine
    /// snapshots become [`ServeEvent::Generation`] trace events during
    /// refresh runs. `None` when recording is off, so disabled services
    /// run the engine with no observer attached.
    pub fn generation_observer(self: &Arc<Self>, key: u64) -> Option<optrr::GenerationObserver> {
        if !self.enabled {
            return None;
        }
        let hub = Arc::clone(self);
        Some(Arc::new(move |g: &optrr::GenerationObservation| {
            hub.emit(ServeEvent::Generation {
                key,
                generation: g.generation as u64,
                archive: g.archive_size as u64,
                evaluations: g.evaluations as u64,
                improved: g.omega_improved,
            });
        }))
    }

    /// A point-in-time copy of every counter, gauge, and histogram.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Prometheus-style text exposition of the same snapshot.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// The newest `limit` trace entries (all when `None`) plus how many
    /// older events the ring discarded.
    pub fn trace_snapshot(&self, limit: Option<usize>) -> (Vec<TraceEntry<ServeEvent>>, u64) {
        self.trace.snapshot(limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::StaleReason;
    use obs::ManualClock;

    fn hub(enabled: bool) -> Arc<ServeObs> {
        Arc::new(ServeObs::new(enabled, 8, Arc::new(ManualClock::new(0))))
    }

    #[test]
    fn emit_bumps_the_matching_total_and_traces() {
        let hub = hub(true);
        hub.emit(ServeEvent::Transition {
            key: 7,
            from: KeyState::Cold,
            to: KeyState::Warming,
        });
        hub.emit(ServeEvent::Ingest {
            key: 7,
            accepted: 5,
            total: 5,
        });
        hub.emit(ServeEvent::Drift { key: 7, mse: 0.25 });
        let snap = hub.metrics_snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} not registered"))
        };
        assert_eq!(counter("serve_transitions_total"), 1);
        assert_eq!(counter("serve_ingest_batches_total"), 1);
        assert_eq!(counter("serve_ingest_records_total"), 5);
        assert_eq!(counter("serve_drift_trips_total"), 1);
        let (entries, dropped) = hub.trace_snapshot(None);
        assert_eq!(dropped, 0);
        let kinds: Vec<&str> = entries.iter().map(|e| e.event.kind()).collect();
        assert_eq!(kinds, vec!["transition", "ingest", "drift"]);
        assert_eq!(entries[0].event.key(), Some(7));
        assert_eq!(entries[0].event.detail(), "cold -> warming");
    }

    #[test]
    fn disabled_hub_records_nothing_and_hands_out_no_hooks() {
        let hub = hub(false);
        hub.emit(ServeEvent::Rewarmed { key: 1 });
        hub.count_query(true);
        hub.count_coverage_miss();
        hub.record_verb("estimate", 125);
        hub.set_gauge("serve_registered_keys", 3);
        let snap = hub.metrics_snapshot();
        assert!(snap.counters.iter().all(|(_, v)| *v == 0));
        assert!(snap.histograms.is_empty());
        assert!(hub.trace_snapshot(None).0.is_empty());
        assert!(hub.transition_sink(1).is_none());
        assert!(hub.generation_observer(1).is_none());
        assert_eq!(hub.trace_capacity(), 0);
    }

    #[test]
    fn verb_histograms_register_per_verb_and_record() {
        let hub = hub(true);
        hub.record_verb("estimate", 100);
        hub.record_verb("estimate", 200);
        hub.record_verb("query", 50);
        let snap = hub.metrics_snapshot();
        let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "serve_verb_estimate_latency_ns",
                "serve_verb_query_latency_ns"
            ]
        );
        assert_eq!(snap.histograms[0].count, 2);
        assert_eq!(snap.histograms[1].count, 1);
    }

    #[test]
    fn transition_sink_and_observer_emit_keyed_events() {
        let hub = hub(true);
        let sink = hub.transition_sink(42).expect("sink when enabled");
        sink(KeyState::Warm, KeyState::Stale(StaleReason::Drift));
        let observer = hub.generation_observer(42).expect("observer when enabled");
        observer(&optrr::GenerationObservation {
            generation: 3,
            archive_size: 10,
            population_size: 20,
            evaluations: 60,
            omega_improved: true,
        });
        let (entries, _) = hub.trace_snapshot(None);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].event.kind(), "transition");
        assert_eq!(entries[0].event.key(), Some(42));
        assert_eq!(entries[1].event.kind(), "generation");
        assert!(entries[1].event.detail().contains("omega improved"));
    }

    #[test]
    fn every_event_kind_renders_a_detail_line() {
        let events = [
            ServeEvent::Transition {
                key: 1,
                from: KeyState::Cold,
                to: KeyState::Warming,
            },
            ServeEvent::RefreshRun {
                key: 1,
                run_index: 2,
                generations: 30,
                evaluations: 900,
                pairs_reused: 100,
                pairs_computed: 400,
                landed: true,
            },
            ServeEvent::Generation {
                key: 1,
                generation: 0,
                archive: 5,
                evaluations: 30,
                improved: false,
            },
            ServeEvent::Drift { key: 1, mse: 0.5 },
            ServeEvent::CoverageTrip { key: 1, misses: 8 },
            ServeEvent::Evicted {
                key: 1,
                bytes_freed: 1024,
            },
            ServeEvent::Rewarmed { key: 1 },
            ServeEvent::Ingest {
                key: 1,
                accepted: 3,
                total: 9,
            },
            ServeEvent::SamplerRebuild { key: 1 },
            ServeEvent::SnapshotSaved { keys: 2 },
            ServeEvent::SnapshotLoaded {
                created: 1,
                merged: 1,
            },
            ServeEvent::RefreshFailed {
                key: 1,
                run_index: 3,
                streak: 2,
                reason: "injected refresh panic".to_string(),
            },
            ServeEvent::RefreshRetry {
                key: 1,
                attempt: 2,
                delay_ms: 50,
            },
            ServeEvent::Degraded {
                key: 1,
                failures: 3,
            },
            ServeEvent::SnapshotLoadFailed {
                path: "snap.json".to_string(),
                reason: "checksum mismatch".to_string(),
            },
        ];
        for event in &events {
            assert!(!event.kind().is_empty());
            assert!(!event.detail().is_empty(), "{:?}", event);
        }
        assert_eq!(events[9].key(), None);
        assert_eq!(events[10].key(), None);
        assert_eq!(events[11].key(), Some(1), "failures carry the key");
        assert_eq!(events[14].key(), None, "load failures carry only a path");
    }

    #[test]
    fn net_counters_gauge_and_per_codec_histograms_record() {
        let hub = hub(true);
        hub.count_net_conn();
        hub.count_net_conn();
        hub.count_net_conn_error();
        hub.add_net_bytes_in(128);
        hub.add_net_bytes_out(512);
        hub.set_connections_active(2);
        hub.record_net_verb("ingest", "binary", 1_000);
        hub.record_net_verb("ingest", "json", 3_000);
        hub.record_net_verb("best_for_privacy", "binary", 500);
        let snap = hub.metrics_snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} not registered"))
        };
        assert_eq!(counter("serve_net_conns_total"), 2);
        assert_eq!(counter("serve_net_conn_errors_total"), 1);
        assert_eq!(counter("serve_net_bytes_in_total"), 128);
        assert_eq!(counter("serve_net_bytes_out_total"), 512);
        let gauge = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "serve_connections_active")
            .map(|(_, v)| *v);
        assert_eq!(gauge, Some(2));
        let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert!(names.contains(&"serve_net_verb_ingest_binary_latency_ns"));
        assert!(names.contains(&"serve_net_verb_ingest_json_latency_ns"));
        assert!(names.contains(&"serve_net_verb_best_for_privacy_binary_latency_ns"));

        // Disabled hubs record none of it.
        let quiet = hub_disabled();
        quiet.count_net_conn();
        quiet.add_net_bytes_in(1);
        quiet.set_connections_active(9);
        quiet.record_net_verb("ingest", "binary", 1);
        let snap = quiet.metrics_snapshot();
        assert!(snap.counters.iter().all(|(_, v)| *v == 0));
        assert!(snap
            .gauges
            .iter()
            .all(|(n, _)| n != "serve_connections_active"));
        assert!(snap.histograms.is_empty());
    }

    fn hub_disabled() -> Arc<ServeObs> {
        hub(false)
    }

    #[test]
    fn failure_events_bump_their_dedicated_counters() {
        let hub = hub(true);
        hub.emit(ServeEvent::RefreshFailed {
            key: 5,
            run_index: 1,
            streak: 1,
            reason: "optimizer error".to_string(),
        });
        hub.emit(ServeEvent::RefreshRetry {
            key: 5,
            attempt: 1,
            delay_ms: 25,
        });
        hub.emit(ServeEvent::Degraded {
            key: 5,
            failures: 3,
        });
        hub.emit(ServeEvent::SnapshotLoadFailed {
            path: "x.json".to_string(),
            reason: "torn".to_string(),
        });
        let snap = hub.metrics_snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} not registered"))
        };
        assert_eq!(counter("serve_refresh_failures_total"), 1);
        assert_eq!(counter("serve_refresh_retries_total"), 1);
        assert_eq!(counter("serve_degraded_total"), 1);
        assert_eq!(counter("serve_snapshot_load_failures_total"), 1);
        let (entries, _) = hub.trace_snapshot(None);
        let kinds: Vec<&str> = entries.iter().map(|e| e.event.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "refresh_failed",
                "refresh_retry",
                "degraded",
                "snapshot_load_failed"
            ]
        );
    }
}
