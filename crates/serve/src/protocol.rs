//! The framed JSON request/response protocol of the serving front door.
//!
//! Transport is line-oriented: one JSON-encoded [`Request`] per input line,
//! one JSON-encoded [`Response`] per output line, in order. The encoding is
//! serde's external tagging (unit variants are bare strings, struct
//! variants single-key objects), so a scripted session looks like:
//!
//! ```text
//! {"Register":{"name":"demo","prior":[0.4,0.3,0.2,0.1],"delta":0.8}}
//! {"BestForPrivacy":{"name":"demo","min_privacy":0.2}}
//! {"Front":{"name":"demo"}}
//! {"Stats":{}}
//! "Metrics"
//! {"Trace":{"limit":50}}
//! "Shutdown"
//! ```
//!
//! `Metrics` reads out every counter, gauge, and per-verb latency
//! histogram (p50/p90/p99 in nanoseconds) plus a Prometheus-style text
//! rendering; `Trace` returns the newest entries of the bounded
//! structured event trace (lifecycle transitions, refresh runs, drift
//! and coverage trips, evictions, ingest batches, snapshot I/O). Both
//! are pure readouts: issuing them never changes how later requests are
//! answered, and a service running metrics-off answers them with
//! `enabled: false` and empty payloads.
//!
//! Every request that addresses a registered problem accepts either the
//! canonical `key` fingerprint (returned by `Register`) or the `name`
//! alias supplied at registration, so sessions can be scripted without
//! knowing fingerprints in advance.
//!
//! Over the network front door ([`crate::net`]) the same request and
//! response model can also cross as `OPTRR-WIRE v1` binary frames
//! ([`crate::wire`]): a connection whose first byte is the binary
//! preamble `0xB1` exchanges length-prefixed CRC-checked frames instead
//! of JSON lines — e.g. `Estimate { key: Some(9) }` becomes the 15-byte
//! frame `0f 00 00 00 · 03 · 01 09 00 00 00 00 00 00 00 · 00 ·
//! 88 0a 04 b1` (length · tag · payload · CRC32) instead of the
//! 20-byte line `{"Estimate":{"key":9}}`. Hot-verb floats cross as raw
//! `f64` bits, so either codec delivers bitwise-identical requests to
//! the service.

use optrr::FrontPoint;
use rr::RrMatrix;
use serde::{Deserialize, Serialize};

/// A request line of the serving protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Register a prior under a privacy bound and warm its Ω. Blocks until
    /// warm unless `lazy` is set, in which case the warm-up is scheduled on
    /// the worker pool and queries will wait for it.
    Register {
        /// Optional human-readable alias for later requests.
        name: Option<String>,
        /// Category weights of the prior (normalized by the service).
        prior: Vec<f64>,
        /// Worst-case privacy bound δ in (0, 1].
        delta: f64,
        /// Ω resolution; the service default when omitted.
        slots: Option<usize>,
        /// Schedule the warm-up instead of waiting for it.
        lazy: Option<bool>,
    },
    /// Register many priors under one δ and warm them all in one parallel
    /// batch (the multi-prior batch front door).
    RegisterBatch {
        /// Optional aliases, positionally matched to `priors`.
        names: Option<Vec<String>>,
        /// One weight vector per prior.
        priors: Vec<Vec<f64>>,
        /// Worst-case privacy bound δ shared by the batch.
        delta: f64,
        /// Ω resolution; the service default when omitted.
        slots: Option<usize>,
    },
    /// The paper's Section III.C query: the best matrix with privacy ≥ p.
    BestForPrivacy {
        /// Canonical fingerprint from `Registered`.
        key: Option<u64>,
        /// Alias supplied at registration.
        name: Option<String>,
        /// The privacy floor p.
        min_privacy: f64,
    },
    /// The dual query: the best matrix with MSE ≤ m.
    BestForMse {
        /// Canonical fingerprint from `Registered`.
        key: Option<u64>,
        /// Alias supplied at registration.
        name: Option<String>,
        /// The utility budget m.
        max_mse: f64,
    },
    /// The full Pareto front held in the warm store.
    Front {
        /// Canonical fingerprint from `Registered`.
        key: Option<u64>,
        /// Alias supplied at registration.
        name: Option<String>,
    },
    /// Stream one batch of categorical responses into a key's pipeline.
    /// Exactly one of `records` (raw original values, disguised
    /// server-side through the matrix pinned for the key) or `counts`
    /// (pre-counted responses already disguised client-side) must be set.
    Ingest {
        /// Canonical fingerprint from `Registered`.
        key: Option<u64>,
        /// Alias supplied at registration.
        name: Option<String>,
        /// Privacy floor used to pin the disguise matrix at the key's
        /// first ingest (0 when omitted); ignored afterwards.
        min_privacy: Option<f64>,
        /// Raw original category indices, disguised server-side.
        records: Option<Vec<usize>>,
        /// Pre-counted disguised responses, one count per category.
        counts: Option<Vec<u64>>,
        /// Disguise RNG seed; defaults to a payload fingerprint so equal
        /// batches disguise identically regardless of stream interleaving.
        seed: Option<u64>,
    },
    /// Stateless one-shot disguise: returns the records pushed through
    /// the best warm matrix for the privacy floor, accumulating nothing.
    Disguise {
        /// Canonical fingerprint from `Registered`.
        key: Option<u64>,
        /// Alias supplied at registration.
        name: Option<String>,
        /// Privacy floor selecting the matrix.
        min_privacy: f64,
        /// Raw original category indices.
        records: Vec<usize>,
        /// Disguise RNG seed; payload-fingerprint default when omitted.
        seed: Option<u64>,
    },
    /// Reconstruct the original distribution from a key's accumulated
    /// responses (inversion, with automatic iterative fallback).
    Estimate {
        /// Canonical fingerprint from `Registered`.
        key: Option<u64>,
        /// Alias supplied at registration.
        name: Option<String>,
    },
    /// Reconstruct the distribution of every key with accumulated
    /// responses, in ascending key order.
    EstimateAll,
    /// Snapshot every key's warm Ω (plus registration metadata) to a file
    /// so a restarted server can skip warm-up.
    Save {
        /// Path of the snapshot file to write.
        path: String,
    },
    /// Load a snapshot file, creating missing keys warm and merging into
    /// existing ones.
    Load {
        /// Path of the snapshot file to read.
        path: String,
    },
    /// Evict a key's resident state (Ω matrices, warm-start seeds, pinned
    /// pipeline) if it is idle. The key stays registered and re-warms
    /// transparently on its next query — from its eviction sidecar when
    /// persistence is configured, by deterministic engine replay
    /// otherwise.
    Evict {
        /// Canonical fingerprint from `Registered`.
        key: Option<u64>,
        /// Alias supplied at registration.
        name: Option<String>,
    },
    /// Mark a key stale and schedule refresh runs on the worker pool.
    Refresh {
        /// Canonical fingerprint from `Registered`.
        key: Option<u64>,
        /// Alias supplied at registration.
        name: Option<String>,
        /// Number of engine runs to schedule (default 1, capped).
        runs: Option<usize>,
    },
    /// Wait until all scheduled refresh runs have finished.
    Sync,
    /// Per-key statistics (with `key`/`name`) or service-wide statistics.
    Stats {
        /// Canonical fingerprint from `Registered`.
        key: Option<u64>,
        /// Alias supplied at registration.
        name: Option<String>,
    },
    /// Point-in-time metrics readout: every counter and gauge, plus
    /// per-verb latency histograms (p50/p90/p99 in nanoseconds) and a
    /// Prometheus-style text rendering. Example line: `"Metrics"`.
    /// Answers with zeroed payloads when the service runs metrics-off.
    Metrics,
    /// The newest entries of the structured event trace (lifecycle
    /// transitions, refresh runs, drift and coverage trips, evictions,
    /// ingest batches, snapshot I/O). Example lines: `"Trace"` reads the
    /// whole ring, `{"Trace":{"limit":50}}` the newest 50 events.
    Trace {
        /// Cap on returned events (whole ring when omitted).
        limit: Option<usize>,
    },
    /// End the session.
    Shutdown,
}

impl Request {
    /// The verb's stable lowercase name — the label of its per-verb
    /// latency histogram (`serve_verb_<verb>_latency_ns`).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::RegisterBatch { .. } => "register_batch",
            Request::BestForPrivacy { .. } => "best_for_privacy",
            Request::BestForMse { .. } => "best_for_mse",
            Request::Front { .. } => "front",
            Request::Ingest { .. } => "ingest",
            Request::Disguise { .. } => "disguise",
            Request::Estimate { .. } => "estimate",
            Request::EstimateAll => "estimate_all",
            Request::Save { .. } => "save",
            Request::Load { .. } => "load",
            Request::Evict { .. } => "evict",
            Request::Refresh { .. } => "refresh",
            Request::Sync => "sync",
            Request::Stats { .. } => "stats",
            Request::Metrics => "metrics",
            Request::Trace { .. } => "trace",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A disguise matrix in transport form: column-major, one randomization
/// distribution per original category, matching the paper's
/// column-stochastic convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixDto {
    /// Number of categories `n`.
    pub num_categories: usize,
    /// `columns[i][j] = P[report c_j | true value c_i]`.
    pub columns: Vec<Vec<f64>>,
}

impl MatrixDto {
    /// Encodes a validated RR matrix.
    pub fn from_matrix(matrix: &RrMatrix) -> Self {
        let n = matrix.num_categories();
        let columns = (0..n)
            .map(|input| (0..n).map(|output| matrix.theta(output, input)).collect())
            .collect();
        Self {
            num_categories: n,
            columns,
        }
    }

    /// Decodes back into a validated RR matrix.
    pub fn to_matrix(&self) -> Result<RrMatrix, rr::RrError> {
        let columns: Vec<linalg::Vector> = self
            .columns
            .iter()
            .map(|c| linalg::Vector::from_vec(c.clone()))
            .collect();
        RrMatrix::from_columns(&columns)
    }
}

/// Per-key statistics reported by `Stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyStatsDto {
    /// Canonical fingerprint.
    pub key: u64,
    /// Whether warm data is resident (queries answer without waiting).
    pub warm: bool,
    /// Whether the key is marked stale.
    pub stale: bool,
    /// Filled Ω slots.
    pub filled_slots: usize,
    /// Ω resolution.
    pub num_slots: usize,
    /// Engine runs started for this key.
    pub engine_runs: u64,
    /// Queries served from this key's warm store.
    pub queries: u64,
    /// The lifecycle state, e.g. `"warm"`, `"stale(drift)"`,
    /// `"refreshing(coverage)"`, `"evicted"`.
    pub state: String,
    /// Approximate resident bytes (Ω matrices + warm-start seeds + ingest
    /// accumulators) this key holds.
    pub resident_bytes: u64,
    /// Estimates that exceeded the drift threshold.
    pub drift_events: u64,
    /// Point queries that matched no stored matrix (the query-shape
    /// staleness signal).
    pub coverage_misses: u64,
    /// Times this key's resident state was evicted.
    pub evictions: u64,
    /// Times this key was re-warmed after an eviction.
    pub rewarms: u64,
    /// Lowest privacy currently covered, when any slot is filled.
    pub privacy_lo: Option<f64>,
    /// Highest privacy currently covered, when any slot is filled.
    pub privacy_hi: Option<f64>,
    /// Pairwise fitness-kernel entries the most recent refresh run reused
    /// across generations (comparisons saved), 0 before the first run
    /// completes in this process.
    pub fitness_pairs_reused: u64,
    /// Pairwise fitness-kernel entries the most recent refresh run
    /// computed fresh.
    pub fitness_pairs_computed: u64,
    /// Failed (errored or panicked) refresh runs over this key's
    /// lifetime.
    pub refresh_failures: u64,
    /// Automatic backoff retries scheduled after refresh failures.
    pub retries: u64,
    /// Whether the key is currently serving degraded (last-good) data
    /// because its refresh fail budget was exhausted.
    pub degraded: bool,
}

/// One estimate reported by `Estimate`/`EstimateAll`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateDto {
    /// The key that was estimated.
    pub key: u64,
    /// `"inversion"` or `"iterative"`.
    pub method: String,
    /// The reconstructed original distribution.
    pub distribution: Vec<f64>,
    /// Iterations the iterative estimator performed (0 for inversion).
    pub iterations: u64,
    /// Convergence residual of the iterative estimator (0 for inversion).
    pub residual: f64,
    /// MSE between the reconstruction and the registered prior (the
    /// drift signal).
    pub mse_vs_prior: f64,
    /// Total responses the estimate is based on.
    pub total_responses: u64,
    /// Batches the estimate is based on.
    pub batches: u64,
    /// Whether the estimate exceeded the drift threshold.
    pub drifted: bool,
    /// Whether the key is marked stale after this estimate.
    pub stale: bool,
    /// Whether the key was serving degraded (last-good) data when this
    /// estimate was computed.
    pub degraded: bool,
}

/// One named counter or gauge value reported by `Metrics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricValueDto {
    /// Registered metric name (e.g. `serve_queries_total`).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One latency histogram reported by `Metrics`. Quantiles are the upper
/// bound of the log₂ bucket containing the rank, in nanoseconds, so they
/// never understate the true latency by more than one bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramDto {
    /// Registered histogram name (e.g. `serve_verb_estimate_latency_ns`).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
}

/// One structured event reported by `Trace`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEventDto {
    /// Position in the global event order (0-based, never reused — gaps
    /// relative to `dropped` show what the ring discarded).
    pub seq: u64,
    /// Nanoseconds on the service's trace clock at record time.
    pub at_ns: u64,
    /// Event kind tag (`transition`, `refresh_run`, `drift`, ...).
    pub kind: String,
    /// The key the event concerns, when it concerns one.
    pub key: Option<u64>,
    /// One-line human-readable payload rendering.
    pub detail: String,
}

/// A response line of the serving protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A single registration finished (or was already present).
    Registered {
        /// Canonical fingerprint to use in later requests.
        key: u64,
        /// Whether the warm store is ready.
        warm: bool,
        /// Filled Ω slots at response time.
        filled_slots: usize,
        /// Engine runs started for this key so far.
        engine_runs: u64,
    },
    /// A batch registration finished.
    RegisteredBatch {
        /// Canonical fingerprints, in input order.
        keys: Vec<u64>,
        /// How many of them required a fresh engine run.
        warmed: usize,
    },
    /// A point query matched a stored matrix.
    Matrix {
        /// The key that answered.
        key: u64,
        /// Privacy of the stored matrix.
        privacy: f64,
        /// MSE of the stored matrix.
        mse: f64,
        /// Worst-case posterior of the stored matrix.
        max_posterior: f64,
        /// The disguise matrix itself.
        matrix: MatrixDto,
        /// Whether the answer came from a degraded (last-good) store —
        /// the key's refresh fail budget is exhausted and the matrix may
        /// be older than the configured refresh policy intends.
        degraded: bool,
    },
    /// A point query matched nothing in the warm store.
    NoMatch {
        /// The key that was queried.
        key: u64,
        /// Why nothing qualified.
        reason: String,
        /// Whether the (empty-handed) answer came from a degraded store.
        degraded: bool,
    },
    /// The warm store's current Pareto front.
    Front {
        /// The key that answered.
        key: u64,
        /// Non-dominated (privacy, MSE) points in increasing privacy order.
        points: Vec<FrontPoint>,
        /// Whether the front came from a degraded (last-good) store.
        degraded: bool,
    },
    /// An ingest batch landed.
    Ingested {
        /// The key the batch landed on.
        key: u64,
        /// Responses accepted from this batch.
        accepted: u64,
        /// Accepted raw responses that kept their original value through
        /// the disguise (0 for pre-counted batches).
        retained: u64,
        /// Total responses accumulated for the key so far.
        total: u64,
        /// Total batches accumulated for the key so far.
        batches: u64,
        /// Privacy of the pinned disguise matrix.
        privacy: f64,
    },
    /// A one-shot disguise finished.
    Disguised {
        /// The key whose matrix disguised the records.
        key: u64,
        /// Privacy of the selected matrix.
        privacy: f64,
        /// Closed-form MSE of the selected matrix.
        mse: f64,
        /// Records that kept their original value.
        retained: u64,
        /// The disguised records, in input order.
        records: Vec<usize>,
    },
    /// An estimate finished.
    Estimated {
        /// The estimate payload.
        stats: EstimateDto,
    },
    /// A sweep over every key with accumulated responses finished.
    EstimatedAll {
        /// One estimate per key with data, in ascending key order.
        estimates: Vec<EstimateDto>,
        /// Registered keys skipped for having no responses.
        skipped: usize,
        /// Keys with data whose estimate failed (broken channel).
        failed: usize,
    },
    /// A snapshot was written.
    Saved {
        /// Path of the snapshot file.
        path: String,
        /// Keys the snapshot holds.
        keys: usize,
    },
    /// A snapshot was loaded.
    Loaded {
        /// Path of the snapshot file.
        path: String,
        /// Keys created warm from the snapshot.
        created: usize,
        /// Keys that already existed and absorbed the snapshot's Ω.
        merged: usize,
    },
    /// An eviction request was handled.
    Evicted {
        /// The key that was addressed.
        key: u64,
        /// Whether the resident state was actually dropped (`false` when
        /// the key was cold, warming, already evicted, or had a run in
        /// flight).
        evicted: bool,
        /// Approximate bytes freed (0 when nothing was evicted).
        bytes_freed: u64,
    },
    /// Refresh runs were scheduled.
    Scheduled {
        /// The key being refreshed.
        key: u64,
        /// Number of runs scheduled.
        runs: usize,
    },
    /// All scheduled work has finished.
    Synced,
    /// Per-key statistics.
    KeyStats {
        /// The statistics payload.
        stats: KeyStatsDto,
    },
    /// Service-wide statistics.
    ServiceStats {
        /// Registered keys.
        keys: usize,
        /// Engine runs started across all keys.
        engine_runs: u64,
        /// Point/front queries served.
        queries: u64,
        /// Queries answered from an already-warm store.
        warm_hits: u64,
        /// Approximate resident bytes across all keys.
        resident_bytes: u64,
        /// The configured memory budget, when one is set.
        budget_bytes: Option<u64>,
        /// Evictions performed since start (budget, TTL, and manual).
        evictions: u64,
        /// Failed (errored or panicked) refresh runs across all keys.
        refresh_failures: u64,
        /// Automatic backoff retries scheduled across all keys.
        retries: u64,
        /// Keys currently serving degraded (last-good) data.
        degraded: usize,
    },
    /// Point-in-time metrics readout.
    Metrics {
        /// Whether the service records metrics at all (`false` means the
        /// payloads below are empty, not zero-valued).
        enabled: bool,
        /// Every registered counter, name-sorted.
        counters: Vec<MetricValueDto>,
        /// Every registered gauge, name-sorted.
        gauges: Vec<MetricValueDto>,
        /// Every registered latency histogram, name-sorted.
        histograms: Vec<HistogramDto>,
        /// The same snapshot as Prometheus-style exposition text.
        prometheus: String,
    },
    /// The newest structured trace events.
    Trace {
        /// Whether the service records a trace at all.
        enabled: bool,
        /// Events the bounded ring discarded before this readout.
        dropped: u64,
        /// The newest events, oldest first.
        events: Vec<TraceEventDto>,
    },
    /// The request could not be served.
    Error {
        /// Explanation.
        reason: String,
        /// Stable machine-readable error code (see [`crate::service::ServeError`]):
        /// `invalid_request`, `optimizer`, `snapshot_io`,
        /// `snapshot_corrupt`, or `transport`.
        code: String,
    },
    /// Session end acknowledgement.
    Bye,
}

/// Encodes a request as one protocol line (no trailing newline).
pub fn encode_request(request: &Request) -> String {
    serde_json::to_string(request).expect("requests serialize")
}

/// Encodes a response as one protocol line (no trailing newline).
pub fn encode_response(response: &Response) -> String {
    serde_json::to_string(response).expect("responses serialize")
}

/// Decodes one protocol line into a request.
pub fn decode_request(line: &str) -> Result<Request, serde::Error> {
    serde_json::from_str(line)
}

/// Decodes one protocol line into a response.
pub fn decode_response(line: &str) -> Result<Response, serde::Error> {
    serde_json::from_str(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr::schemes::warner;

    #[test]
    fn requests_round_trip_through_lines() {
        let requests = vec![
            Request::Register {
                name: Some("demo".into()),
                prior: vec![0.4, 0.3, 0.2, 0.1],
                delta: 0.8,
                slots: Some(500),
                lazy: None,
            },
            Request::RegisterBatch {
                names: None,
                priors: vec![vec![0.5, 0.5], vec![0.9, 0.1]],
                delta: 0.75,
                slots: None,
            },
            Request::BestForPrivacy {
                key: Some(42),
                name: None,
                min_privacy: 0.25,
            },
            Request::BestForMse {
                key: None,
                name: Some("demo".into()),
                max_mse: 1e-4,
            },
            Request::Front {
                key: Some(7),
                name: None,
            },
            Request::Refresh {
                key: Some(7),
                name: None,
                runs: Some(2),
            },
            Request::Evict {
                key: None,
                name: Some("demo".into()),
            },
            Request::Ingest {
                key: None,
                name: Some("demo".into()),
                min_privacy: Some(0.2),
                records: Some(vec![0, 1, 2, 0]),
                counts: None,
                seed: Some(11),
            },
            Request::Ingest {
                key: Some(42),
                name: None,
                min_privacy: None,
                records: None,
                counts: Some(vec![10, 0, 3]),
                seed: None,
            },
            Request::Disguise {
                key: None,
                name: Some("demo".into()),
                min_privacy: 0.3,
                records: vec![1, 1, 0],
                seed: None,
            },
            Request::Estimate {
                key: Some(42),
                name: None,
            },
            Request::EstimateAll,
            Request::Save {
                path: "snapshot.json".into(),
            },
            Request::Load {
                path: "snapshot.json".into(),
            },
            Request::Sync,
            Request::Stats {
                key: None,
                name: None,
            },
            Request::Metrics,
            Request::Trace { limit: Some(50) },
            Request::Trace { limit: None },
            Request::Shutdown,
        ];
        for request in requests {
            let line = encode_request(&request);
            assert!(!line.contains('\n'), "one frame per line: {line}");
            let back = decode_request(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn every_verb_has_a_stable_histogram_label() {
        let labeled = [
            (Request::EstimateAll, "estimate_all"),
            (Request::Sync, "sync"),
            (Request::Metrics, "metrics"),
            (Request::Trace { limit: None }, "trace"),
            (Request::Shutdown, "shutdown"),
            (
                Request::Front {
                    key: Some(1),
                    name: None,
                },
                "front",
            ),
        ];
        for (request, verb) in labeled {
            assert_eq!(request.verb(), verb);
        }
    }

    #[test]
    fn responses_round_trip_through_lines() {
        let matrix = MatrixDto::from_matrix(&warner(4, 0.7).unwrap());
        let responses = vec![
            Response::Registered {
                key: 9,
                warm: true,
                filled_slots: 55,
                engine_runs: 1,
            },
            Response::RegisteredBatch {
                keys: vec![1, 2, 3],
                warmed: 2,
            },
            Response::Matrix {
                key: 9,
                privacy: 0.42,
                mse: 3.5e-5,
                max_posterior: 0.77,
                matrix,
                degraded: false,
            },
            Response::NoMatch {
                key: 9,
                reason: "no entry with privacy >= 0.99".into(),
                degraded: true,
            },
            Response::Front {
                key: 9,
                points: vec![
                    FrontPoint {
                        privacy: 0.2,
                        mse: 1e-5,
                    },
                    FrontPoint {
                        privacy: 0.5,
                        mse: 9e-5,
                    },
                ],
                degraded: false,
            },
            Response::Ingested {
                key: 9,
                accepted: 500,
                retained: 321,
                total: 1500,
                batches: 3,
                privacy: 0.41,
            },
            Response::Disguised {
                key: 9,
                privacy: 0.41,
                mse: 3.5e-5,
                retained: 2,
                records: vec![0, 2, 1],
            },
            Response::Estimated {
                stats: EstimateDto {
                    key: 9,
                    method: "inversion".into(),
                    distribution: vec![0.4, 0.3, 0.2, 0.1],
                    iterations: 0,
                    residual: 0.0,
                    mse_vs_prior: 2.4e-5,
                    total_responses: 1500,
                    batches: 3,
                    drifted: false,
                    stale: false,
                    degraded: false,
                },
            },
            Response::EstimatedAll {
                estimates: vec![EstimateDto {
                    key: 9,
                    method: "iterative".into(),
                    distribution: vec![0.5, 0.5],
                    iterations: 40,
                    residual: 9e-11,
                    mse_vs_prior: 1.2e-2,
                    total_responses: 10,
                    batches: 1,
                    drifted: true,
                    stale: true,
                    degraded: true,
                }],
                skipped: 2,
                failed: 1,
            },
            Response::Saved {
                path: "snapshot.json".into(),
                keys: 3,
            },
            Response::Loaded {
                path: "snapshot.json".into(),
                created: 2,
                merged: 1,
            },
            Response::Scheduled { key: 9, runs: 2 },
            Response::Evicted {
                key: 9,
                evicted: true,
                bytes_freed: 123_456,
            },
            Response::Synced,
            Response::KeyStats {
                stats: KeyStatsDto {
                    key: 9,
                    warm: true,
                    stale: false,
                    filled_slots: 55,
                    num_slots: 500,
                    engine_runs: 2,
                    queries: 11,
                    state: "stale(drift)".into(),
                    resident_bytes: 40_960,
                    drift_events: 3,
                    coverage_misses: 1,
                    evictions: 2,
                    rewarms: 2,
                    privacy_lo: Some(0.1),
                    privacy_hi: Some(0.8),
                    fitness_pairs_reused: 120,
                    fitness_pairs_computed: 45,
                    refresh_failures: 2,
                    retries: 1,
                    degraded: false,
                },
            },
            Response::ServiceStats {
                keys: 3,
                engine_runs: 4,
                queries: 100,
                warm_hits: 97,
                resident_bytes: 1_234_567,
                budget_bytes: Some(8_000_000),
                evictions: 5,
                refresh_failures: 2,
                retries: 1,
                degraded: 1,
            },
            Response::Metrics {
                enabled: true,
                counters: vec![MetricValueDto {
                    name: "serve_queries_total".into(),
                    value: 100,
                }],
                gauges: vec![MetricValueDto {
                    name: "serve_registered_keys".into(),
                    value: 3,
                }],
                histograms: vec![HistogramDto {
                    name: "serve_verb_estimate_latency_ns".into(),
                    count: 12,
                    sum: 48_000,
                    max: 9_001,
                    p50: 4_095,
                    p90: 8_191,
                    p99: 16_383,
                }],
                prometheus: "# TYPE serve_queries_total counter\nserve_queries_total 100\n".into(),
            },
            Response::Trace {
                enabled: true,
                dropped: 2,
                events: vec![TraceEventDto {
                    seq: 7,
                    at_ns: 123_456,
                    kind: "transition".into(),
                    key: Some(9),
                    detail: "cold -> warming".into(),
                }],
            },
            Response::Error {
                reason: "unknown key".into(),
                code: "invalid_request".into(),
            },
            Response::Bye,
        ];
        for response in responses {
            let line = encode_response(&response);
            assert!(!line.contains('\n'), "one frame per line: {line}");
            let back = decode_response(&line).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn matrix_dto_round_trips_bitwise() {
        let original = warner(5, 0.65).unwrap();
        let dto = MatrixDto::from_matrix(&original);
        assert_eq!(dto.num_categories, 5);
        let back = dto.to_matrix().unwrap();
        for output in 0..5 {
            for input in 0..5 {
                assert_eq!(
                    back.theta(output, input).to_bits(),
                    original.theta(output, input).to_bits()
                );
            }
        }
    }

    #[test]
    fn scripted_session_lines_parse() {
        // The exact shapes the CI smoke session pipes into the binary.
        let lines = [
            r#"{"Register":{"name":"demo","prior":[0.4,0.3,0.2,0.1],"delta":0.8}}"#,
            r#"{"BestForPrivacy":{"name":"demo","min_privacy":0.2}}"#,
            r#"{"Front":{"name":"demo"}}"#,
            r#"{"Stats":{"name":"demo"}}"#,
            r#"{"Stats":{}}"#,
            r#"{"Evict":{"name":"demo"}}"#,
            r#""Sync""#,
            r#""Metrics""#,
            r#"{"Trace":{"limit":50}}"#,
            r#"{"Trace":{}}"#,
            r#""Shutdown""#,
        ];
        for line in lines {
            assert!(decode_request(line).is_ok(), "failed to parse: {line}");
        }
        // Garbage is rejected, not panicked on.
        assert!(decode_request("not json").is_err());
        assert!(decode_request(r#"{"Unknown":{}}"#).is_err());
    }
}
