//! `OPTRR-WIRE v1`: the length-prefixed binary frame codec of the
//! network front door.
//!
//! The framed-JSON protocol ([`crate::protocol`]) spends the hot verbs'
//! budget on text: every matrix cell takes a float→decimal→float round
//! trip and every ingested record its own JSON token. This codec keeps
//! the *same* request/response model and replaces only the encoding for
//! the hot verbs — `Ingest`, `BestForPrivacy` (the paper's point query),
//! and `Estimate`, plus their responses — with fixed-width little-endian
//! fields and raw `f64` bits. Everything else rides inside a JSON-escape
//! frame, so the two codecs are request-for-request interchangeable and
//! a binary session stays bitwise-deterministic against a JSON session
//! (floats cross the wire as `f64::to_bits`, and the JSON stub
//! round-trips floats exactly, so both codecs deliver identical
//! `Request` values to the service).
//!
//! ## Negotiation
//!
//! A connection's very first byte selects the codec: [`PREAMBLE`]
//! (`0xB1`) switches the session to binary frames; any other first byte
//! is the beginning of the first framed-JSON line (JSON lines start with
//! `{` or `"`, which can never equal the preamble), so existing JSON
//! clients connect unchanged.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     frame length N (u32 LE) = 1 (tag) + payload + 4 (CRC)
//! 4       1     verb tag
//! 5       N-5   payload (fixed-width LE fields, see the tag constants)
//! 4+N-4   4     CRC32 (IEEE) over tag + payload (u32 LE)
//! ```
//!
//! Example — `Estimate { key: Some(9), name: None }` as one frame
//! (15 bytes total; asserted byte-for-byte by a unit test):
//!
//! ```text
//! 0f 00 00 00   frame length 15
//! 03            TAG_ESTIMATE
//! 01            key flag: present
//! 09 00 00 00 00 00 00 00   key = 9 (u64 LE)
//! 00            name flag: absent
//! 88 0a 04 b1   CRC32(tag + payload)
//! ```
//!
//! Decoding never panics: every read is bounds-checked, a frame longer
//! than [`MAX_FRAME_LEN`] is rejected before any allocation, and a
//! truncated or corrupted buffer yields a typed [`WireError`] the
//! session layer maps onto `ServeError::Transport`.

use crate::protocol::{self, EstimateDto, Request, Response};

/// The one-byte connection preamble that switches a session to binary
/// frames. JSON request lines start with `{` or `"`, so the first byte
/// of a connection distinguishes the codecs unambiguously.
pub const PREAMBLE: u8 = 0xB1;

/// Upper bound on one frame's length field: 64 MiB. A torn or malicious
/// length prefix must not be able to request an unbounded allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Upper bound on a matrix's category count in a binary `Matrix`
/// response — matches the service's Ω-resolution discipline of bounding
/// client-influenced allocations.
pub const MAX_WIRE_CATEGORIES: u32 = 4096;

/// Request tag: binary `Ingest` (raw-record batches or pre-counted
/// responses, no per-record JSON tokens).
pub const TAG_INGEST: u8 = 0x01;
/// Request tag: binary `BestForPrivacy` — the paper's point query.
pub const TAG_QUERY: u8 = 0x02;
/// Request tag: binary `Estimate`.
pub const TAG_ESTIMATE: u8 = 0x03;
/// Request tag: JSON-escape — the payload is one framed-JSON request
/// line, carrying every non-hot verb through the binary session.
pub const TAG_JSON_REQUEST: u8 = 0x0F;

/// Response tag: binary `Ingested`.
pub const TAG_INGESTED: u8 = 0x81;
/// Response tag: binary `Matrix` (column-major raw `f64` bits — the
/// codec's biggest win over JSON).
pub const TAG_MATRIX: u8 = 0x82;
/// Response tag: binary `Estimated`.
pub const TAG_ESTIMATED: u8 = 0x83;
/// Response tag: binary `NoMatch`.
pub const TAG_NO_MATCH: u8 = 0x84;
/// Response tag: JSON-escape — the payload is one framed-JSON response
/// line, carrying every non-hot response through the binary session.
pub const TAG_JSON_RESPONSE: u8 = 0x8F;

/// The two codecs a connection can negotiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Framed JSON: one request/response line per frame (the default).
    Json,
    /// `OPTRR-WIRE v1` binary frames (selected by [`PREAMBLE`]).
    Binary,
}

impl Codec {
    /// Stable lowercase label, used in per-codec metric names
    /// (`serve_net_verb_<verb>_<codec>_latency_ns`) and bench output.
    pub fn label(self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
        }
    }
}

/// A typed binary-codec failure. The session layer maps every variant
/// onto `ServeError::Transport` and closes the connection; the shared
/// service is never touched by a torn frame.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The buffer ended before the structure it promised.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The rejected length-field value.
        len: u32,
    },
    /// The length prefix is below the 5-byte minimum (tag + CRC).
    FrameTooSmall {
        /// The rejected length-field value.
        len: u32,
    },
    /// The frame checksum does not match its contents.
    BadCrc {
        /// CRC the frame carried.
        carried: u32,
        /// CRC computed over tag + payload.
        computed: u32,
    },
    /// The tag byte names no known frame type.
    UnknownTag(u8),
    /// The payload decodes structurally but its contents are invalid
    /// (bad option flag, non-UTF-8 string, trailing bytes, bad JSON in
    /// an escape frame).
    Malformed(String),
    /// The value cannot be represented on the wire (e.g. a record index
    /// above `u32::MAX`).
    Unencodable(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} bytes, got {got}")
            }
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} cap")
            }
            WireError::FrameTooSmall { len } => {
                write!(f, "frame length {len} is below the 5-byte minimum")
            }
            WireError::BadCrc { carried, computed } => {
                write!(f, "frame CRC {carried:#010x} != computed {computed:#010x}")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::Malformed(reason) => write!(f, "malformed payload: {reason}"),
            WireError::Unencodable(reason) => write!(f, "unencodable value: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias for codec results.
pub type Result<T> = std::result::Result<T, WireError>;

// ---- CRC32 (IEEE, reflected) ------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3, the zlib polynomial) over a byte slice — the
/// frame integrity check. Collision resistance is not the threat model;
/// torn and bit-flipped frames are.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- primitive field encoding ----------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    let len = u32::try_from(s.len())
        .map_err(|_| WireError::Unencodable(format!("string of {} bytes", s.len())))?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_opt<T>(
    out: &mut Vec<u8>,
    v: &Option<T>,
    put: impl FnOnce(&mut Vec<u8>, &T) -> Result<()>,
) -> Result<()> {
    match v {
        None => {
            out.push(0);
            Ok(())
        }
        Some(value) => {
            out.push(1);
            put(out, value)
        }
    }
}

/// A bounds-checked cursor over one frame payload. Every accessor
/// returns [`WireError::Truncated`] instead of slicing out of range, so
/// decoding arbitrary bytes can never panic.
struct FieldReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FieldReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(WireError::Truncated {
                expected: n,
                got: remaining,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed(format!("bool byte {other:#04x}"))),
        }
    }

    fn flag(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed(format!(
                "option flag byte {other:#04x}"
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    fn vec_u32_as_usize(&mut self) -> Result<Vec<usize>> {
        let count = self.u32()? as usize;
        // The count is validated against the bytes actually present
        // before any allocation, so a torn prefix cannot oversize a Vec.
        let bytes = self.take(
            count
                .checked_mul(4)
                .ok_or_else(|| WireError::Malformed("record count overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]) as usize)
            .collect())
    }

    fn vec_u64(&mut self) -> Result<Vec<u64>> {
        let count = self.u32()? as usize;
        let bytes = self.take(
            count
                .checked_mul(8)
                .ok_or_else(|| WireError::Malformed("count-vector length overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    fn vec_f64(&mut self) -> Result<Vec<f64>> {
        let count = self.u32()? as usize;
        let bytes = self.take(
            count
                .checked_mul(8)
                .ok_or_else(|| WireError::Malformed("float-vector length overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                f64::from_bits(u64::from_le_bytes([
                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                ]))
            })
            .collect())
    }

    fn opt_u64(&mut self) -> Result<Option<u64>> {
        Ok(if self.flag()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn opt_f64(&mut self) -> Result<Option<f64>> {
        Ok(if self.flag()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    fn opt_string(&mut self) -> Result<Option<String>> {
        Ok(if self.flag()? {
            Some(self.string()?)
        } else {
            None
        })
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---- frame assembly ---------------------------------------------------------

/// Assembles one complete frame (length prefix + tag + payload + CRC)
/// from a tag and payload.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Result<Vec<u8>> {
    let body_len = 1 + payload.len() + 4;
    let len = u32::try_from(body_len)
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            WireError::Unencodable(format!(
                "payload of {} bytes exceeds the frame cap",
                payload.len()
            ))
        })?;
    let mut frame = Vec::with_capacity(4 + body_len);
    put_u32(&mut frame, len);
    frame.push(tag);
    frame.extend_from_slice(payload);
    let crc = {
        let mut checked = Vec::with_capacity(1 + payload.len());
        checked.push(tag);
        checked.extend_from_slice(payload);
        crc32(&checked)
    };
    put_u32(&mut frame, crc);
    Ok(frame)
}

/// Validates a frame's 4-byte length prefix and returns the body length
/// (tag + payload + CRC) to read next.
pub fn parse_header(header: [u8; 4]) -> Result<usize> {
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    if len < 5 {
        return Err(WireError::FrameTooSmall { len });
    }
    Ok(len as usize)
}

/// Validates a frame body (tag + payload + CRC, as sized by
/// [`parse_header`]) and returns the tag and payload slice.
pub fn parse_body(body: &[u8]) -> Result<(u8, &[u8])> {
    if body.len() < 5 {
        return Err(WireError::Truncated {
            expected: 5,
            got: body.len(),
        });
    }
    let (checked, crc_bytes) = body.split_at(body.len() - 4);
    let carried = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let computed = crc32(checked);
    if carried != computed {
        return Err(WireError::BadCrc { carried, computed });
    }
    Ok((checked[0], &checked[1..]))
}

// ---- request codec ----------------------------------------------------------

/// Encodes a request as one complete binary frame. The hot verbs
/// (`Ingest`, `BestForPrivacy`, `Estimate`) get fixed-width binary
/// payloads; every other verb rides in a [`TAG_JSON_REQUEST`] escape
/// frame, so any session can be carried over either codec.
pub fn encode_request_frame(request: &Request) -> Result<Vec<u8>> {
    let mut payload = Vec::new();
    let tag = match request {
        Request::Ingest {
            key,
            name,
            min_privacy,
            records,
            counts,
            seed,
        } => {
            put_opt(&mut payload, key, |out, v| {
                put_u64(out, *v);
                Ok(())
            })?;
            put_opt(&mut payload, name, |out, v| put_str(out, v))?;
            put_opt(&mut payload, min_privacy, |out, v| {
                put_f64(out, *v);
                Ok(())
            })?;
            put_opt(&mut payload, records, |out, records| {
                let count = u32::try_from(records.len()).map_err(|_| {
                    WireError::Unencodable(format!("batch of {} records", records.len()))
                })?;
                put_u32(out, count);
                for &record in records {
                    let value = u32::try_from(record).map_err(|_| {
                        WireError::Unencodable(format!("record index {record} exceeds u32"))
                    })?;
                    put_u32(out, value);
                }
                Ok(())
            })?;
            put_opt(&mut payload, counts, |out, counts| {
                let count = u32::try_from(counts.len()).map_err(|_| {
                    WireError::Unencodable(format!("count set of {} categories", counts.len()))
                })?;
                put_u32(out, count);
                for &c in counts {
                    put_u64(out, c);
                }
                Ok(())
            })?;
            put_opt(&mut payload, seed, |out, v| {
                put_u64(out, *v);
                Ok(())
            })?;
            TAG_INGEST
        }
        Request::BestForPrivacy {
            key,
            name,
            min_privacy,
        } => {
            put_opt(&mut payload, key, |out, v| {
                put_u64(out, *v);
                Ok(())
            })?;
            put_opt(&mut payload, name, |out, v| put_str(out, v))?;
            put_f64(&mut payload, *min_privacy);
            TAG_QUERY
        }
        Request::Estimate { key, name } => {
            put_opt(&mut payload, key, |out, v| {
                put_u64(out, *v);
                Ok(())
            })?;
            put_opt(&mut payload, name, |out, v| put_str(out, v))?;
            TAG_ESTIMATE
        }
        other => {
            payload.extend_from_slice(protocol::encode_request(other).as_bytes());
            TAG_JSON_REQUEST
        }
    };
    encode_frame(tag, &payload)
}

/// Decodes one binary frame body (tag + payload, CRC already verified
/// by [`parse_body`]) into a request.
pub fn decode_request_frame(tag: u8, payload: &[u8]) -> Result<Request> {
    let mut r = FieldReader::new(payload);
    let request = match tag {
        TAG_INGEST => Request::Ingest {
            key: r.opt_u64()?,
            name: r.opt_string()?,
            min_privacy: r.opt_f64()?,
            records: if r.flag()? {
                Some(r.vec_u32_as_usize()?)
            } else {
                None
            },
            counts: if r.flag()? { Some(r.vec_u64()?) } else { None },
            seed: r.opt_u64()?,
        },
        TAG_QUERY => Request::BestForPrivacy {
            key: r.opt_u64()?,
            name: r.opt_string()?,
            min_privacy: r.f64()?,
        },
        TAG_ESTIMATE => Request::Estimate {
            key: r.opt_u64()?,
            name: r.opt_string()?,
        },
        TAG_JSON_REQUEST => {
            let text = std::str::from_utf8(payload)
                .map_err(|_| WireError::Malformed("JSON-escape payload is not UTF-8".into()))?;
            return protocol::decode_request(text)
                .map_err(|e| WireError::Malformed(format!("JSON-escape request: {e}")));
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(request)
}

// ---- response codec ---------------------------------------------------------

fn put_estimate_dto(out: &mut Vec<u8>, dto: &EstimateDto) -> Result<()> {
    put_u64(out, dto.key);
    put_str(out, &dto.method)?;
    let count = u32::try_from(dto.distribution.len()).map_err(|_| {
        WireError::Unencodable(format!(
            "distribution of {} categories",
            dto.distribution.len()
        ))
    })?;
    put_u32(out, count);
    for &p in &dto.distribution {
        put_f64(out, p);
    }
    put_u64(out, dto.iterations);
    put_f64(out, dto.residual);
    put_f64(out, dto.mse_vs_prior);
    put_u64(out, dto.total_responses);
    put_u64(out, dto.batches);
    put_bool(out, dto.drifted);
    put_bool(out, dto.stale);
    put_bool(out, dto.degraded);
    Ok(())
}

fn read_estimate_dto(r: &mut FieldReader<'_>) -> Result<EstimateDto> {
    Ok(EstimateDto {
        key: r.u64()?,
        method: r.string()?,
        distribution: r.vec_f64()?,
        iterations: r.u64()?,
        residual: r.f64()?,
        mse_vs_prior: r.f64()?,
        total_responses: r.u64()?,
        batches: r.u64()?,
        drifted: r.bool()?,
        stale: r.bool()?,
        degraded: r.bool()?,
    })
}

/// Encodes a response as one complete binary frame. The hot responses
/// (`Ingested`, `Matrix`, `Estimated`, `NoMatch`) get binary payloads —
/// the column-major matrix crosses as raw `f64` bits, no
/// float→decimal→float round trip — and every other response rides in a
/// [`TAG_JSON_RESPONSE`] escape frame.
pub fn encode_response_frame(response: &Response) -> Result<Vec<u8>> {
    let mut payload = Vec::new();
    let tag = match response {
        Response::Ingested {
            key,
            accepted,
            retained,
            total,
            batches,
            privacy,
        } => {
            put_u64(&mut payload, *key);
            put_u64(&mut payload, *accepted);
            put_u64(&mut payload, *retained);
            put_u64(&mut payload, *total);
            put_u64(&mut payload, *batches);
            put_f64(&mut payload, *privacy);
            TAG_INGESTED
        }
        Response::Matrix {
            key,
            privacy,
            mse,
            max_posterior,
            matrix,
            degraded,
        } => {
            let n = u32::try_from(matrix.num_categories)
                .ok()
                .filter(|&n| n <= MAX_WIRE_CATEGORIES)
                .ok_or_else(|| {
                    WireError::Unencodable(format!(
                        "matrix of {} categories",
                        matrix.num_categories
                    ))
                })?;
            if matrix.columns.len() != matrix.num_categories
                || matrix
                    .columns
                    .iter()
                    .any(|c| c.len() != matrix.num_categories)
            {
                return Err(WireError::Unencodable(
                    "matrix columns do not match num_categories".into(),
                ));
            }
            put_u64(&mut payload, *key);
            put_f64(&mut payload, *privacy);
            put_f64(&mut payload, *mse);
            put_f64(&mut payload, *max_posterior);
            put_bool(&mut payload, *degraded);
            put_u32(&mut payload, n);
            for column in &matrix.columns {
                for &theta in column {
                    put_f64(&mut payload, theta);
                }
            }
            TAG_MATRIX
        }
        Response::Estimated { stats } => {
            put_estimate_dto(&mut payload, stats)?;
            TAG_ESTIMATED
        }
        Response::NoMatch {
            key,
            reason,
            degraded,
        } => {
            put_u64(&mut payload, *key);
            put_str(&mut payload, reason)?;
            put_bool(&mut payload, *degraded);
            TAG_NO_MATCH
        }
        other => {
            payload.extend_from_slice(protocol::encode_response(other).as_bytes());
            TAG_JSON_RESPONSE
        }
    };
    encode_frame(tag, &payload)
}

/// Decodes one binary frame body (tag + payload, CRC already verified)
/// into a response.
pub fn decode_response_frame(tag: u8, payload: &[u8]) -> Result<Response> {
    let mut r = FieldReader::new(payload);
    let response = match tag {
        TAG_INGESTED => Response::Ingested {
            key: r.u64()?,
            accepted: r.u64()?,
            retained: r.u64()?,
            total: r.u64()?,
            batches: r.u64()?,
            privacy: r.f64()?,
        },
        TAG_MATRIX => {
            let key = r.u64()?;
            let privacy = r.f64()?;
            let mse = r.f64()?;
            let max_posterior = r.f64()?;
            let degraded = r.bool()?;
            let n = r.u32()?;
            if n > MAX_WIRE_CATEGORIES {
                return Err(WireError::Malformed(format!(
                    "matrix of {n} categories exceeds the {MAX_WIRE_CATEGORIES} cap"
                )));
            }
            let n = n as usize;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                let mut column = Vec::with_capacity(n);
                for _ in 0..n {
                    column.push(r.f64()?);
                }
                columns.push(column);
            }
            Response::Matrix {
                key,
                privacy,
                mse,
                max_posterior,
                matrix: protocol::MatrixDto {
                    num_categories: n,
                    columns,
                },
                degraded,
            }
        }
        TAG_ESTIMATED => Response::Estimated {
            stats: read_estimate_dto(&mut r)?,
        },
        TAG_NO_MATCH => Response::NoMatch {
            key: r.u64()?,
            reason: r.string()?,
            degraded: r.bool()?,
        },
        TAG_JSON_RESPONSE => {
            let text = std::str::from_utf8(payload)
                .map_err(|_| WireError::Malformed("JSON-escape payload is not UTF-8".into()))?;
            return protocol::decode_response(text)
                .map_err(|e| WireError::Malformed(format!("JSON-escape response: {e}")));
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(response)
}

/// Decodes one complete frame (as produced by [`encode_frame`]) into
/// its tag and payload — the buffer-level entry point tests and the
/// client use; sessions read the header and body separately so a torn
/// prefix is detected at the exact read that hit it.
pub fn decode_frame(frame: &[u8]) -> Result<(u8, Vec<u8>)> {
    if frame.len() < 4 {
        return Err(WireError::Truncated {
            expected: 4,
            got: frame.len(),
        });
    }
    let body_len = parse_header([frame[0], frame[1], frame[2], frame[3]])?;
    let body = &frame[4..];
    if body.len() < body_len {
        return Err(WireError::Truncated {
            expected: body_len,
            got: body.len(),
        });
    }
    if body.len() > body_len {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after frame",
            body.len() - body_len
        )));
    }
    let (tag, payload) = parse_body(body)?;
    Ok((tag, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MatrixDto;
    use proptest::prelude::*;
    use rr::schemes::warner;

    fn round_trip_request(request: &Request) -> Request {
        let frame = encode_request_frame(request).expect("encodes");
        let (tag, payload) = decode_frame(&frame).expect("frame parses");
        decode_request_frame(tag, &payload).expect("payload decodes")
    }

    fn round_trip_response(response: &Response) -> Response {
        let frame = encode_response_frame(response).expect("encodes");
        let (tag, payload) = decode_frame(&frame).expect("frame parses");
        decode_response_frame(tag, &payload).expect("payload decodes")
    }

    #[test]
    fn documented_example_frame_is_bitwise_stable() {
        let frame = encode_request_frame(&Request::Estimate {
            key: Some(9),
            name: None,
        })
        .unwrap();
        // The module-doc hexdump, byte for byte.
        let expected = [
            0x0f, 0x00, 0x00, 0x00, // length 15
            0x03, // TAG_ESTIMATE
            0x01, 0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // key = Some(9)
            0x00, // name = None
            0x88, 0x0a, 0x04, 0xb1, // CRC32
        ];
        assert_eq!(frame, expected);
    }

    #[test]
    fn hot_requests_round_trip_bitwise() {
        let requests = [
            Request::Ingest {
                key: Some(42),
                name: None,
                min_privacy: Some(0.2),
                records: Some(vec![0, 1, 2, 0, 3]),
                counts: None,
                seed: Some(11),
            },
            Request::Ingest {
                key: None,
                name: Some("demo".into()),
                min_privacy: None,
                records: None,
                counts: Some(vec![10, 0, 3]),
                seed: None,
            },
            Request::Ingest {
                key: None,
                name: None,
                min_privacy: None,
                records: Some(vec![]),
                counts: None,
                seed: None,
            },
            Request::BestForPrivacy {
                key: Some(7),
                name: Some("both".into()),
                min_privacy: 0.25,
            },
            Request::BestForPrivacy {
                key: None,
                name: None,
                min_privacy: f64::MIN_POSITIVE,
            },
            Request::Estimate {
                key: Some(u64::MAX),
                name: None,
            },
            Request::Estimate {
                key: None,
                name: Some("ünïcode-名前".into()),
            },
        ];
        for request in &requests {
            assert_eq!(&round_trip_request(request), request);
        }
    }

    #[test]
    fn every_protocol_request_crosses_the_binary_codec() {
        // Cold verbs ride the JSON-escape frame; all must survive.
        let requests = [
            Request::Register {
                name: Some("demo".into()),
                prior: vec![0.4, 0.3, 0.2, 0.1],
                delta: 0.8,
                slots: Some(500),
                lazy: Some(true),
            },
            Request::RegisterBatch {
                names: None,
                priors: vec![vec![0.5, 0.5]],
                delta: 0.75,
                slots: None,
            },
            Request::BestForMse {
                key: None,
                name: Some("demo".into()),
                max_mse: 1e-4,
            },
            Request::Front {
                key: Some(7),
                name: None,
            },
            Request::Disguise {
                key: None,
                name: Some("demo".into()),
                min_privacy: 0.3,
                records: vec![1, 1, 0],
                seed: None,
            },
            Request::EstimateAll,
            Request::Save {
                path: "snap.json".into(),
            },
            Request::Load {
                path: "snap.json".into(),
            },
            Request::Evict {
                key: Some(1),
                name: None,
            },
            Request::Refresh {
                key: Some(1),
                name: None,
                runs: Some(2),
            },
            Request::Sync,
            Request::Stats {
                key: None,
                name: None,
            },
            Request::Metrics,
            Request::Trace { limit: Some(5) },
            Request::Shutdown,
        ];
        for request in &requests {
            let frame = encode_request_frame(request).unwrap();
            assert_eq!(frame[4], TAG_JSON_REQUEST, "{request:?} is not hot");
            assert_eq!(&round_trip_request(request), request);
        }
    }

    #[test]
    fn hot_responses_round_trip_bitwise() {
        let matrix = MatrixDto::from_matrix(&warner(4, 0.7).unwrap());
        let responses = [
            Response::Ingested {
                key: 9,
                accepted: 500,
                retained: 321,
                total: 1500,
                batches: 3,
                privacy: 0.41,
            },
            Response::Matrix {
                key: 9,
                privacy: 0.42,
                mse: 3.5e-5,
                max_posterior: 0.77,
                matrix: matrix.clone(),
                degraded: false,
            },
            Response::NoMatch {
                key: 9,
                reason: "no entry with privacy >= 0.99".into(),
                degraded: true,
            },
            Response::Estimated {
                stats: EstimateDto {
                    key: 9,
                    method: "inversion".into(),
                    distribution: vec![0.4, 0.3, 0.2, 0.1],
                    iterations: 0,
                    residual: 0.0,
                    mse_vs_prior: 2.4e-5,
                    total_responses: 1500,
                    batches: 3,
                    drifted: false,
                    stale: false,
                    degraded: false,
                },
            },
        ];
        for response in &responses {
            let back = round_trip_response(response);
            assert_eq!(&back, response);
        }
        // The matrix crosses bitwise: compare the raw f64 bits.
        let Response::Matrix { matrix: back, .. } = round_trip_response(&Response::Matrix {
            key: 1,
            privacy: 0.1,
            mse: 1e-6,
            max_posterior: 0.5,
            matrix: matrix.clone(),
            degraded: false,
        }) else {
            panic!("matrix response decodes as a matrix");
        };
        for (a, b) in matrix.columns.iter().zip(back.columns.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn cold_responses_ride_the_json_escape() {
        let responses = [
            Response::Registered {
                key: 9,
                warm: true,
                filled_slots: 55,
                engine_runs: 1,
            },
            Response::Synced,
            Response::Error {
                reason: "unknown key".into(),
                code: "invalid_request".into(),
            },
            Response::Bye,
        ];
        for response in &responses {
            let frame = encode_response_frame(response).unwrap();
            assert_eq!(frame[4], TAG_JSON_RESPONSE, "{response:?} is not hot");
            assert_eq!(&round_trip_response(response), response);
        }
    }

    #[test]
    fn truncation_at_every_offset_never_panics() {
        // The snapshot torn-read discipline, applied to frames: every
        // strict prefix of a valid frame must yield a typed error.
        let matrix = MatrixDto::from_matrix(&warner(5, 0.65).unwrap());
        let frames = [
            encode_request_frame(&Request::Ingest {
                key: Some(42),
                name: Some("demo".into()),
                min_privacy: Some(0.2),
                records: Some(vec![0, 1, 2, 0, 3, 4]),
                counts: None,
                seed: Some(11),
            })
            .unwrap(),
            encode_response_frame(&Response::Matrix {
                key: 9,
                privacy: 0.42,
                mse: 3.5e-5,
                max_posterior: 0.77,
                matrix,
                degraded: false,
            })
            .unwrap(),
            encode_request_frame(&Request::Metrics).unwrap(),
        ];
        for frame in &frames {
            for cut in 0..frame.len() {
                let err = decode_frame(&frame[..cut]).expect_err("prefix must not decode");
                assert!(
                    matches!(err, WireError::Truncated { .. } | WireError::BadCrc { .. }),
                    "cut at {cut}: unexpected {err:?}"
                );
            }
        }
    }

    #[test]
    fn payload_truncation_inside_the_body_never_panics() {
        // Truncate *after* the CRC check would pass: feed shortened
        // payloads straight to the field decoders.
        let frame = encode_request_frame(&Request::Ingest {
            key: Some(42),
            name: Some("demo".into()),
            min_privacy: Some(0.2),
            records: Some(vec![0, 1, 2]),
            counts: Some(vec![5, 5]),
            seed: Some(11),
        })
        .unwrap();
        let (tag, payload) = decode_frame(&frame).unwrap();
        for cut in 0..payload.len() {
            let result = decode_request_frame(tag, &payload[..cut]);
            assert!(result.is_err(), "payload cut at {cut} must error");
        }
    }

    #[test]
    fn corrupted_bytes_fail_the_crc() {
        let frame = encode_request_frame(&Request::Estimate {
            key: Some(9),
            name: None,
        })
        .unwrap();
        // Flip each body byte (everything after the length prefix).
        for at in 4..frame.len() {
            let mut bad = frame.clone();
            bad[at] ^= 0x40;
            let err = decode_frame(&bad).expect_err("corruption must be detected");
            assert!(
                matches!(err, WireError::BadCrc { .. } | WireError::Malformed(_)),
                "byte {at}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn frame_length_field_is_bounded() {
        assert!(matches!(
            parse_header((MAX_FRAME_LEN + 1).to_le_bytes()),
            Err(WireError::FrameTooLarge { .. })
        ));
        assert!(matches!(
            parse_header(4u32.to_le_bytes()),
            Err(WireError::FrameTooSmall { .. })
        ));
        assert_eq!(parse_header(5u32.to_le_bytes()), Ok(5));
    }

    #[test]
    fn unknown_tags_and_bad_flags_are_typed_errors() {
        let frame = encode_frame(0x55, &[1, 2, 3]).unwrap();
        let (tag, payload) = decode_frame(&frame).unwrap();
        assert_eq!(
            decode_request_frame(tag, &payload),
            Err(WireError::UnknownTag(0x55))
        );
        assert_eq!(
            decode_response_frame(tag, &payload),
            Err(WireError::UnknownTag(0x55))
        );
        // An option flag byte outside {0, 1} is malformed, not a panic.
        let frame = encode_frame(TAG_ESTIMATE, &[7]).unwrap();
        let (tag, payload) = decode_frame(&frame).unwrap();
        assert!(matches!(
            decode_request_frame(tag, &payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(64))]

        #[test]
        fn ingest_payloads_round_trip(
            key in (0u8..2, 0u64..u64::MAX).prop_map(|(some, v)| (some == 1).then_some(v)),
            min_privacy in (0u8..2, 0.0f64..1.0).prop_map(|(some, v)| (some == 1).then_some(v)),
            records in (0u8..2, proptest::collection::vec(0usize..64, 0..128))
                .prop_map(|(some, v)| (some == 1).then_some(v)),
            counts in (0u8..2, proptest::collection::vec(0u64..(1 << 60), 0..32))
                .prop_map(|(some, v)| (some == 1).then_some(v)),
            seed in (0u8..2, 0u64..u64::MAX).prop_map(|(some, v)| (some == 1).then_some(v)),
        ) {
            let request = Request::Ingest {
                key,
                name: None,
                min_privacy,
                records,
                counts,
                seed,
            };
            let frame = encode_request_frame(&request).unwrap();
            let (tag, payload) = decode_frame(&frame).unwrap();
            prop_assert_eq!(decode_request_frame(tag, &payload).unwrap(), request);
        }

        #[test]
        fn matrix_responses_round_trip_column_major(
            n in 1usize..12,
            seed_bits in 0u32..u32::MAX,
        ) {
            // A pseudo-random column-major matrix: layout fidelity is the
            // point, column-stochasticity is not required by the codec.
            let mut state = u64::from(seed_bits) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let columns: Vec<Vec<f64>> =
                (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
            let response = Response::Matrix {
                key: 3,
                privacy: next(),
                mse: next(),
                max_posterior: next(),
                matrix: MatrixDto { num_categories: n, columns },
                degraded: false,
            };
            let frame = encode_response_frame(&response).unwrap();
            let (tag, payload) = decode_frame(&frame).unwrap();
            prop_assert_eq!(decode_response_frame(tag, &payload).unwrap(), response);
        }

        #[test]
        fn estimates_round_trip(
            distribution in proptest::collection::vec(0.0f64..1.0, 1..32),
            iterations in 0u64..u64::MAX,
            drifted in (0u8..2).prop_map(|flag| flag == 1),
        ) {
            let response = Response::Estimated {
                stats: EstimateDto {
                    key: 11,
                    method: "iterative".into(),
                    distribution,
                    iterations,
                    residual: 1e-9,
                    mse_vs_prior: 2.5e-4,
                    total_responses: 100,
                    batches: 2,
                    drifted,
                    stale: false,
                    degraded: false,
                },
            };
            let frame = encode_response_frame(&response).unwrap();
            let (tag, payload) = decode_frame(&frame).unwrap();
            prop_assert_eq!(decode_response_frame(tag, &payload).unwrap(), response);
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_decoder(
            bytes in proptest::collection::vec(0u8..=255, 0..256),
        ) {
            // Errors are fine; panics are not.
            let _ = decode_frame(&bytes);
            if bytes.len() >= 4 {
                if let Ok(len) = parse_header([bytes[0], bytes[1], bytes[2], bytes[3]]) {
                    let _ = len;
                }
            }
            if !bytes.is_empty() {
                let _ = decode_request_frame(bytes[0], &bytes[1..]);
                let _ = decode_response_frame(bytes[0], &bytes[1..]);
            }
        }
    }
}
