//! The serving front door: registry + worker pool + protocol handling.
//!
//! A [`Service`] is the long-lived object behind the `serve` binary and the
//! load-generator bench. It owns the warm-Ω [`Registry`], a [`WorkerPool`]
//! that executes engine runs for cold, stale, or evicted keys, and the
//! counters the protocol's `Stats` request reports. Point queries never run
//! the engine synchronously in-protocol: they wait for the key's lifecycle
//! to report warm data, then answer from the sharded store in O(slots)
//! under per-shard locks.
//!
//! Since the lifecycle refactor, every per-key transition — warm-up claim,
//! staleness, refresh, eviction, re-warm — goes through the
//! compare-exchange-guarded state machine in [`crate::lifecycle`], and the
//! service adds three policies on top:
//!
//! * **memory budget**: with [`ServiceConfig::memory_budget_bytes`] set,
//!   the total resident bytes (Ω matrices + warm-start seeds + ingest
//!   accumulators) are bounded by evicting least-recently-touched idle
//!   keys; with [`ServiceConfig::key_ttl`] set, untouched keys expire.
//!   Evicted keys re-warm transparently on their next query — from the
//!   per-key eviction sidecar when [`ServiceConfig::snapshot_path`] is
//!   configured (bitwise-identical), or by deterministically replaying the
//!   key's engine-run sequence otherwise (bitwise-identical for
//!   prior-targeted run histories).
//! * **drift-driven re-optimization**: a key marked stale by estimation
//!   drift (or by coverage telemetry) refreshes against the *estimated*
//!   posterior instead of the registered prior, through
//!   [`Optimizer::optimize_refresh`]'s distribution override.
//! * **query-shape telemetry**: point queries that find no matrix for
//!   their privacy floor count as coverage misses; past the configured
//!   threshold the key goes stale and a refresh is scheduled.
//!
//! Determinism contract: the warm-up run of a key uses exactly the
//! configured base seed, and run `i` of that key uses `seed + i`, so a
//! service warm-up is bitwise-reproducible against a plain
//! [`Optimizer::optimize_distribution`] call with the same configuration —
//! the end-to-end tests assert this front-for-front.

use crate::lifecycle::{KeyState, StaleReason};
use crate::pipeline::PipelineSnapshot;
use crate::protocol::{
    EstimateDto, HistogramDto, KeyStatsDto, MatrixDto, MetricValueDto, Request, Response,
    TraceEventDto,
};
use crate::registry::{KeyEntry, Registry};
use crate::telemetry::{ServeEvent, ServeObs, DEFAULT_TRACE_CAP};
use crate::worker::WorkerPool;
use obs::{Clock, MonotonicClock};
use optrr::{OmegaSet, Optimizer, OptrrConfig, OptrrError};
use rr::estimate::IterativeConfig;
use serde::{Deserialize, Serialize};
use stats::Categorical;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on refresh runs one `Refresh` request may schedule.
pub const MAX_REFRESH_RUNS: usize = 16;

/// Upper bound on a registration's Ω resolution. Each key's warm store
/// allocates `num_shards` full-width slot vectors (so `OmegaSet::merge`
/// applies shard-for-shard), so an uncapped client-supplied `slots` value
/// could request an unbounded allocation and take the whole service down;
/// 20× the paper's 1000-slot Ω is plenty of resolution.
pub const MAX_OMEGA_SLOTS: usize = 20_000;

/// Uniform blend applied to an estimated posterior before it becomes a
/// refresh run's optimization target (see
/// [`rr::estimate::handoff_posterior`]): a drifted stream concentrated on
/// few categories yields posterior zeros, and a zero-probability category
/// would stop weighing that category's reconstruction error.
pub const REFRESH_TARGET_BLEND: f64 = 1e-3;

/// Error type of the service's library API. Protocol handling maps every
/// variant to a `Response::Error` line carrying [`ServeError::code`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request itself is malformed (bad prior, bad delta, unknown key).
    InvalidRequest(String),
    /// The optimizer refused the derived configuration or prior.
    Optimizer(OptrrError),
    /// A snapshot file could not be read or written (I/O).
    Snapshot(String),
    /// A snapshot file was read but its contents are torn, fail the
    /// checksum, or do not decode — the caller should fall back to the
    /// previous generation or to deterministic replay, never serve the
    /// partial contents.
    SnapshotCorrupt(String),
    /// A network session's transport failed mid-frame: a torn length
    /// prefix, a half-written JSON line, a checksum mismatch, or an
    /// abrupt client disconnect. The session closes; the shared service
    /// is untouched (no poisoned locks, no leaked `Warming` states).
    Transport(String),
}

impl ServeError {
    /// Stable machine-readable error code, the taxonomy the protocol's
    /// `Error` responses carry: `invalid_request`, `optimizer`,
    /// `snapshot_io`, `snapshot_corrupt`, or `transport`.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::InvalidRequest(_) => "invalid_request",
            ServeError::Optimizer(_) => "optimizer",
            ServeError::Snapshot(_) => "snapshot_io",
            ServeError::SnapshotCorrupt(_) => "snapshot_corrupt",
            ServeError::Transport(_) => "transport",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
            ServeError::Optimizer(e) => write!(f, "optimizer error: {e}"),
            ServeError::Snapshot(reason) => write!(f, "snapshot error: {reason}"),
            ServeError::SnapshotCorrupt(reason) => write!(f, "snapshot corrupt: {reason}"),
            ServeError::Transport(reason) => write!(f, "transport error: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<OptrrError> for ServeError {
    fn from(e: OptrrError) -> Self {
        ServeError::Optimizer(e)
    }
}

/// Convenience alias for the service API.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Configuration of a serving instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The engine-budget template for every key's runs. Per-key `delta`,
    /// `omega_slots`, and the per-run seed offset are overlaid on it; the
    /// rest (population, generations, engine kind, parallel evaluation)
    /// applies as-is.
    pub base: OptrrConfig,
    /// Ω resolution used when a registration does not specify one.
    pub default_slots: usize,
    /// Shards per warm store (and per ingest accumulator).
    pub num_shards: usize,
    /// Worker threads executing engine runs.
    pub workers: usize,
    /// Budget of the iterative fallback estimator.
    pub iterative: IterativeConfig,
    /// Drift threshold: an estimate whose MSE against the registered prior
    /// exceeds this marks the key stale. Sampling noise with a few
    /// thousand responses sits around 1e-5–1e-4, so 1e-3 separates noise
    /// from genuine drift.
    pub drift_mse_threshold: f64,
    /// Whether a drifted estimate also schedules one refresh engine run
    /// (the telemetry-driven refresh trigger), on top of marking stale.
    pub refresh_on_drift: bool,
    /// Whether a drift- or coverage-stale key's refresh run re-optimizes
    /// against the estimated posterior (blended per
    /// [`REFRESH_TARGET_BLEND`]) instead of the registered prior. Manual
    /// refreshes always target the registered prior.
    pub reoptimize_on_drift: bool,
    /// Point queries that matched *no* stored matrix before the key is
    /// marked coverage-stale and a refresh is scheduled. `0` disables the
    /// query-shape trigger.
    pub coverage_miss_threshold: u64,
    /// Global bound on resident bytes (Ω matrices + warm-start seeds +
    /// ingest accumulators) across all keys. When exceeded, idle keys are
    /// evicted in least-recently-touched order. `None` disables eviction.
    pub memory_budget_bytes: Option<u64>,
    /// Idle time after which a key's resident state is evicted (checked on
    /// `Sync` and whenever the budget is enforced). `None` disables TTL.
    pub key_ttl: Option<Duration>,
    /// Base path for persistence. When set: `Sync` and `Shutdown` write a
    /// full [`ServiceSnapshot`] here, and every eviction writes the
    /// victim's [`KeySnapshot`] to a per-key sidecar
    /// (`<path>.key-<fingerprint>.json`) from which the next query
    /// re-warms it bitwise-identically.
    pub snapshot_path: Option<String>,
    /// Whether the service records observability at all (counters,
    /// per-verb latency histograms, the event trace). Recording is
    /// one-way — no metric ever feeds back into request handling — so a
    /// metrics-on and a metrics-off service answer every non-`Metrics`/
    /// `Trace` request bitwise-identically (asserted end to end by the
    /// invisibility test).
    pub metrics: bool,
    /// Bound on the structured event trace (events, not bytes); 0 keeps
    /// metrics live but disables the trace.
    pub trace_cap: usize,
    /// Deterministic fault-injection plan (`OPTRR_SERVE_FAULTS`). `None`
    /// disables injection entirely: the service holds no injector and
    /// every fault site is one always-false branch.
    pub faults: Option<crate::faults::FaultPlan>,
    /// Consecutive refresh failures of one key before it stops being
    /// retried automatically and enters `Degraded` — still answering
    /// queries from its last-good warm Ω, flagged `degraded` in every
    /// response, until a (manual or drift-scheduled) refresh lands.
    pub fail_budget: u64,
    /// Base delay of the exponential retry backoff after a failed
    /// refresh: retry `n` waits `retry_base_ms << (n - 1)` milliseconds,
    /// capped by [`retry_max_ms`].
    ///
    /// [`retry_max_ms`]: ServiceConfig::retry_max_ms
    pub retry_base_ms: u64,
    /// Ceiling of the retry backoff delay.
    pub retry_max_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(4);
        Self {
            base: OptrrConfig::fast(0.75, 2008),
            default_slots: 500,
            num_shards: 8,
            workers,
            iterative: IterativeConfig::default(),
            drift_mse_threshold: 1e-3,
            refresh_on_drift: true,
            reoptimize_on_drift: true,
            coverage_miss_threshold: 8,
            memory_budget_bytes: None,
            key_ttl: None,
            snapshot_path: None,
            metrics: true,
            trace_cap: DEFAULT_TRACE_CAP,
            faults: None,
            fail_budget: 3,
            retry_base_ms: 25,
            retry_max_ms: 1000,
        }
    }
}

impl ServiceConfig {
    /// A small-budget configuration for tests and CI smoke sessions:
    /// sub-second warm-ups that still fill a meaningful Ω.
    pub fn smoke(seed: u64) -> Self {
        Self {
            base: OptrrConfig {
                engine: emoo::EngineConfig {
                    population_size: 16,
                    archive_size: 8,
                    generations: 30,
                    mutation_rate: 0.5,
                    density_k: 1,
                },
                omega_slots: 200,
                ..OptrrConfig::fast(0.75, seed)
            },
            default_slots: 200,
            num_shards: 4,
            workers: 2,
            ..Self::default()
        }
    }

    /// An even smaller budget for multi-tenant tests and the `--smoke`
    /// load generator: dozens of keys warm up in well under a second.
    pub fn tiny(seed: u64) -> Self {
        Self {
            base: OptrrConfig {
                engine: emoo::EngineConfig {
                    population_size: 8,
                    archive_size: 4,
                    generations: 8,
                    mutation_rate: 0.5,
                    density_k: 1,
                },
                omega_slots: 64,
                ..OptrrConfig::fast(0.75, seed)
            },
            default_slots: 64,
            num_shards: 2,
            workers: 2,
            ..Self::default()
        }
    }
}

/// One key's persisted state: enough to re-register it and refill its
/// warm store — and resume its in-flight estimation stream — without an
/// engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeySnapshot {
    /// The registered prior's probabilities.
    pub prior: Vec<f64>,
    /// The privacy bound δ.
    pub delta: f64,
    /// The Ω resolution.
    pub slots: usize,
    /// Engine runs completed before the snapshot (restored so refresh
    /// seeds continue the sequence).
    pub engine_runs: u64,
    /// Drift events observed before the snapshot (restored so `Stats`
    /// keeps reporting the stream's history across restarts). Optional so
    /// older snapshots still decode.
    pub drift_events: Option<u64>,
    /// Aliases bound to the key, sorted.
    pub names: Vec<String>,
    /// The merged warm Ω.
    pub omega: OmegaSet,
    /// The warm-start seed set (the last run's archive), so a refresh
    /// after restore warm-starts exactly like a refresh on the live
    /// service would have. Optional so snapshots written before this
    /// field existed still decode.
    pub warm_seeds: Option<Vec<rr::RrMatrix>>,
    /// The streaming pipeline (pinned channel, merged accumulators,
    /// posterior), when one was pinned. Absent in snapshots written
    /// before pipeline persistence phase 2.
    pub pipeline: Option<PipelineSnapshot>,
}

/// A whole-service snapshot: every registered key in ascending key order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// The persisted keys.
    pub keys: Vec<KeySnapshot>,
}

/// Resolves one run's `finish_run` on every exit path — error return and
/// panic alike — so a failing engine run can never wedge the state machine
/// in `Warming`/`Refreshing`.
struct RunGuard<'a> {
    cell: &'a crate::lifecycle::StateCell,
    landed: bool,
    /// Set when the run failed *and* exhausted the fail budget: the
    /// resolution demotes the key to `Degraded` instead of `Stale`.
    degrade: bool,
}

impl Drop for RunGuard<'_> {
    fn drop(&mut self) {
        self.cell.finish_run_outcome(self.landed, self.degrade);
    }
}

/// Magic prefix of the crash-safe snapshot header. The full header line is
/// `OPTRR-SNAP v1 crc=<fnv64-hex> len=<payload bytes>`, followed by the
/// JSON payload on the next line(s); files without the magic are legacy
/// headerless snapshots and load unverified.
const SNAPSHOT_MAGIC: &str = "OPTRR-SNAP v1 ";

/// Builds the header line for a snapshot payload.
fn snapshot_header(payload: &str) -> String {
    format!(
        "{SNAPSHOT_MAGIC}crc={:016x} len={}",
        crate::faults::fingerprint(payload),
        payload.len()
    )
}

/// Verifies a snapshot header against the payload that followed it:
/// length first (a torn tail fails fast), then the checksum (bit rot and
/// mid-payload tears).
fn verify_snapshot_header(header: &str, payload: &str) -> std::result::Result<(), String> {
    let expected = snapshot_header(payload);
    if header == expected {
        return Ok(());
    }
    let want_len = header
        .split(" len=")
        .nth(1)
        .and_then(|v| v.parse::<usize>().ok());
    match want_len {
        Some(len) if len != payload.len() => Err(format!(
            "is torn: header promises {len} payload bytes, found {}",
            payload.len()
        )),
        _ => Err("fails its checksum".to_string()),
    }
}

/// Outcome of reading one snapshot/sidecar file.
enum SnapshotRead {
    /// No file at the path — the normal "nothing persisted yet" case.
    Missing,
    /// The read itself failed (OS error or injected fault).
    Io(String),
    /// The file exists but is torn, fails its checksum, or has a mangled
    /// header — its contents must not be served.
    Corrupt(String),
    /// The verified payload.
    Ok(String),
}

/// Renders a caught panic payload into the failure reason the typed
/// `RefreshFailed` event carries.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        format!("panic: {text}")
    } else if let Some(text) = payload.downcast_ref::<String>() {
        format!("panic: {text}")
    } else {
        "panic: unknown payload".into()
    }
}

/// The long-lived matrix-serving service.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    registry: Registry,
    pool: WorkerPool,
    started: Instant,
    queries: AtomicU64,
    warm_hits: AtomicU64,
    evictions: AtomicU64,
    obs: Arc<ServeObs>,
    /// The live fault injector, when a chaos plan is configured. `None`
    /// in production: every fault site then short-circuits on one branch.
    faults: Option<Arc<crate::faults::FaultInjector>>,
}

impl Service {
    /// Builds a service and spawns its worker pool. Observability uses
    /// the wall clock; tests that assert on trace timestamps use
    /// [`Service::with_clock`].
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_clock(config, Arc::new(MonotonicClock::new()))
    }

    /// [`Service::new`] with an injected observability clock, so event
    /// traces are deterministic under test.
    pub fn with_clock(config: ServiceConfig, clock: Arc<dyn Clock>) -> Self {
        let pool = WorkerPool::new(config.workers);
        let obs = Arc::new(ServeObs::new(config.metrics, config.trace_cap, clock));
        // Route pool-level panics (jobs that escaped their own
        // containment — refresh runs catch and account theirs) into the
        // observability hub instead of a bare stderr line.
        let pool_obs = Arc::clone(&obs);
        pool.set_panic_hook(move || pool_obs.count_pool_panic());
        let faults = config
            .faults
            .clone()
            .map(|plan| Arc::new(crate::faults::FaultInjector::new(plan)));
        Self {
            config,
            registry: Registry::new(),
            pool,
            started: Instant::now(),
            queries: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs,
            faults,
        }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Borrow the observability hub (the `Metrics`/`Trace` verbs, the
    /// bench, and tests read it; nothing in the service does).
    pub fn obs(&self) -> &Arc<ServeObs> {
        &self.obs
    }

    /// Borrow the registry (tests and the bench inspect counters).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Borrow the live fault injector, when a chaos plan is configured
    /// (`serve::net` consults the `conn_drop` site per request).
    pub(crate) fn fault_injector(&self) -> Option<&Arc<crate::faults::FaultInjector>> {
        self.faults.as_ref()
    }

    /// Milliseconds since this service started — the LRU/TTL clock.
    pub fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Validates and normalizes a weight vector into a prior.
    fn prior_from_weights(weights: &[f64]) -> Result<Categorical> {
        if weights.len() < 2 {
            return Err(ServeError::InvalidRequest(
                "a prior needs at least two categories".into(),
            ));
        }
        Categorical::from_weights(weights)
            .map_err(|e| ServeError::InvalidRequest(format!("invalid prior: {e}")))
    }

    fn validate_delta(delta: f64) -> Result<()> {
        if !(delta > 0.0 && delta <= 1.0) {
            return Err(ServeError::InvalidRequest(format!(
                "delta must be in (0, 1], got {delta}"
            )));
        }
        Ok(())
    }

    /// The engine configuration for one run of one key: the shared budget
    /// template with the key's δ and Ω resolution overlaid and the seed
    /// advanced by the run index, so every run of every key is
    /// deterministic and distinct.
    fn run_config(&self, entry: &KeyEntry, run_index: u64) -> OptrrConfig {
        OptrrConfig {
            delta: entry.delta(),
            omega_slots: entry.num_slots(),
            seed: self.config.base.seed.wrapping_add(run_index),
            ..self.config.base.clone()
        }
    }

    /// The optimization target of one refresh run. Drift- and
    /// coverage-stale keys re-optimize against the estimated posterior
    /// (when one exists and re-optimization is enabled); warm-ups, manual
    /// refreshes, and re-warms target the registered prior.
    fn refresh_target(&self, entry: &KeyEntry, from: KeyState) -> Option<Categorical> {
        if !self.config.reoptimize_on_drift {
            return None;
        }
        match from.stale_reason() {
            Some(StaleReason::Drift) | Some(StaleReason::Coverage) => entry
                .pipeline()
                .and_then(|p| p.posterior())
                .map(|posterior| rr::estimate::handoff_posterior(&posterior, REFRESH_TARGET_BLEND)),
            _ => None,
        }
    }

    /// Executes one engine run for a key and lands the result in its warm
    /// store. Runs on a pool worker (or inline for batch registration).
    fn run_refresh(self: &Arc<Self>, entry: &Arc<KeyEntry>) {
        let from = entry.lifecycle().begin_run();
        let mut guard = RunGuard {
            cell: entry.lifecycle(),
            landed: false,
            degrade: false,
        };
        if from == KeyState::Evicted {
            // The key was evicted between this job's scheduling and its
            // execution (an explicit Refresh after an Evict, or a budget
            // eviction racing a queued drift refresh). Restore the
            // resident state first, so this run *improves* on the
            // pre-eviction Ω and warm-starts from the restored seed chain
            // instead of cold-running into a wiped store.
            self.restore_resident(entry);
            entry.count_rewarm();
        }
        let run_index = entry.claim_run_index();
        let config = self.run_config(entry, run_index);
        // Injected chaos applies only to refreshes of keys that already
        // hold warm data: warm-ups and re-warm replays are the recovery
        // paths every chaos scenario converges through, so they stay
        // fault-free by construction.
        let inject = self.faults.as_deref().filter(|_| from.has_warm_data());
        if let Some(injector) = inject {
            if let Some(pause) = injector.stall(entry.key(), run_index) {
                std::thread::sleep(pause);
            }
        }
        let inject_panic = inject.is_some_and(|i| i.refresh_panic(entry.key(), run_index));
        // The engine run is contained: a panic (injected or genuine)
        // unwinds to here, is converted into a failure, and goes through
        // the same retry/degrade accounting as an engine error.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject_panic {
                panic!(
                    "injected refresh fault (key {:x}, run {run_index})",
                    entry.key()
                );
            }
            // Seeds are consumed only past the injection point, so the
            // retry after an injected panic warm-starts from the exact
            // seed set this run would have used — that, plus the run-index
            // roll-back below, is what keeps a faulted-then-recovered
            // store bitwise-equal to a never-faulted one.
            let warm_seeds = entry.take_warm_seeds();
            let target = self.refresh_target(entry, from);
            Optimizer::new(config).and_then(|optimizer| {
                // Forward per-generation engine snapshots into the event
                // trace. The hook is recording-only (the optimizer ignores
                // it for every decision), so attaching it cannot perturb
                // the run — `None` when metrics are off.
                let optimizer = match self.obs.generation_observer(entry.key()) {
                    Some(hook) => optimizer.with_generation_observer(hook),
                    None => optimizer,
                };
                optimizer.optimize_refresh(entry.prior(), target.as_ref(), warm_seeds)
            })
        }));
        match result {
            Ok(Ok(outcome)) => {
                let stats = &outcome.statistics;
                self.obs.emit(ServeEvent::RefreshRun {
                    key: entry.key(),
                    run_index,
                    generations: stats.generations_run as u64,
                    evaluations: stats.evaluations as u64,
                    pairs_reused: stats.fitness_pairs_reused,
                    pairs_computed: stats.fitness_pairs_computed,
                    landed: true,
                });
                entry.store().absorb(&outcome.omega);
                entry.put_warm_seeds(outcome.warm_seeds());
                entry.put_statistics(outcome.statistics);
                // A landed run ends the failure episode: the key leaves
                // `Degraded` (via the guard) and the streak starts over.
                entry.reset_failure_streak();
                guard.landed = true;
            }
            Ok(Err(error)) => {
                self.note_refresh_failure(entry, &mut guard, from, run_index, error.to_string());
            }
            Err(payload) => {
                self.note_refresh_failure(
                    entry,
                    &mut guard,
                    from,
                    run_index,
                    panic_message(payload),
                );
            }
        }
        // Enforce the budget before the run resolves, so a waiter woken by
        // this run never observes the accounting above budget.
        self.enforce_memory(entry.key());
        drop(guard);
    }

    /// Accounts one failed (errored or panicked) refresh run: typed
    /// telemetry, bounded exponential-backoff retry, and — once the fail
    /// budget is exhausted — graceful degradation to the last-good store.
    fn note_refresh_failure(
        self: &Arc<Self>,
        entry: &Arc<KeyEntry>,
        guard: &mut RunGuard<'_>,
        from: KeyState,
        run_index: u64,
        reason: String,
    ) {
        self.obs.emit(ServeEvent::RefreshRun {
            key: entry.key(),
            run_index,
            generations: 0,
            evaluations: 0,
            pairs_reused: 0,
            pairs_computed: 0,
            landed: false,
        });
        eprintln!(
            "optrr-serve: refresh of key {:x} (run {run_index}) failed: {reason}",
            entry.key()
        );
        if !from.has_warm_data() {
            // A failed warm-up resolves warm-and-empty exactly as before
            // this retry policy existed: there is no last-good Ω to
            // degrade to, and a NoMatch answer beats a retry loop against
            // a configuration the optimizer rejects deterministically.
            return;
        }
        // Roll the claimed run index back so the retry — or the eventual
        // recovery refresh — re-runs the *same* deterministic seed
        // instead of burning it.
        entry.unclaim_run_index(run_index);
        let streak = entry.count_refresh_failure();
        self.obs.emit(ServeEvent::RefreshFailed {
            key: entry.key(),
            run_index,
            streak,
            reason,
        });
        if streak >= self.config.fail_budget {
            // Budget exhausted: stop the automatic retries and serve the
            // last-good store, flagged degraded, until a later (manual or
            // drift-scheduled) refresh lands and restores `Warm`.
            guard.degrade = true;
            self.obs.emit(ServeEvent::Degraded {
                key: entry.key(),
                failures: streak,
            });
            return;
        }
        entry.count_retry();
        let delay = self.retry_delay(streak);
        self.obs.emit(ServeEvent::RefreshRetry {
            key: entry.key(),
            attempt: streak,
            delay_ms: delay.as_millis() as u64,
        });
        let service = Arc::clone(self);
        let job = Arc::clone(entry);
        // The backoff sleeps *inside* the retry job, on a pool worker:
        // the job is already pending when this run resolves, so
        // `wait_idle` (and the protocol's `Sync`) remain true barriers
        // over the whole retry chain.
        self.pool.submit(move || {
            std::thread::sleep(delay);
            service.run_refresh(&job);
        });
    }

    /// Deterministic exponential backoff: attempt `n` (1-based) waits
    /// `retry_base_ms << (n - 1)` milliseconds, saturating at
    /// `retry_max_ms`.
    fn retry_delay(&self, attempt: u64) -> Duration {
        let exponent = attempt.saturating_sub(1).min(20) as u32;
        let ms = self
            .config
            .retry_base_ms
            .saturating_mul(1u64 << exponent)
            .min(self.config.retry_max_ms);
        Duration::from_millis(ms)
    }

    /// Restores an evicted key's resident state (store, seeds, pipeline):
    /// from its eviction sidecar when persistence is configured
    /// (bitwise-identical restore), by deterministically replaying its
    /// engine-run sequence otherwise (bitwise-identical for
    /// prior-targeted run histories — a replay cannot recover the
    /// posterior a dropped pipeline once held). Touches only resident
    /// structures, never the state machine; callers hold a run claim.
    fn restore_resident(self: &Arc<Self>, entry: &Arc<KeyEntry>) -> bool {
        if self.restore_from_sidecar(entry) {
            return true;
        }
        let runs = entry.engine_runs().max(1);
        let mut seeds = Vec::new();
        let mut replayed = true;
        for run_index in 0..runs {
            let config = self.run_config(entry, run_index);
            match Optimizer::new(config)
                .and_then(|o| o.optimize_distribution_seeded(entry.prior(), seeds))
            {
                Ok(outcome) => {
                    entry.store().absorb(&outcome.omega);
                    seeds = outcome.warm_seeds();
                    entry.put_statistics(outcome.statistics);
                }
                Err(error) => {
                    eprintln!(
                        "optrr-serve: re-warm of key {:x} failed at run {run_index}: {error}",
                        entry.key()
                    );
                    replayed = false;
                    seeds = Vec::new();
                    break;
                }
            }
        }
        entry.put_warm_seeds(seeds);
        replayed
    }

    /// Re-warms an evicted key on a pool worker (the query path's
    /// transparent restore; see [`Service::restore_resident`]).
    fn run_rewarm(self: &Arc<Self>, entry: &Arc<KeyEntry>) {
        entry.lifecycle().begin_run();
        let mut guard = RunGuard {
            cell: entry.lifecycle(),
            landed: false,
            degrade: false,
        };
        guard.landed = self.restore_resident(entry);
        entry.count_rewarm();
        self.obs.emit(ServeEvent::Rewarmed { key: entry.key() });
        entry.touch(self.now_ms());
        // As in run_refresh: budget holds before any waiter wakes.
        self.enforce_memory(entry.key());
        drop(guard);
    }

    /// Blocks until the entry can answer queries, claiming and scheduling
    /// a re-warm when it finds the key evicted. The re-warm claim is a
    /// compare-exchange, so any number of concurrent queries on an evicted
    /// key schedule exactly one re-warm between them.
    pub fn ensure_live(self: &Arc<Self>, entry: &Arc<KeyEntry>) {
        loop {
            let state = entry.state();
            if state.has_warm_data() {
                return;
            }
            if state == KeyState::Evicted {
                if entry.lifecycle().claim_rewarm() {
                    let service = Arc::clone(self);
                    let job = Arc::clone(entry);
                    self.pool.submit(move || service.run_rewarm(&job));
                }
                continue;
            }
            entry.lifecycle().wait_while_warming();
        }
    }

    /// Registers one prior under a privacy bound, returning its entry.
    /// Newly created keys get a warm-up run scheduled on the worker pool;
    /// with `block_until_warm` the call waits for warm data.
    pub fn register(
        self: &Arc<Self>,
        name: Option<&str>,
        weights: &[f64],
        delta: f64,
        slots: Option<usize>,
        block_until_warm: bool,
    ) -> Result<Arc<KeyEntry>> {
        Self::validate_delta(delta)?;
        let prior = Self::prior_from_weights(weights)?;
        let num_slots = slots
            .unwrap_or(self.config.default_slots)
            .clamp(1, MAX_OMEGA_SLOTS);
        let (entry, _created) = self.registry.insert_or_get_observed(
            &prior,
            delta,
            num_slots,
            self.config.num_shards,
            |key| self.obs.transition_sink(key),
        );
        if let Some(name) = name {
            self.registry.bind_name(name, entry.key());
        }
        // The warm-up claim is the exactly-once gate: whichever concurrent
        // registration wins the Cold → Warming compare-exchange schedules
        // the single warm-up run.
        if entry.lifecycle().claim_warmup() {
            let service = Arc::clone(self);
            let job_entry = Arc::clone(&entry);
            self.pool.submit(move || service.run_refresh(&job_entry));
        }
        entry.touch(self.now_ms());
        if block_until_warm {
            self.ensure_live(&entry);
        }
        Ok(entry)
    }

    /// Registers many priors under one δ and warms the cold ones in one
    /// parallel batch via [`Optimizer::optimize_many`] — the multi-prior
    /// batch front door. Returns the entries in input order plus the number
    /// of engine runs the batch actually needed (already-warm keys are
    /// reused, not re-run).
    pub fn register_batch(
        self: &Arc<Self>,
        names: Option<&[String]>,
        priors: &[Vec<f64>],
        delta: f64,
        slots: Option<usize>,
    ) -> Result<(Vec<Arc<KeyEntry>>, usize)> {
        Self::validate_delta(delta)?;
        if priors.is_empty() {
            return Ok((Vec::new(), 0));
        }
        let num_slots = slots
            .unwrap_or(self.config.default_slots)
            .clamp(1, MAX_OMEGA_SLOTS);
        let now = self.now_ms();
        let mut entries = Vec::with_capacity(priors.len());
        let mut cold: Vec<(usize, Categorical)> = Vec::new();
        for (index, weights) in priors.iter().enumerate() {
            let prior = Self::prior_from_weights(weights)?;
            let (entry, _) = self.registry.insert_or_get_observed(
                &prior,
                delta,
                num_slots,
                self.config.num_shards,
                |key| self.obs.transition_sink(key),
            );
            if let Some(name) = names.and_then(|n| n.get(index)) {
                self.registry.bind_name(name, entry.key());
            }
            if entry.lifecycle().claim_warmup() {
                cold.push((index, prior));
            }
            entry.touch(now);
            entries.push(entry);
        }
        if !cold.is_empty() {
            // One optimizer fans the cold priors across cores; every run
            // uses the base seed (run index 0), exactly like a solo
            // warm-up, so batch and solo registration are bit-identical.
            let cold_priors: Vec<Categorical> = cold.iter().map(|(_, p)| p.clone()).collect();
            let config = self.run_config(&entries[cold[0].0], 0);
            let ran = Optimizer::new(config).and_then(|o| o.optimize_many(&cold_priors));
            match ran {
                Ok(outcomes) => {
                    for ((index, _), outcome) in cold.iter().zip(outcomes) {
                        let entry = &entries[*index];
                        entry.lifecycle().begin_run();
                        entry.claim_run_index();
                        entry.store().absorb(&outcome.omega);
                        entry.put_warm_seeds(outcome.warm_seeds());
                        entry.put_statistics(outcome.statistics);
                        entry.lifecycle().finish_run(true);
                    }
                }
                Err(error) => {
                    // The cold entries are already in the registry; mirror
                    // a failed solo warm-up (run counted, state resolved
                    // warm-and-empty) so they answer NoMatch instead of
                    // wedging every later query and re-registration.
                    for (index, _) in &cold {
                        let entry = &entries[*index];
                        entry.lifecycle().begin_run();
                        entry.claim_run_index();
                        entry.lifecycle().finish_run(false);
                    }
                    return Err(error.into());
                }
            }
            self.enforce_memory(u64::MAX);
        }
        Ok((entries, cold.len()))
    }

    /// Resolves a key/name pair to a registered entry.
    pub fn resolve(&self, key: Option<u64>, name: Option<&str>) -> Result<Arc<KeyEntry>> {
        self.registry.resolve(key, name).ok_or_else(|| {
            ServeError::InvalidRequest(match (key, name) {
                (Some(k), _) => format!("unknown key {k}"),
                (None, Some(n)) => format!("unknown name {n:?}"),
                (None, None) => "a query needs a key or a name".into(),
            })
        })
    }

    /// Counts one query against an entry, noting whether it was served
    /// without waiting (warm hit) or had to wait for warm-up/re-warm.
    fn count_query(self: &Arc<Self>, entry: &Arc<KeyEntry>) {
        let was_warm = entry.is_warm();
        self.ensure_live(entry);
        entry.count_query();
        entry.touch(self.now_ms());
        self.queries.fetch_add(1, Ordering::SeqCst);
        if was_warm {
            self.warm_hits.fetch_add(1, Ordering::SeqCst);
        }
        // The hottest instrumentation site: one branch plus at most two
        // relaxed increments, no trace event, no timestamp.
        self.obs.count_query(was_warm);
    }

    /// Counts a coverage miss — a point query no stored matrix satisfied —
    /// and past the configured threshold marks the key coverage-stale and
    /// schedules one refresh (the query-shape staleness trigger).
    fn note_coverage_miss(self: &Arc<Self>, entry: &Arc<KeyEntry>) {
        let misses = entry.count_coverage_miss();
        self.obs.count_coverage_miss();
        let threshold = self.config.coverage_miss_threshold;
        if threshold > 0
            && misses >= threshold
            && entry.lifecycle().try_mark_stale(StaleReason::Coverage)
        {
            self.obs.emit(ServeEvent::CoverageTrip {
                key: entry.key(),
                misses,
            });
            // A won claim starts a new episode: the count begins again,
            // so a floor the refresh still cannot cover costs one engine
            // run per `threshold` misses, not one per miss.
            entry.reset_coverage_misses();
            self.schedule_runs(entry, 1);
        }
    }

    /// Point query: best stored matrix with privacy ≥ `min_privacy`.
    /// Misses feed the coverage-staleness telemetry.
    pub fn best_for_privacy(
        self: &Arc<Self>,
        entry: &Arc<KeyEntry>,
        min_privacy: f64,
    ) -> Option<optrr::OmegaEntry> {
        self.count_query(entry);
        let found = entry.store().best_for_privacy_at_least(min_privacy);
        if found.is_none() {
            self.note_coverage_miss(entry);
        }
        found
    }

    /// Point query: best stored matrix with MSE ≤ `max_mse`.
    pub fn best_for_mse(
        self: &Arc<Self>,
        entry: &Arc<KeyEntry>,
        max_mse: f64,
    ) -> Option<optrr::OmegaEntry> {
        self.count_query(entry);
        entry.store().best_for_mse_at_most(max_mse)
    }

    /// Front query: the warm store's non-dominated (privacy, MSE) points.
    pub fn front(self: &Arc<Self>, entry: &Arc<KeyEntry>) -> Vec<optrr::FrontPoint> {
        self.count_query(entry);
        let merged = entry.store().merge();
        merged
            .pareto_entries()
            .iter()
            .map(|e| optrr::FrontPoint::from_evaluation(&e.evaluation))
            .collect()
    }

    /// Submits `runs` refresh jobs for an entry.
    pub(crate) fn schedule_runs(self: &Arc<Self>, entry: &Arc<KeyEntry>, runs: usize) {
        for _ in 0..runs {
            let service = Arc::clone(self);
            let job_entry = Arc::clone(entry);
            self.pool.submit(move || service.run_refresh(&job_entry));
        }
    }

    /// Marks a key manually stale and schedules `runs` refresh engine runs
    /// on the worker pool. Returns the number scheduled.
    pub fn refresh(self: &Arc<Self>, entry: &Arc<KeyEntry>, runs: usize) -> usize {
        let runs = runs.clamp(1, MAX_REFRESH_RUNS);
        // A drift- or coverage-stale key keeps its recorded reason (the
        // compare-exchange fails); the scheduled runs execute either way.
        entry.lifecycle().try_mark_stale(StaleReason::Manual);
        self.schedule_runs(entry, runs);
        runs
    }

    /// Evicts a key's resident state (Ω matrices, warm-start seeds, pinned
    /// pipeline) if it is idle, writing its eviction sidecar first when
    /// persistence is configured. Returns the bytes freed, or `None` when
    /// the key was not evictable (cold, warming, already evicted, or a run
    /// in flight).
    pub fn evict_key(&self, entry: &Arc<KeyEntry>) -> Option<u64> {
        // The claim parks the key in `Evicting`: queries, re-warm claims,
        // and queued runs wait until `finish_evict`, so the sidecar write
        // and the drop below are atomic to every observer — a concurrent
        // re-warm can neither read a half-dropped store nor land a fresh
        // one for this eviction to wipe.
        if !entry.lifecycle().try_evict() {
            return None;
        }
        if let Some(base) = &self.config.snapshot_path {
            let snapshot = self.key_snapshot(entry);
            let path = Self::sidecar_path(base, entry.key());
            let encoded = serde_json::to_string(&snapshot).expect("snapshots serialize");
            if let Err(error) = self.write_snapshot_file(&path, &encoded) {
                // A failed sidecar write degrades the eviction to
                // replay-on-rewarm, it never blocks it: the key's state is
                // still recoverable deterministically.
                eprintln!("optrr-serve: eviction sidecar {path:?} failed: {error}");
            }
        }
        let freed = entry.drop_resident_state();
        self.evictions.fetch_add(1, Ordering::SeqCst);
        self.obs.emit(ServeEvent::Evicted {
            key: entry.key(),
            bytes_freed: freed,
        });
        entry.lifecycle().finish_evict();
        Some(freed)
    }

    /// The per-key eviction sidecar next to the configured snapshot path.
    fn sidecar_path(base: &str, key: u64) -> String {
        format!("{base}.key-{key:016x}.json")
    }

    /// Writes one snapshot/sidecar payload crash-safely: a version +
    /// checksum header is prepended, the whole file goes to `<path>.tmp`,
    /// is fsynced, and only then renamed over `path` — so a crash (or an
    /// injected torn write) at any point leaves either the previous
    /// generation or a complete new one at `path`, never a torn file.
    fn write_snapshot_file(&self, path: &str, payload: &str) -> Result<()> {
        if let Some(injector) = &self.faults {
            if injector.snapshot_write_error(path) {
                return Err(ServeError::Snapshot(format!(
                    "injected write fault for {path:?}"
                )));
            }
        }
        let header = snapshot_header(payload);
        let full = format!("{header}\n{payload}\n");
        let tmp = format!("{path}.tmp");
        let bytes = full.as_bytes();
        let torn = self
            .faults
            .as_ref()
            .and_then(|injector| injector.torn_write(path, bytes.len()));
        if let Some(cut) = torn {
            // Simulated crash mid-write: a truncated prefix reaches the
            // temporary file and the rename never happens — the previous
            // generation at `path` stays intact.
            let _ = std::fs::write(&tmp, &bytes[..cut]);
            return Err(ServeError::Snapshot(format!(
                "injected torn write for {path:?} (cut at byte {cut} of {})",
                bytes.len()
            )));
        }
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut file, bytes)?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        };
        write().map_err(|e| ServeError::Snapshot(format!("write {path:?} failed: {e}")))
    }

    /// Reads one snapshot/sidecar file back, verifying the crash-safety
    /// header when present. Files written before the header existed
    /// (no `OPTRR-SNAP` magic) are accepted as-is, so old snapshots keep
    /// loading.
    fn read_snapshot_file(&self, path: &str) -> SnapshotRead {
        if let Some(injector) = &self.faults {
            if injector.snapshot_read_error(path) {
                return SnapshotRead::Io(format!("injected read fault for {path:?}"));
            }
        }
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return SnapshotRead::Missing,
            Err(e) => return SnapshotRead::Io(format!("read {path:?} failed: {e}")),
        };
        if !text.starts_with(SNAPSHOT_MAGIC) {
            // Legacy headerless file: nothing to verify.
            return SnapshotRead::Ok(text.trim().to_string());
        }
        let Some((header, rest)) = text.split_once('\n') else {
            return SnapshotRead::Corrupt(format!("{path:?} is truncated inside its header"));
        };
        let payload = rest.strip_suffix('\n').unwrap_or(rest);
        match verify_snapshot_header(header, payload) {
            Ok(()) => SnapshotRead::Ok(payload.to_string()),
            Err(reason) => SnapshotRead::Corrupt(format!("{path:?} {reason}")),
        }
    }

    /// Restores an evicted key from its eviction sidecar, when persistence
    /// is configured and the sidecar decodes. Returns whether it did; any
    /// failure other than "no sidecar exists" emits a typed
    /// [`ServeEvent::SnapshotLoadFailed`] (bumping
    /// `serve_snapshot_load_failures_total`) and falls back to the
    /// deterministic engine replay — a torn or unreadable sidecar is
    /// never served and never silently ignored.
    fn restore_from_sidecar(self: &Arc<Self>, entry: &Arc<KeyEntry>) -> bool {
        let Some(base) = &self.config.snapshot_path else {
            return false;
        };
        let path = Self::sidecar_path(base, entry.key());
        let failed = |reason: String| {
            self.obs.emit(ServeEvent::SnapshotLoadFailed {
                path: path.clone(),
                reason: reason.clone(),
            });
            eprintln!("optrr-serve: eviction sidecar {path:?} unusable ({reason}); replaying runs");
            false
        };
        let text = match self.read_snapshot_file(&path) {
            SnapshotRead::Missing => return false,
            SnapshotRead::Io(reason) => return failed(reason),
            SnapshotRead::Corrupt(reason) => return failed(reason),
            SnapshotRead::Ok(text) => text,
        };
        let snapshot = match serde_json::from_str::<KeySnapshot>(text.trim()) {
            Ok(snapshot) => snapshot,
            Err(e) => return failed(format!("did not decode: {e}")),
        };
        if snapshot.omega.num_slots() != entry.num_slots() {
            return failed(format!(
                "omega has {} slots, registration says {}",
                snapshot.omega.num_slots(),
                entry.num_slots()
            ));
        }
        entry.store().absorb(&snapshot.omega);
        if let Some(seeds) = &snapshot.warm_seeds {
            if !seeds.is_empty() {
                entry.put_warm_seeds(seeds.clone());
            }
        }
        if let Some(pipeline) = &snapshot.pipeline {
            match crate::pipeline::KeyPipeline::restore(pipeline, self.config.num_shards) {
                Ok(restored) => {
                    self.obs
                        .emit(ServeEvent::SamplerRebuild { key: entry.key() });
                    entry.install_pipeline(restored);
                }
                Err(reason) => {
                    eprintln!(
                        "optrr-serve: sidecar pipeline of key {:x} skipped: {reason}",
                        entry.key()
                    );
                }
            }
        }
        true
    }

    /// Evicts expired keys (TTL) and then least-recently-touched keys
    /// until resident bytes fit the budget. `protect` is never evicted
    /// (the key that just grew — evicting it immediately would thrash).
    fn enforce_memory(&self, protect: u64) {
        self.sweep_ttl();
        let Some(budget) = self.config.memory_budget_bytes else {
            return;
        };
        // One registry-wide byte sum, then subtract what each eviction
        // frees — not a recount per victim, which would make a budget
        // squeeze quadratic in the key count.
        let mut resident = self.registry.resident_bytes();
        while resident > budget {
            let Some(victim) = self.registry.lru_evictable(protect) else {
                break;
            };
            match self.evict_key(&victim) {
                Some(freed) => resident = resident.saturating_sub(freed),
                None => break,
            }
        }
    }

    /// Evicts every idle key untouched for longer than the configured TTL.
    fn sweep_ttl(&self) {
        let Some(ttl) = self.config.key_ttl else {
            return;
        };
        let ttl_ms = ttl.as_millis() as u64;
        let now = self.now_ms();
        for entry in self.registry.entries() {
            if entry.state().has_warm_data()
                && entry.lifecycle().inflight() == 0
                && now.saturating_sub(entry.last_touch_ms()) > ttl_ms
            {
                self.evict_key(&entry);
            }
        }
    }

    /// Blocks until all scheduled engine runs have finished.
    pub fn wait_idle(&self) {
        self.pool.wait_idle();
    }

    /// Per-key statistics snapshot.
    pub fn key_stats(&self, entry: &KeyEntry) -> KeyStatsDto {
        let range = entry.store().privacy_range();
        // Refresh telemetry from the most recent engine run: how much
        // pairwise fitness state the incremental kernel reused.
        let (fitness_pairs_reused, fitness_pairs_computed) = entry
            .last_statistics()
            .map(|s| (s.fitness_pairs_reused, s.fitness_pairs_computed))
            .unwrap_or((0, 0));
        KeyStatsDto {
            key: entry.key(),
            warm: entry.is_warm(),
            stale: entry.is_stale(),
            filled_slots: entry.store().len(),
            num_slots: entry.num_slots(),
            engine_runs: entry.engine_runs(),
            queries: entry.queries(),
            state: entry.state().to_string(),
            resident_bytes: entry.resident_bytes(),
            drift_events: entry.drift_events(),
            coverage_misses: entry.coverage_misses(),
            evictions: entry.evictions(),
            rewarms: entry.rewarms(),
            privacy_lo: range.map(|(lo, _)| lo),
            privacy_hi: range.map(|(_, hi)| hi),
            fitness_pairs_reused,
            fitness_pairs_computed,
            refresh_failures: entry.refresh_failures(),
            retries: entry.retries(),
            degraded: entry.state().is_degraded(),
        }
    }

    /// Service-wide robustness counters:
    /// `(refresh_failures, retries, degraded keys)`.
    pub fn robustness_stats(&self) -> (u64, u64, usize) {
        let entries = self.registry.entries();
        (
            entries.iter().map(|e| e.refresh_failures()).sum(),
            entries.iter().map(|e| e.retries()).sum(),
            entries.iter().filter(|e| e.state().is_degraded()).count(),
        )
    }

    /// Service-wide counters: `(keys, engine_runs, queries, warm_hits)`.
    pub fn service_stats(&self) -> (usize, u64, u64, u64) {
        let engine_runs = self
            .registry
            .entries()
            .iter()
            .map(|e| e.engine_runs())
            .sum();
        (
            self.registry.len(),
            engine_runs,
            self.queries.load(Ordering::SeqCst),
            self.warm_hits.load(Ordering::SeqCst),
        )
    }

    /// Memory-policy counters:
    /// `(resident_bytes, budget_bytes, evictions)`.
    pub fn memory_stats(&self) -> (u64, Option<u64>, u64) {
        (
            self.registry.resident_bytes(),
            self.config.memory_budget_bytes,
            self.evictions.load(Ordering::SeqCst),
        )
    }

    /// One key's snapshot, including its pinned pipeline when any.
    fn key_snapshot(&self, entry: &KeyEntry) -> KeySnapshot {
        KeySnapshot {
            prior: entry.prior().probs().to_vec(),
            delta: entry.delta(),
            slots: entry.num_slots(),
            engine_runs: entry.engine_runs(),
            drift_events: Some(entry.drift_events()),
            names: self.registry.names_of(entry.key()),
            omega: entry.store().merge(),
            warm_seeds: Some(entry.take_warm_seeds()),
            pipeline: entry.pipeline().map(|p| p.snapshot()),
        }
    }

    /// Serializable snapshot of the whole registry: every key's
    /// registration metadata, run counter, aliases, merged warm Ω, and
    /// pinned pipeline, in ascending key order. Scheduled engine runs are
    /// drained first so the snapshot is consistent.
    pub fn snapshot(&self) -> ServiceSnapshot {
        self.wait_idle();
        let mut entries = self.registry.entries();
        entries.sort_by_key(|e| e.key());
        let mut names = self.registry.names_by_key();
        ServiceSnapshot {
            keys: entries
                .iter()
                .map(|entry| KeySnapshot {
                    prior: entry.prior().probs().to_vec(),
                    delta: entry.delta(),
                    slots: entry.num_slots(),
                    engine_runs: entry.engine_runs(),
                    drift_events: Some(entry.drift_events()),
                    names: names.remove(&entry.key()).unwrap_or_default(),
                    omega: entry.store().merge(),
                    warm_seeds: Some(entry.take_warm_seeds()),
                    pipeline: entry.pipeline().map(|p| p.snapshot()),
                })
                .collect(),
        }
    }

    /// Writes a snapshot of the warm stores to `path`. Returns the number
    /// of keys saved.
    pub fn save_snapshot(&self, path: &str) -> Result<usize> {
        let snapshot = self.snapshot();
        let encoded = serde_json::to_string(&snapshot)
            .map_err(|e| ServeError::Snapshot(format!("encode failed: {e}")))?;
        self.write_snapshot_file(path, &encoded)?;
        self.obs.emit(ServeEvent::SnapshotSaved {
            keys: snapshot.keys.len() as u64,
        });
        Ok(snapshot.keys.len())
    }

    /// Writes the configured snapshot automatically (on `Sync`, shutdown,
    /// and library callers that want the same behavior). A failure is
    /// reported on stderr, never escalated — an autosave must not take the
    /// serving loop down.
    pub fn autosave(&self) {
        let Some(path) = self.config.snapshot_path.clone() else {
            return;
        };
        if let Err(error) = self.save_snapshot(&path) {
            eprintln!("optrr-serve: autosave to {path:?} failed: {error}");
        }
    }

    /// Loads a snapshot file into the registry: missing keys are created
    /// *warm* (no engine run — the whole point of persistence), existing
    /// keys absorb the snapshot's Ω, which only ever improves them.
    /// Pipeline snapshots resume in-flight estimation streams on keys that
    /// have none pinned yet. Returns `(created, merged)`.
    pub fn load_snapshot(self: &Arc<Self>, path: &str) -> Result<(usize, usize)> {
        let text = match self.read_snapshot_file(path) {
            SnapshotRead::Missing => {
                return Err(ServeError::Snapshot(format!(
                    "read {path:?} failed: not found"
                )))
            }
            SnapshotRead::Io(reason) => return Err(ServeError::Snapshot(reason)),
            SnapshotRead::Corrupt(reason) => {
                self.obs.emit(ServeEvent::SnapshotLoadFailed {
                    path: path.to_string(),
                    reason: reason.clone(),
                });
                return Err(ServeError::SnapshotCorrupt(reason));
            }
            SnapshotRead::Ok(text) => text,
        };
        let snapshot: ServiceSnapshot = serde_json::from_str(text.trim()).map_err(|e| {
            let reason = format!("decode {path:?} failed: {e}");
            self.obs.emit(ServeEvent::SnapshotLoadFailed {
                path: path.to_string(),
                reason: reason.clone(),
            });
            ServeError::SnapshotCorrupt(reason)
        })?;
        let mut created_count = 0usize;
        let mut merged_count = 0usize;
        let now = self.now_ms();
        for key in &snapshot.keys {
            Self::validate_delta(key.delta)?;
            let prior = Self::prior_from_weights(&key.prior)?;
            let slots = key.slots.clamp(1, MAX_OMEGA_SLOTS);
            if key.omega.num_slots() != slots {
                return Err(ServeError::Snapshot(format!(
                    "key omega has {} slots, registration says {slots}",
                    key.omega.num_slots()
                )));
            }
            // Every stored matrix must act on the registered domain, or a
            // later Ingest would pin a wrong-sized channel and estimation
            // would die on a dimension mismatch.
            if let Some(entry) = key
                .omega
                .entries()
                .find(|e| e.matrix.num_categories() != prior.num_categories())
            {
                return Err(ServeError::Snapshot(format!(
                    "key omega holds a {}-category matrix for a {}-category prior",
                    entry.matrix.num_categories(),
                    prior.num_categories()
                )));
            }
            if let Some(pipeline) = &key.pipeline {
                if pipeline.matrix.num_categories() != prior.num_categories() {
                    return Err(ServeError::Snapshot(format!(
                        "key pipeline pins a {}-category matrix for a {}-category prior",
                        pipeline.matrix.num_categories(),
                        prior.num_categories()
                    )));
                }
            }
            let (entry, created) = self.registry.insert_or_get_observed(
                &prior,
                key.delta,
                slots,
                self.config.num_shards,
                |key| self.obs.transition_sink(key),
            );
            for name in &key.names {
                self.registry.bind_name(name, entry.key());
            }
            // A key persisted with engine runs behind it but an *empty* Ω
            // was evicted before the snapshot was written; restoring it
            // "warm" would pin it empty forever (warm keys never re-warm).
            // Restore it evicted instead: the next query re-warms it from
            // its eviction sidecar or by engine replay.
            let persisted_evicted = key.omega.is_empty() && key.engine_runs > 0;
            if persisted_evicted {
                if created {
                    entry.restore_engine_runs(key.engine_runs);
                    entry.restore_drift_events(key.drift_events.unwrap_or(0));
                    entry.lifecycle().restore_evicted();
                }
                entry.touch(now);
            } else {
                // Hold a run claim while the snapshot lands: a concurrent
                // budget/TTL eviction cannot interleave with the absorb
                // (try_evict refuses keys with runs in flight), and the
                // claim itself waits out any eviction already mid-drop —
                // then resolves the key Warm with the loaded data.
                entry.lifecycle().begin_run();
                entry.store().absorb(&key.omega);
                // Seeds restore only where none are held: a live
                // service's own (newer) archive wins over the snapshot's.
                if let Some(seeds) = &key.warm_seeds {
                    if !seeds.is_empty() && entry.take_warm_seeds().is_empty() {
                        entry.put_warm_seeds(seeds.clone());
                    }
                }
                let pipeline_restore = match &key.pipeline {
                    Some(pipeline) if entry.pipeline().is_none() => {
                        crate::pipeline::KeyPipeline::restore(pipeline, self.config.num_shards)
                            .map(Some)
                    }
                    _ => Ok(None),
                };
                match &pipeline_restore {
                    Ok(Some(_)) | Ok(None) => {}
                    Err(_) => {
                        // Release the claim before surfacing the error,
                        // or the key would hang in Warming forever.
                        entry.lifecycle().finish_run(false);
                    }
                }
                if let Some(restored) = pipeline_restore.map_err(ServeError::Snapshot)? {
                    self.obs
                        .emit(ServeEvent::SamplerRebuild { key: entry.key() });
                    entry.install_pipeline(restored);
                }
                if created {
                    entry.restore_engine_runs(key.engine_runs);
                }
                if let Some(drift_events) = key.drift_events {
                    if drift_events > entry.drift_events() {
                        entry.restore_drift_events(drift_events);
                    }
                }
                entry.touch(now);
                entry.lifecycle().finish_run(true);
            }
            if created {
                created_count += 1;
            } else {
                merged_count += 1;
            }
        }
        self.enforce_memory(u64::MAX);
        self.obs.emit(ServeEvent::SnapshotLoaded {
            created: created_count as u64,
            merged: merged_count as u64,
        });
        Ok((created_count, merged_count))
    }

    /// Converts an estimate outcome into its transport form.
    fn estimate_dto(outcome: crate::pipeline::EstimateOutcome, degraded: bool) -> EstimateDto {
        EstimateDto {
            key: outcome.key,
            method: outcome.method.to_string(),
            distribution: outcome.distribution.probs().to_vec(),
            iterations: outcome.iterations,
            residual: outcome.residual,
            mse_vs_prior: outcome.mse_vs_prior,
            total_responses: outcome.total_responses,
            batches: outcome.batches,
            drifted: outcome.drifted,
            stale: outcome.stale,
            degraded,
        }
    }

    /// Whether a key is currently serving degraded (last-good) data.
    fn degraded_flag(&self, entry: &KeyEntry) -> bool {
        entry.state().is_degraded()
    }

    /// Handles one protocol request, mapping library errors to
    /// [`Response::Error`] with the stable [`ServeError::code`] taxonomy.
    pub fn handle(self: &Arc<Self>, request: Request) -> Response {
        match self.try_handle(request) {
            Ok(response) => response,
            Err(error) => Response::Error {
                reason: error.to_string(),
                code: error.code().to_string(),
            },
        }
    }

    fn try_handle(self: &Arc<Self>, request: Request) -> Result<Response> {
        Ok(match request {
            Request::Register {
                name,
                prior,
                delta,
                slots,
                lazy,
            } => {
                let block = !lazy.unwrap_or(false);
                let entry = self.register(name.as_deref(), &prior, delta, slots, block)?;
                Response::Registered {
                    key: entry.key(),
                    warm: entry.is_warm(),
                    filled_slots: entry.store().len(),
                    engine_runs: entry.engine_runs(),
                }
            }
            Request::RegisterBatch {
                names,
                priors,
                delta,
                slots,
            } => {
                let (entries, warmed) =
                    self.register_batch(names.as_deref(), &priors, delta, slots)?;
                Response::RegisteredBatch {
                    keys: entries.iter().map(|e| e.key()).collect(),
                    warmed,
                }
            }
            Request::BestForPrivacy {
                key,
                name,
                min_privacy,
            } => {
                let entry = self.resolve(key, name.as_deref())?;
                match self.best_for_privacy(&entry, min_privacy) {
                    Some(found) => Response::Matrix {
                        key: entry.key(),
                        privacy: found.evaluation.privacy,
                        mse: found.evaluation.mse,
                        max_posterior: found.evaluation.max_posterior,
                        matrix: MatrixDto::from_matrix(&found.matrix),
                        degraded: self.degraded_flag(&entry),
                    },
                    None => Response::NoMatch {
                        key: entry.key(),
                        reason: format!("no stored matrix with privacy >= {min_privacy}"),
                        degraded: self.degraded_flag(&entry),
                    },
                }
            }
            Request::BestForMse { key, name, max_mse } => {
                let entry = self.resolve(key, name.as_deref())?;
                match self.best_for_mse(&entry, max_mse) {
                    Some(found) => Response::Matrix {
                        key: entry.key(),
                        privacy: found.evaluation.privacy,
                        mse: found.evaluation.mse,
                        max_posterior: found.evaluation.max_posterior,
                        matrix: MatrixDto::from_matrix(&found.matrix),
                        degraded: self.degraded_flag(&entry),
                    },
                    None => Response::NoMatch {
                        key: entry.key(),
                        reason: format!("no stored matrix with mse <= {max_mse}"),
                        degraded: self.degraded_flag(&entry),
                    },
                }
            }
            Request::Front { key, name } => {
                let entry = self.resolve(key, name.as_deref())?;
                Response::Front {
                    key: entry.key(),
                    points: self.front(&entry),
                    degraded: self.degraded_flag(&entry),
                }
            }
            Request::Ingest {
                key,
                name,
                min_privacy,
                records,
                counts,
                seed,
            } => {
                let entry = self.resolve(key, name.as_deref())?;
                let outcome = self.ingest(
                    &entry,
                    min_privacy,
                    records.as_deref(),
                    counts.as_deref(),
                    seed,
                )?;
                Response::Ingested {
                    key: outcome.key,
                    accepted: outcome.accepted,
                    retained: outcome.retained,
                    total: outcome.total,
                    batches: outcome.batches,
                    privacy: outcome.privacy,
                }
            }
            Request::Disguise {
                key,
                name,
                min_privacy,
                records,
                seed,
            } => {
                let entry = self.resolve(key, name.as_deref())?;
                let (evaluation, disguised, retained) =
                    self.disguise(&entry, min_privacy, &records, seed)?;
                Response::Disguised {
                    key: entry.key(),
                    privacy: evaluation.privacy,
                    mse: evaluation.mse,
                    retained,
                    records: disguised,
                }
            }
            Request::Estimate { key, name } => {
                let entry = self.resolve(key, name.as_deref())?;
                let outcome = self.estimate(&entry)?;
                let degraded = self.degraded_flag(&entry);
                Response::Estimated {
                    stats: Self::estimate_dto(outcome, degraded),
                }
            }
            Request::EstimateAll => {
                let (outcomes, skipped, failed) = self.estimate_all();
                Response::EstimatedAll {
                    estimates: outcomes
                        .into_iter()
                        .map(|outcome| {
                            let degraded = self
                                .registry
                                .resolve(Some(outcome.key), None)
                                .is_some_and(|e| self.degraded_flag(&e));
                            Self::estimate_dto(outcome, degraded)
                        })
                        .collect(),
                    skipped,
                    failed,
                }
            }
            Request::Save { path } => {
                let keys = self.save_snapshot(&path)?;
                Response::Saved { path, keys }
            }
            Request::Load { path } => {
                let (created, merged) = self.load_snapshot(&path)?;
                Response::Loaded {
                    path,
                    created,
                    merged,
                }
            }
            Request::Refresh { key, name, runs } => {
                let entry = self.resolve(key, name.as_deref())?;
                let scheduled = self.refresh(&entry, runs.unwrap_or(1));
                Response::Scheduled {
                    key: entry.key(),
                    runs: scheduled,
                }
            }
            Request::Evict { key, name } => {
                let entry = self.resolve(key, name.as_deref())?;
                match self.evict_key(&entry) {
                    Some(bytes_freed) => Response::Evicted {
                        key: entry.key(),
                        evicted: true,
                        bytes_freed,
                    },
                    None => Response::Evicted {
                        key: entry.key(),
                        evicted: false,
                        bytes_freed: 0,
                    },
                }
            }
            Request::Sync => {
                self.wait_idle();
                // Autosave before the TTL sweep: the full snapshot then
                // carries the expiring keys' complete state (a sweep-first
                // order would persist them as already-empty).
                self.autosave();
                self.sweep_ttl();
                Response::Synced
            }
            Request::Stats { key, name } => {
                if key.is_none() && name.is_none() {
                    let (keys, engine_runs, queries, warm_hits) = self.service_stats();
                    let (resident_bytes, budget_bytes, evictions) = self.memory_stats();
                    let (refresh_failures, retries, degraded) = self.robustness_stats();
                    Response::ServiceStats {
                        keys,
                        engine_runs,
                        queries,
                        warm_hits,
                        resident_bytes,
                        budget_bytes,
                        evictions,
                        refresh_failures,
                        retries,
                        degraded,
                    }
                } else {
                    let entry = self.resolve(key, name.as_deref())?;
                    Response::KeyStats {
                        stats: self.key_stats(&entry),
                    }
                }
            }
            Request::Metrics => self.metrics_response(),
            Request::Trace { limit } => {
                let (entries, dropped) = self.obs.trace_snapshot(limit);
                Response::Trace {
                    enabled: self.obs.enabled() && self.obs.trace_capacity() > 0,
                    dropped,
                    events: entries
                        .into_iter()
                        .map(|entry| TraceEventDto {
                            seq: entry.seq,
                            at_ns: entry.at_ns,
                            kind: entry.event.kind().to_string(),
                            key: entry.event.key(),
                            detail: entry.event.detail(),
                        })
                        .collect(),
                }
            }
            Request::Shutdown => {
                self.wait_idle();
                self.autosave();
                Response::Bye
            }
        })
    }

    /// Answers the `Metrics` verb: refreshes the point-in-time gauges
    /// (registered keys, resident bytes, worker-pool totals), then ships
    /// one snapshot as DTOs plus its Prometheus-style rendering.
    fn metrics_response(&self) -> Response {
        self.obs
            .set_gauge("serve_registered_keys", self.registry.len() as u64);
        self.obs
            .set_gauge("serve_resident_bytes", self.registry.resident_bytes());
        self.obs
            .set_gauge("serve_worker_jobs_submitted", self.pool.jobs_submitted());
        self.obs
            .set_gauge("serve_worker_jobs_executed", self.pool.jobs_executed());
        self.obs
            .set_gauge("serve_worker_jobs_panicked", self.pool.jobs_panicked());
        let snapshot = self.obs.metrics_snapshot();
        let value_dto = |(name, value): (String, u64)| MetricValueDto { name, value };
        Response::Metrics {
            enabled: self.obs.enabled(),
            counters: snapshot.counters.into_iter().map(value_dto).collect(),
            gauges: snapshot.gauges.into_iter().map(value_dto).collect(),
            histograms: snapshot
                .histograms
                .into_iter()
                .map(|h| HistogramDto {
                    name: h.name,
                    count: h.count,
                    sum: h.sum,
                    max: h.max,
                    p50: h.p50,
                    p90: h.p90,
                    p99: h.p99,
                })
                .collect(),
            prometheus: self.obs.render_prometheus(),
        }
    }

    /// Drives a whole framed-JSON session: one request per input line, one
    /// response per output line, until `Shutdown` or end of input.
    /// Malformed lines produce `Error` responses and the session continues.
    pub fn run_loop<R: BufRead, W: Write>(
        self: &Arc<Self>,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let response = match crate::protocol::decode_request(trimmed) {
                // Time every verb into its latency histogram. The timing
                // wraps `handle` only when recording is on, so a
                // metrics-off session takes zero clock reads per request.
                Ok(request) if self.obs.enabled() => {
                    let verb = request.verb();
                    let start_ns = self.obs.now_ns();
                    let response = self.handle(request);
                    self.obs
                        .record_verb(verb, self.obs.now_ns().saturating_sub(start_ns));
                    response
                }
                Ok(request) => self.handle(request),
                Err(error) => Response::Error {
                    reason: format!("bad request line: {error}"),
                    code: "invalid_request".to_string(),
                },
            };
            writeln!(writer, "{}", crate::protocol::encode_response(&response))?;
            writer.flush()?;
            if response == Response::Bye {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_service() -> Arc<Service> {
        Arc::new(Service::new(ServiceConfig::smoke(77)))
    }

    const PRIOR: [f64; 5] = [0.35, 0.25, 0.2, 0.12, 0.08];

    #[test]
    fn register_warms_exactly_once_and_queries_never_rerun() {
        let service = smoke_service();
        let entry = service
            .register(Some("demo"), &PRIOR, 0.8, None, true)
            .unwrap();
        assert!(entry.is_warm());
        assert_eq!(entry.state(), KeyState::Warm);
        assert_eq!(entry.engine_runs(), 1);
        assert!(!entry.store().is_empty());

        // Re-registering the same problem reuses the warm entry.
        let again = service.register(None, &PRIOR, 0.8, None, true).unwrap();
        assert_eq!(again.key(), entry.key());
        assert_eq!(again.engine_runs(), 1);

        // Point queries across the whole privacy axis: still one run.
        let (lo, hi) = entry.store().privacy_range().unwrap();
        for step in 0..10 {
            let p = lo + (hi - lo) * step as f64 / 9.0;
            let found = service.best_for_privacy(&entry, p);
            assert!(found.is_some(), "no matrix for privacy >= {p}");
        }
        assert_eq!(entry.engine_runs(), 1);
        assert_eq!(entry.queries(), 10);
        assert_eq!(entry.coverage_misses(), 0);
        let (_, runs, queries, warm_hits) = service.service_stats();
        assert_eq!(runs, 1);
        assert_eq!(queries, 10);
        assert_eq!(warm_hits, 10);
    }

    #[test]
    fn invalid_registrations_are_rejected() {
        let service = smoke_service();
        assert!(matches!(
            service.register(None, &[1.0], 0.8, None, true),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.register(None, &PRIOR, 0.0, None, true),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.register(None, &PRIOR, 1.5, None, true),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(service
            .register(None, &[0.0, -1.0, 2.0], 0.8, None, true)
            .is_err());
        assert!(service.resolve(Some(123), None).is_err());
        assert!(service.resolve(None, None).is_err());
    }

    #[test]
    fn slot_resolution_is_clamped_to_the_service_cap() {
        let service = smoke_service();
        // A hostile slots value cannot force an unbounded allocation.
        let entry = service
            .register(None, &PRIOR, 0.8, Some(usize::MAX), true)
            .unwrap();
        assert_eq!(entry.num_slots(), MAX_OMEGA_SLOTS);
        let entry = service.register(None, &PRIOR, 0.75, Some(0), true).unwrap();
        assert_eq!(entry.num_slots(), 1);
        let (batch, _) = service
            .register_batch(None, &[PRIOR.to_vec()], 0.7, Some(usize::MAX))
            .unwrap();
        assert_eq!(batch[0].num_slots(), MAX_OMEGA_SLOTS);
    }

    #[test]
    fn lazy_registration_defers_and_queries_wait() {
        let service = smoke_service();
        let entry = service
            .register(Some("lazy"), &PRIOR, 0.8, None, false)
            .unwrap();
        // The query blocks until the pool finishes the warm-up, then
        // answers without another run.
        let found = service.best_for_privacy(&entry, 0.0);
        assert!(entry.is_warm());
        assert!(found.is_some());
        assert_eq!(entry.engine_runs(), 1);
    }

    #[test]
    fn refresh_schedules_runs_and_improves_monotonically() {
        let service = smoke_service();
        let entry = service
            .register(Some("r"), &PRIOR, 0.8, None, true)
            .unwrap();
        let filled_before = entry.store().len();
        let improvements_before = entry.store().improvements();
        let scheduled = service.refresh(&entry, 2);
        assert_eq!(scheduled, 2);
        service.wait_idle();
        assert_eq!(entry.engine_runs(), 3);
        assert!(!entry.is_stale());
        assert_eq!(entry.state(), KeyState::Warm);
        // Ω only ever improves: no filled slot is lost, improvements grow.
        assert!(entry.store().len() >= filled_before);
        assert!(entry.store().improvements() >= improvements_before);
        // Clamping.
        assert_eq!(service.refresh(&entry, 0), 1);
        assert_eq!(service.refresh(&entry, 999), MAX_REFRESH_RUNS);
        service.wait_idle();
    }

    #[test]
    fn batch_registration_matches_solo_runs_and_reuses_warm_keys() {
        let service = smoke_service();
        let priors = vec![vec![0.35, 0.25, 0.2, 0.12, 0.08], vec![0.5, 0.3, 0.2]];
        let (entries, warmed) = service.register_batch(None, &priors, 0.8, None).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(warmed, 2);
        for entry in &entries {
            assert!(entry.is_warm());
            assert_eq!(entry.engine_runs(), 1);
        }

        // A solo service registering the first prior alone produces the
        // identical front: the batch front door is a pure fan-out.
        let solo = smoke_service();
        let solo_entry = solo.register(None, &priors[0], 0.8, None, true).unwrap();
        let batch_front = entries[0].store().merge();
        let solo_front = solo_entry.store().merge();
        assert_eq!(batch_front, solo_front);

        // Re-batching with one new prior only warms the new one.
        let extended = vec![priors[0].clone(), priors[1].clone(), vec![0.7, 0.2, 0.1]];
        let (entries2, warmed2) = service.register_batch(None, &extended, 0.8, None).unwrap();
        assert_eq!(entries2.len(), 3);
        assert_eq!(warmed2, 1);
        assert_eq!(entries2[0].key(), entries[0].key());

        // Empty batch is a no-op.
        let (none, zero) = service.register_batch(None, &[], 0.8, None).unwrap();
        assert!(none.is_empty());
        assert_eq!(zero, 0);
    }

    #[test]
    fn snapshot_save_load_restores_warm_stores_without_engine_runs() {
        let dir = std::env::temp_dir().join("optrr_serve_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let path = path.to_str().unwrap();

        let service = smoke_service();
        let entry = service
            .register(Some("persisted"), &PRIOR, 0.8, None, true)
            .unwrap();
        let saved = service.save_snapshot(path).unwrap();
        assert_eq!(saved, 1);

        // A fresh service loads the snapshot: the key exists warm, with
        // the identical store, restored run counter, and bound alias —
        // and zero engine runs were executed here.
        let restarted = smoke_service();
        let (created, merged) = restarted.load_snapshot(path).unwrap();
        assert_eq!((created, merged), (1, 0));
        let restored = restarted.resolve(None, Some("persisted")).unwrap();
        assert!(restored.is_warm());
        assert_eq!(restored.engine_runs(), 1);
        assert_eq!(restored.store().merge(), entry.store().merge());
        assert!(restarted.best_for_privacy(&restored, 0.0).is_some());

        // Loading into a service that already has the key merges the Ω
        // (monotone improvement) instead of re-creating it.
        let (created, merged) = restarted.load_snapshot(path).unwrap();
        assert_eq!((created, merged), (0, 1));
        assert_eq!(restored.store().merge(), entry.store().merge());

        // Missing and corrupt snapshot files are reported, not panicked
        // on — with the I/O and corruption cases distinguished so callers
        // (and operators reading error codes) know whether a retry or a
        // restore is the right move.
        assert!(matches!(
            restarted.load_snapshot("/nonexistent/optrr.json"),
            Err(ServeError::Snapshot(_))
        ));
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "not json").unwrap();
        assert!(matches!(
            restarted.load_snapshot(bad.to_str().unwrap()),
            Err(ServeError::SnapshotCorrupt(_))
        ));
    }

    #[test]
    fn protocol_session_round_trips_through_run_loop() {
        let service = smoke_service();
        let session = [
            r#"{"Register":{"name":"demo","prior":[0.35,0.25,0.2,0.12,0.08],"delta":0.8}}"#,
            r#"{"BestForPrivacy":{"name":"demo","min_privacy":0.05}}"#,
            r#"{"BestForMse":{"name":"demo","max_mse":1.0}}"#,
            r#"{"Front":{"name":"demo"}}"#,
            "not json at all",
            r#"{"Stats":{"name":"demo"}}"#,
            r#"{"Stats":{}}"#,
            r#""Sync""#,
            r#""Shutdown""#,
            r#"{"Front":{"name":"after-shutdown-is-not-read"}}"#,
        ]
        .join("\n");
        let mut output = Vec::new();
        service.run_loop(session.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        // One response per line up to and including Bye.
        assert_eq!(lines.len(), 9);
        assert!(lines[0].contains("Registered"));
        assert!(lines[1].contains("Matrix") || lines[1].contains("NoMatch"));
        assert!(lines[2].contains("Matrix") || lines[2].contains("NoMatch"));
        assert!(lines[3].contains("Front"));
        assert!(lines[4].contains("Error"));
        assert!(lines[5].contains("KeyStats"));
        assert!(lines[6].contains("ServiceStats"));
        assert_eq!(lines[7], r#""Synced""#);
        assert_eq!(lines[8], r#""Bye""#);
        // Every line decodes as a Response.
        for line in lines {
            assert!(crate::protocol::decode_response(line).is_ok());
        }
    }

    #[test]
    fn manual_eviction_drops_resident_state_and_queries_rewarm_bitwise() {
        let service = smoke_service();
        let entry = service
            .register(Some("evictee"), &PRIOR, 0.8, None, true)
            .unwrap();
        let warm_merge = entry.store().merge();
        let resident_before = entry.resident_bytes();

        let freed = service.evict_key(&entry).expect("idle key evicts");
        assert_eq!(freed, resident_before);
        assert_eq!(entry.state(), KeyState::Evicted);
        assert!(!entry.is_warm());
        assert!(entry.store().is_empty());
        assert_eq!(entry.evictions(), 1);
        // Double eviction is refused by the state machine.
        assert!(service.evict_key(&entry).is_none());

        // The next query transparently re-warms: without persistence the
        // engine-run sequence is replayed deterministically, so the store
        // comes back bitwise-identical and the run counter stays put.
        let found = service.best_for_privacy(&entry, 0.0);
        assert!(found.is_some());
        assert_eq!(entry.state(), KeyState::Warm);
        assert_eq!(entry.store().merge(), warm_merge);
        assert_eq!(entry.engine_runs(), 1);
        assert_eq!(entry.rewarms(), 1);
        let (_, _, evictions) = service.memory_stats();
        assert_eq!(evictions, 1);
    }

    #[test]
    fn refresh_on_an_evicted_key_restores_the_store_before_refreshing() {
        let service = smoke_service();
        let entry = service
            .register(Some("er"), &PRIOR, 0.8, None, true)
            .unwrap();
        service.evict_key(&entry).expect("idle key evicts");
        // A refresh scheduled against the evicted key must not cold-run
        // into the wiped store: the job restores the resident state first
        // and then refreshes on top of it.
        service.refresh(&entry, 1);
        service.wait_idle();
        assert_eq!(entry.state(), KeyState::Warm);
        assert_eq!(entry.engine_runs(), 2, "restore replays, refresh claims");
        assert_eq!(entry.rewarms(), 1);

        // Bitwise-identical (slot for slot) to a never-evicted service
        // doing the same register + refresh.
        let control = smoke_service();
        let control_entry = control.register(None, &PRIOR, 0.8, None, true).unwrap();
        control.refresh(&control_entry, 1);
        control.wait_idle();
        let evicted_path = entry.store().merge();
        let control_path = control_entry.store().merge();
        for slot in 0..evicted_path.num_slots() {
            assert_eq!(
                evicted_path.entry(slot).map(|e| e.evaluation.mse.to_bits()),
                control_path.entry(slot).map(|e| e.evaluation.mse.to_bits()),
                "slot {slot} differs from the never-evicted run"
            );
        }
    }

    #[test]
    fn memory_budget_evicts_lru_keys_and_stays_under_budget() {
        let priors = [
            vec![0.4, 0.3, 0.2, 0.1],
            vec![0.5, 0.25, 0.15, 0.1],
            vec![0.6, 0.2, 0.12, 0.08],
            vec![0.7, 0.15, 0.1, 0.05],
        ];
        // Probe the exact 4-key load on an unbudgeted twin, then allow
        // only ~60% of it — so the budgeted service must evict, while any
        // single key comfortably fits.
        let probe = Arc::new(Service::new(ServiceConfig::tiny(9)));
        for prior in &priors {
            probe.register(None, prior, 0.8, None, true).unwrap();
        }
        let (full_load, _, _) = probe.memory_stats();
        assert!(full_load > 0);
        let budget = full_load * 3 / 5;

        let mut config = ServiceConfig::tiny(9);
        config.memory_budget_bytes = Some(budget);
        let service = Arc::new(Service::new(config));
        let mut entries = Vec::new();
        for prior in &priors {
            entries.push(service.register(None, prior, 0.8, None, true).unwrap());
        }
        service.wait_idle();
        let (resident, reported_budget, evictions) = service.memory_stats();
        assert_eq!(reported_budget, Some(budget));
        assert!(resident <= budget, "{resident} > {budget}");
        assert!(evictions > 0, "a 4-key load must evict under this budget");
        assert!(entries.iter().any(|e| e.state() == KeyState::Evicted));
        // Evicted keys still answer (re-warm on demand), and the budget
        // holds afterwards too.
        for entry in &entries {
            assert!(service.best_for_privacy(entry, 0.0).is_some());
        }
        service.wait_idle();
        let (resident, _, _) = service.memory_stats();
        assert!(resident <= budget, "{resident} > {budget}");
    }

    #[test]
    fn ttl_expires_idle_keys_on_sync() {
        let mut config = ServiceConfig::tiny(11);
        config.key_ttl = Some(Duration::from_millis(0));
        let service = Arc::new(Service::new(config));
        let entry = service
            .register(Some("idle"), &[0.5, 0.3, 0.2], 0.8, None, true)
            .unwrap();
        assert!(entry.is_warm());
        // Everything idle for longer than the zero TTL is swept on Sync.
        std::thread::sleep(Duration::from_millis(5));
        let mut output = Vec::new();
        service
            .run_loop(&b"\"Sync\"\n\"Shutdown\"\n"[..], &mut output)
            .unwrap();
        assert_eq!(entry.state(), KeyState::Evicted);
        assert_eq!(entry.evictions(), 1);
    }

    #[test]
    fn coverage_misses_mark_the_key_stale_and_schedule_one_refresh() {
        let mut config = ServiceConfig::smoke(13);
        config.coverage_miss_threshold = 3;
        // Keep the scheduled refresh visible: do not let it land yet.
        let service = Arc::new(Service::new(config));
        let entry = service
            .register(Some("uncovered"), &PRIOR, 0.8, None, true)
            .unwrap();
        assert_eq!(entry.engine_runs(), 1);
        // Two misses: under threshold, nothing scheduled.
        for _ in 0..2 {
            assert!(service.best_for_privacy(&entry, 0.9999).is_none());
        }
        assert_eq!(entry.coverage_misses(), 2);
        assert!(!entry.is_stale());
        // Third miss trips the threshold: coverage-stale, one refresh.
        assert!(service.best_for_privacy(&entry, 0.9999).is_none());
        assert!(entry.is_stale() || entry.engine_runs() > 1);
        service.wait_idle();
        assert_eq!(entry.engine_runs(), 2);
        assert!(!entry.is_stale());
        // A disabled threshold never trips.
        let mut off = ServiceConfig::smoke(13);
        off.coverage_miss_threshold = 0;
        let quiet = Arc::new(Service::new(off));
        let q = quiet.register(None, &PRIOR, 0.8, None, true).unwrap();
        for _ in 0..5 {
            assert!(quiet.best_for_privacy(&q, 0.9999).is_none());
        }
        quiet.wait_idle();
        assert_eq!(q.engine_runs(), 1);
    }

    #[test]
    fn evict_verb_and_stats_fields_round_trip_through_the_protocol() {
        let dir = std::env::temp_dir().join("optrr_serve_autosave_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("autosave.json");
        let path_str = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);

        let mut config = ServiceConfig::smoke(21);
        config.snapshot_path = Some(path_str.clone());
        let service = Arc::new(Service::new(config));
        let session = [
            r#"{"Register":{"name":"demo","prior":[0.35,0.25,0.2,0.12,0.08],"delta":0.8}}"#
                .to_string(),
            r#"{"Evict":{"name":"demo"}}"#.to_string(),
            r#"{"Evict":{"name":"demo"}}"#.to_string(),
            r#"{"Stats":{"name":"demo"}}"#.to_string(),
            r#"{"Stats":{}}"#.to_string(),
            r#""Sync""#.to_string(),
            r#""Shutdown""#.to_string(),
        ]
        .join("\n");
        let mut output = Vec::new();
        service.run_loop(session.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[1].contains(r#""evicted":true"#), "got {}", lines[1]);
        assert!(lines[2].contains(r#""evicted":false"#), "got {}", lines[2]);
        assert!(
            lines[3].contains(r#""state":"evicted""#),
            "got {}",
            lines[3]
        );
        assert!(lines[4].contains(r#""evictions":1"#), "got {}", lines[4]);
        // Sync auto-saved the configured snapshot; the eviction wrote a
        // per-key sidecar next to it.
        assert!(path.exists(), "autosave file missing");
        let entry = service.resolve(None, Some("demo")).unwrap();
        let sidecar = Service::sidecar_path(&path_str, entry.key());
        assert!(std::path::Path::new(&sidecar).exists(), "sidecar missing");
        // The sidecar re-warms the evicted key bitwise (no engine run).
        let before_runs = entry.engine_runs();
        assert!(service.best_for_privacy(&entry, 0.0).is_some());
        assert_eq!(entry.engine_runs(), before_runs);
        assert_eq!(entry.rewarms(), 1);
        let _ = std::fs::remove_file(&sidecar);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_refresh_panics_retry_degrade_and_recover_bitwise() {
        let mut config = ServiceConfig::smoke(77);
        config.faults =
            Some(crate::faults::FaultPlan::parse("seed=7,refresh_panic=1,budget=2").unwrap());
        config.fail_budget = 2;
        config.retry_base_ms = 1;
        config.retry_max_ms = 4;
        let service = Arc::new(Service::new(config));
        // Warm-ups are never injected: registration succeeds even under a
        // plan that panics every refresh.
        let entry = service
            .register(Some("chaos"), &PRIOR, 0.8, None, true)
            .unwrap();
        assert!(entry.is_warm());
        let warm_merge = entry.store().merge();

        // One scheduled refresh: the run panics, the backoff retry panics
        // too (the plan budget covers exactly two faults), and the streak
        // hits the fail budget — the key degrades instead of retrying
        // forever.
        service.refresh(&entry, 1);
        service.wait_idle();
        assert_eq!(entry.state(), KeyState::Degraded(StaleReason::Manual));
        assert_eq!(entry.refresh_failures(), 2);
        assert_eq!(entry.retries(), 1);
        assert_eq!(
            entry.engine_runs(),
            1,
            "failed runs rolled their index back"
        );

        // Degraded keys keep answering from the last-good store, flagged.
        assert!(service.best_for_privacy(&entry, 0.0).is_some());
        assert_eq!(entry.store().merge(), warm_merge);
        let stats = service.key_stats(&entry);
        assert!(stats.degraded);
        assert_eq!(stats.refresh_failures, 2);
        assert_eq!(stats.retries, 1);
        let (failures, retries, degraded_keys) = service.robustness_stats();
        assert_eq!((failures, retries, degraded_keys), (2, 1, 1));
        let metrics = service.obs().render_prometheus();
        assert!(
            metrics.contains("serve_refresh_failures_total 2"),
            "{metrics}"
        );
        assert!(metrics.contains("serve_degraded_total 1"), "{metrics}");

        // The fault budget is spent, so the next refresh runs clean,
        // lands, and restores Warm.
        service.refresh(&entry, 1);
        service.wait_idle();
        assert_eq!(entry.state(), KeyState::Warm);
        assert_eq!(entry.engine_runs(), 2);
        assert!(!service.key_stats(&entry).degraded);

        // Bitwise-identical to a never-faulted service running the same
        // sequence: the rolled-back run index plus the unconsumed warm
        // seeds mean the recovery run replays exactly the run the faults
        // interrupted.
        let control = smoke_service();
        let control_entry = control.register(None, &PRIOR, 0.8, None, true).unwrap();
        control.refresh(&control_entry, 1);
        control.wait_idle();
        let chaos_path = entry.store().merge();
        let control_path = control_entry.store().merge();
        for slot in 0..chaos_path.num_slots() {
            assert_eq!(
                chaos_path.entry(slot).map(|e| e.evaluation.mse.to_bits()),
                control_path.entry(slot).map(|e| e.evaluation.mse.to_bits()),
                "slot {slot} differs from the never-faulted run"
            );
        }
    }

    #[test]
    fn snapshot_header_detects_corruption_and_truncation() {
        let dir = std::env::temp_dir().join("optrr_serve_header_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let path_str = path.to_str().unwrap();

        let service = smoke_service();
        service
            .register(Some("h"), &PRIOR, 0.8, None, true)
            .unwrap();
        service.save_snapshot(path_str).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(SNAPSHOT_MAGIC.as_bytes()));
        smoke_service()
            .load_snapshot(path_str)
            .expect("intact file loads");

        // One flipped payload byte fails the checksum.
        let mut flipped = bytes.clone();
        let inside = flipped.len() - 2;
        flipped[inside] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            smoke_service().load_snapshot(path_str),
            Err(ServeError::SnapshotCorrupt(_))
        ));

        // Truncation at any depth — inside the payload, at the header
        // boundary, even inside the magic — is a typed corruption error,
        // never a panic and never a silently cold (or half-loaded) store.
        for cut in [
            bytes.len() - 2,
            bytes.len() / 2,
            SNAPSHOT_MAGIC.len() + 3,
            5,
        ] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(
                    smoke_service().load_snapshot(path_str),
                    Err(ServeError::SnapshotCorrupt(_))
                ),
                "cut at byte {cut} must read as corrupt"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_snapshot_write_keeps_the_previous_generation() {
        let dir = std::env::temp_dir().join("optrr_serve_torn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.json");
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);

        let mut config = ServiceConfig::smoke(77);
        config.faults = Some(crate::faults::FaultPlan::parse("torn_write=1,budget=1").unwrap());
        let service = Arc::new(Service::new(config));
        let entry = service
            .register(Some("gen"), &PRIOR, 0.8, None, true)
            .unwrap();

        // First save is torn: the error is surfaced and no file appears
        // at the destination (the truncated prefix only ever reaches the
        // temporary).
        assert!(matches!(
            service.save_snapshot(path_str),
            Err(ServeError::Snapshot(_))
        ));
        assert!(!path.exists(), "a torn write must not land at the path");

        // The budget is spent: the second save is clean and becomes
        // generation one.
        service.save_snapshot(path_str).expect("clean save lands");
        let generation_one = std::fs::read(&path).unwrap();

        // A later torn write (fresh injector, same path) still leaves
        // generation one intact and loadable.
        let mut config = ServiceConfig::smoke(77);
        config.faults = Some(crate::faults::FaultPlan::parse("torn_write=1,budget=1").unwrap());
        let again = Arc::new(Service::new(config));
        again
            .register(Some("gen"), &PRIOR, 0.8, None, true)
            .unwrap();
        again.refresh(&entry, 1);
        again.wait_idle();
        assert!(matches!(
            again.save_snapshot(path_str),
            Err(ServeError::Snapshot(_))
        ));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            generation_one,
            "the previous generation must survive a torn write"
        );
        let restarted = smoke_service();
        let (created, _) = restarted.load_snapshot(path_str).unwrap();
        assert_eq!(created, 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{path_str}.tmp"));
    }

    #[test]
    fn unreadable_sidecar_falls_back_to_deterministic_replay() {
        let dir = std::env::temp_dir().join("optrr_serve_sidecar_fault_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("auto.json");
        let path_str = path.to_str().unwrap().to_string();
        let mut config = ServiceConfig::smoke(77);
        config.snapshot_path = Some(path_str.clone());
        let service = Arc::new(Service::new(config));
        let entry = service
            .register(Some("s"), &PRIOR, 0.8, None, true)
            .unwrap();
        let warm_merge = entry.store().merge();
        service.evict_key(&entry).expect("idle key evicts");
        let sidecar = Service::sidecar_path(&path_str, entry.key());
        // Corrupt the sidecar on disk: the re-warm must detect it (typed
        // event, counter), fall back to the engine replay, and still
        // converge to the identical store — never serve the bad bytes and
        // never fail the query.
        std::fs::write(&sidecar, "OPTRR-SNAP v1 crc=0000000000000000 len=3\nxyz\n").unwrap();
        assert!(service.best_for_privacy(&entry, 0.0).is_some());
        assert_eq!(entry.state(), KeyState::Warm);
        assert_eq!(entry.store().merge(), warm_merge);
        assert_eq!(entry.engine_runs(), 1, "replayed, not loaded");
        let metrics = service.obs().render_prometheus();
        assert!(
            metrics.contains("serve_snapshot_load_failures_total 1"),
            "{metrics}"
        );
        let _ = std::fs::remove_file(&sidecar);
        let _ = std::fs::remove_file(&path);
    }
}
